//! # hive-warehouse
//!
//! Umbrella crate for the hive-rs warehouse — a Rust reproduction of the
//! architecture described in *"Apache Hive: From MapReduce to
//! Enterprise-grade Big Data Warehousing"* (SIGMOD 2019).
//!
//! The commonly-used entry points are re-exported here:
//!
//! ```
//! use hive_warehouse::{HiveConf, HiveServer};
//!
//! let server = HiveServer::new(HiveConf::v3_1());
//! let session = server.session();
//! session.execute("CREATE TABLE t (a INT, b STRING)").unwrap();
//! session.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')").unwrap();
//! let result = session.execute("SELECT b FROM t WHERE a = 2").unwrap();
//! assert_eq!(result.rows()[0].get(0).to_string(), "y");
//! ```

pub use hive_common as common;
pub use hive_common::{
    DataType, EngineVersion, FaultPlan, HiveConf, HiveError, Result, Row, Schema, Value,
};
pub use hive_core as core;
pub use hive_core::{
    run_streams, HiveServer, QueryOutcome, QueryResult, QueryStream, QueryVerdict, ServingOptions,
    ServingReport, Session,
};
pub use hive_dfs::DfsPath;

/// Workload generators used by the benchmark harnesses (TPC-DS-derived
/// star schema + SSB).
pub use hive_benchdata as benchdata;
