//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the subset of the parking_lot API this workspace uses:
//! `Mutex::lock`, `RwLock::read`/`write`, and `Condvar::wait`/
//! `notify_*` — all returning guards directly (no poison `Result`).
//! Poisoning is deliberately ignored (`into_inner` on a poisoned
//! guard), which is exactly parking_lot's semantics: a panicking
//! holder does not wedge the lock.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // Option so Condvar::wait can temporarily take the std guard out.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the mutex while waiting
    /// (parking_lot signature: takes the guard by `&mut`).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(std_guard);
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1u32));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
            true
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        assert!(t.join().unwrap());
    }
}
