//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use — the `proptest!` macro, `Strategy` with `prop_map` /
//! `boxed`, `Just`, `prop_oneof!` (plain and weighted), `any::<T>()`,
//! integer/float range strategies, regex-subset string strategies,
//! `collection::{vec, btree_map, btree_set}`, `option::of`, and the
//! `prop_assert*` macros — as a deterministic generate-and-assert
//! harness. Each test runs `ProptestConfig::cases` cases with inputs
//! derived from a splitmix64 stream seeded by the test's module path
//! and name, so failures are reproducible run-to-run. There is no
//! shrinking and no persistence file: a failing case panics with the
//! case number, and re-running regenerates the identical input.

pub mod test_runner {
    /// Deterministic per-test random stream (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// FNV-1a over a string — seeds a test's stream from its name.
    pub fn fnv(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Runner configuration; only `cases` is modeled.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Value`.
    ///
    /// Simplified from real proptest: no `ValueTree`/shrinking layer;
    /// `generate` directly produces a value from the deterministic
    /// stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(std::rc::Rc::new(self))
        }
    }

    /// Type-erased, cheaply cloneable strategy (what `.boxed()`
    /// returns — clonable like the real crate's `BoxedStrategy`).
    pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(std::rc::Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union over boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut roll = rng.below(self.total);
            for (w, s) in &self.arms {
                if roll < *w as u64 {
                    return s.generate(rng);
                }
                roll -= *w as u64;
            }
            unreachable!("roll exceeded total weight")
        }
    }

    /// Element types samplable from a range strategy. One blanket
    /// `Strategy` impl per range kind keeps integer-literal inference
    /// working (many per-type impls would leave `0..6` ambiguous).
    pub trait RangeValue: Copy + PartialOrd {
        fn sample(lo: Self, hi: Self, inclusive: bool, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_range_value_int {
        ($($t:ty),*) => {$(
            impl RangeValue for $t {
                fn sample(lo: $t, hi: $t, inclusive: bool, rng: &mut TestRng) -> $t {
                    // Offsets computed in u128 so the full i128 domain
                    // wraps correctly.
                    let span = (hi as u128)
                        .wrapping_sub(lo as u128)
                        .wrapping_add(inclusive as u128);
                    assert!(span != 0, "empty range strategy");
                    let roll =
                        (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) % span;
                    (lo as u128).wrapping_add(roll) as $t
                }
            }
        )*};
    }

    impl_range_value_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl RangeValue for f64 {
        fn sample(lo: f64, hi: f64, _inclusive: bool, rng: &mut TestRng) -> f64 {
            lo + rng.unit_f64() * (hi - lo)
        }
    }

    impl<T: RangeValue> Strategy for std::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(self.start < self.end, "empty range strategy");
            T::sample(self.start, self.end, false, rng)
        }
    }

    impl<T: RangeValue> Strategy for std::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty range strategy");
            T::sample(lo, hi, true, rng)
        }
    }

    /// String strategies from a regex subset: literal chars, `[...]`
    /// classes (with `a-z` ranges), and `{n}` / `{m,n}` / `?` / `*` /
    /// `+` quantifiers. This covers every pattern in the workspace's
    /// tests; unsupported syntax panics loudly rather than generating
    /// wrong data.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    #[derive(Debug)]
    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars>) -> Vec<char> {
        let mut members = Vec::new();
        let mut prev: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated [class] in pattern");
            match c {
                ']' => break,
                '-' => {
                    // Range if between two chars, literal otherwise.
                    match (prev, chars.peek()) {
                        (Some(lo), Some(&hi)) if hi != ']' => {
                            chars.next();
                            assert!(lo <= hi, "bad class range {lo}-{hi}");
                            for x in (lo as u32 + 1)..=(hi as u32) {
                                members.push(char::from_u32(x).expect("range char"));
                            }
                            prev = None;
                        }
                        _ => {
                            members.push('-');
                            prev = Some('-');
                        }
                    }
                }
                '\\' => {
                    let esc = chars.next().expect("dangling escape in class");
                    members.push(esc);
                    prev = Some(esc);
                }
                other => {
                    members.push(other);
                    prev = Some(other);
                }
            }
        }
        assert!(!members.is_empty(), "empty [class] in pattern");
        members
    }

    fn parse_quantifier(
        chars: &mut std::iter::Peekable<std::str::Chars>,
    ) -> Option<(usize, usize)> {
        match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                let (lo, hi) = match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().expect("bad {m,n} quantifier"),
                        b.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                };
                Some((lo, hi))
            }
            Some('?') => {
                chars.next();
                Some((0, 1))
            }
            Some('*') => {
                chars.next();
                Some((0, 8))
            }
            Some('+') => {
                chars.next();
                Some((1, 8))
            }
            _ => None,
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => Atom::Class(parse_class(&mut chars)),
                '\\' => Atom::Literal(chars.next().expect("dangling escape")),
                '(' | ')' | '|' | '^' | '$' | '.' => {
                    panic!("regex feature {c:?} not supported by the proptest stand-in")
                }
                lit => Atom::Literal(lit),
            };
            let (lo, hi) = parse_quantifier(&mut chars).unwrap_or((1, 1));
            let n = if lo == hi {
                lo
            } else {
                lo + rng.below((hi - lo + 1) as u64) as usize
            };
            for _ in 0..n {
                match &atom {
                    Atom::Literal(l) => out.push(*l),
                    Atom::Class(members) => {
                        out.push(members[rng.below(members.len() as u64) as usize])
                    }
                }
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Mostly-tame doubles: scaled unit interval with sign.
            let mag = rng.unit_f64() * 1.0e9;
            if rng.next_u64() & 1 == 1 {
                -mag
            } else {
                mag
            }
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::{BTreeMap, BTreeSet};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl SizeRange {
        fn pick(self, rng: &mut TestRng) -> usize {
            if self.lo == self.hi_inclusive {
                self.lo
            } else {
                self.lo + rng.below((self.hi_inclusive - self.lo + 1) as u64) as usize
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: SizeRange,
    }

    /// `BTreeMap` with up to `size` entries (duplicate keys collapse,
    /// matching real proptest's behavior of retrying toward the target
    /// size only on a best-effort basis).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            value,
            size: size.into(),
        }
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeMap::new();
            for _ in 0..target * 2 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `BTreeSet` with up to `size` elements (duplicates collapse).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = BTreeSet::new();
            for _ in 0..target * 2 {
                if out.len() >= target {
                    break;
                }
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Option<T>`: `None` one time in five, otherwise `Some`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let __seed = $crate::test_runner::fnv(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for __case in 0..__config.cases as u64 {
                    let mut __rng = $crate::test_runner::TestRng::new(
                        __seed ^ __case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}

/// Assert inside a property test (panics with the failing input case).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Choose among strategies; `weight => strategy` arms bias the pick.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn determinism() {
        let strat = crate::collection::vec((0i64..100, "[a-z]{1,8}"), 1..20);
        let a = strat.generate(&mut TestRng::new(42));
        let b = strat.generate(&mut TestRng::new(42));
        assert_eq!(a, b);
        for (n, s) in &a {
            assert!((0..100).contains(n));
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn pattern_classes_and_quantifiers() {
        let mut rng = TestRng::new(7);
        for _ in 0..200 {
            let s = "[a-zA-Z0-9 _-]{0,24}".generate(&mut rng);
            assert!(s.len() <= 24);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == ' ' || c == '_' || c == '-'));
            let t = "x[0-9]?y".generate(&mut rng);
            assert!(t == "xy" || (t.len() == 3 && t.starts_with('x') && t.ends_with('y')));
        }
    }

    #[test]
    fn oneof_weights_cover_arms() {
        let strat = prop_oneof![4 => (0i64..6).prop_map(Some), 1 => Just(None)];
        let mut rng = TestRng::new(3);
        let mut none_seen = 0;
        let mut some_seen = 0;
        for _ in 0..500 {
            match strat.generate(&mut rng) {
                Some(v) => {
                    assert!((0..6).contains(&v));
                    some_seen += 1;
                }
                None => none_seen += 1,
            }
        }
        assert!(none_seen > 20 && some_seen > 300);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: generated args are in range.
        fn macro_generates(x in 1usize..50, flag in any::<bool>(), s in "[a-z]{1,4}") {
            prop_assert!((1..50).contains(&x));
            let _ = flag;
            prop_assert!(!s.is_empty() && s.len() <= 4, "len {}", s.len());
        }
    }
}
