//! Offline stand-in for `serde`.
//!
//! The container this repo builds in has no network access and no
//! registry cache, so external crates cannot be fetched. The codebase
//! only ever *derives* `Serialize`/`Deserialize` (as documentation of
//! intent and to keep the door open for a real wire format later); it
//! never serializes anything — there is no serde_json or bincode
//! anywhere in the workspace. Marker traits with blanket impls plus
//! no-op derive macros are therefore a faithful substitute: every
//! `#[derive(Serialize, Deserialize)]` and every `T: Serialize` bound
//! compiles and means exactly what it meant before.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T> DeserializeOwned for T {}

pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

pub mod ser {
    pub use crate::Serialize;
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
