//! Offline stand-in for `criterion`. Benches compile and run as smoke
//! tests: each `bench_function` body executes a handful of iterations
//! and prints the mean wall time — no statistics, no HTML reports.

use std::time::Instant;

/// Iterations per bench; enough to print a number, cheap enough for CI.
const ITERS: u32 = 3;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Bencher {
    _private: (),
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(f());
        }
        report(start, ITERS);
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let inputs: Vec<I> = (0..ITERS).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        report(start, ITERS);
    }
}

fn report(start: Instant, iters: u32) {
    let per_iter = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("    {per_iter:.3} ms/iter ({iters} iters)");
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        println!("bench: {name}");
        let mut b = Bencher { _private: () };
        f(&mut b);
        self
    }
}

/// Identity that defeats constant-folding well enough for a smoke run.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
