//! Offline stand-in for the `bytes` crate.
//!
//! [`Bytes`] is a cheaply-cloneable, sliceable view over immutable
//! shared bytes (`Arc<[u8]>` + range), [`BytesMut`] a growable buffer
//! that freezes into one. [`Buf`]/[`BufMut`] cover exactly the reader/
//! writer methods this workspace calls (LE-order getters/putters,
//! `remaining`, `advance`, `put_slice`, …). Semantics match the real
//! crate for this subset; only the zero-copy `freeze` optimization is
//! simplified (one copy into the shared allocation).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable slice of shared immutable memory.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_vec(Vec::new())
    }

    /// A buffer over a static slice (copied once; the real crate
    /// borrows, but nothing here depends on that).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::from_vec(data.to_vec())
    }

    fn from_vec(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            start: 0,
            end,
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice {lo}..{hi} out of bounds of {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Split off and return the first `at` bytes, advancing `self`
    /// past them. Both halves share the allocation.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to past end");
        let head = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + at,
        };
        self.start += at;
        head
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes::from_vec(v)
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_vec(v.to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from_vec(v.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::from_vec(v.as_bytes().to_vec())
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref().iter().take(64) {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.len() > 64 {
            write!(f, "… ({} bytes)", self.len())?;
        }
        write!(f, "\"")
    }
}

/// Sequential reader over a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    fn get_i128_le(&mut self) -> i128 {
        let mut b = [0u8; 16];
        self.copy_to_slice(&mut b);
        i128::from_le_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_ref()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
}

/// Growable byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }

    fn put_i128_le(&mut self, v: i128) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// A growable buffer that freezes into [`Bytes`].
#[derive(Default, Debug, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_le() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(42);
        w.put_f64_le(1.5);
        w.put_i128_le(-3);
        w.put_slice(b"xyz");
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.get_i128_le(), -3);
        assert_eq!(b.as_ref(), b"xyz");
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let s = b.slice(2..5);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_ref(), &[3, 4]);
        assert_eq!(b.len(), 6);
    }
}
