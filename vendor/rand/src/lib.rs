//! Offline stand-in for `rand` 0.8 covering this workspace's usage:
//! `StdRng::seed_from_u64`, `Rng::gen_range` over half-open and
//! inclusive integer ranges, and `Rng::gen_bool`. The generator is
//! splitmix64 — not the real StdRng (ChaCha12), but every caller here
//! only needs *seeded determinism*, not a specific stream.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as the argument of [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Element types samplable uniformly from a range. A single blanket
/// `SampleRange` impl per range kind keeps integer-literal inference
/// working exactly like the real rand crate.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let roll = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + roll as i128) as $t
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut dyn RngCore) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let roll = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (lo as i128 + roll as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }
    fn sample_inclusive(lo: f64, hi: f64, rng: &mut dyn RngCore) -> f64 {
        Self::sample_half_open(lo, hi, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic seeded generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.gen_range(-5i64..17);
            assert_eq!(x, b.gen_range(-5i64..17));
            assert!((-5..17).contains(&x));
            let y = a.gen_range(1u8..=20);
            assert_eq!(y, b.gen_range(1u8..=20));
            assert!((1..=20).contains(&y));
            assert_eq!(a.gen_bool(0.3), b.gen_bool(0.3));
        }
        assert!(!StdRng::seed_from_u64(1).gen_bool(0.0));
        assert!(StdRng::seed_from_u64(1).gen_bool(1.0));
    }
}
