#!/usr/bin/env bash
# Tier-1 verification: build + full test suite, then the chaos
# fault-injection job.
#
# The chaos job replays seeded fault plans through tests/chaos.rs.
# Beyond the fixed-seed tests that always run, HIVE_CHAOS_SEEDS sweeps
# extra seeds through the env-gated replay test, e.g.:
#
#   HIVE_CHAOS_SEEDS="1 2 3" scripts/verify.sh
#
# A failing seed reproduces directly with:
#
#   HIVE_FAULT_SEED=<seed> cargo test --test chaos env_seeded_chaos_replay
#
# HIVE_PAR_SWEEP=1 additionally re-runs the test suite with the
# morsel-parallelism knob forced to 1, 2, and 8 host threads
# (HIVE_PARALLEL_THREADS overrides hive.exec.parallel.threads), then
# runs the parallel benchmark, which refreshes BENCH_parallel.json at
# the repo root.
#
# HIVE_DICT_SWEEP=1 re-runs the test suite with dictionary-encoded late
# materialization forced off and then on (HIVE_DICT_ENABLED overrides
# hive.exec.dictionary.enabled) — results must be identical either way —
# then runs the dictionary benchmark, which refreshes BENCH_dict.json.
#
# HIVE_SELVEC_SWEEP=1 re-runs the test suite with selection-vector
# execution forced off and then on (HIVE_SELVEC_ENABLED overrides
# hive.exec.selvec.enabled) — results must be identical either way —
# then runs the selvec benchmark, which refreshes BENCH_selvec.json.
#
# HIVE_RAWTABLE_SWEEP=1 re-runs the test suite with the flat hash
# table forced off and then on (HIVE_RAWTABLE_ENABLED overrides
# hive.exec.rawtable.enabled) — results must be identical either way —
# then runs the hashtable benchmark, which refreshes BENCH_hash.json.
#
# HIVE_SPILL_SWEEP=1 re-runs the test suite under a forced tiny
# per-query memory budget (HIVE_MEMORY_BUDGET overrides
# hive.exec.memory.per.query.bytes), pushing every blocking operator
# through the grace-join / spilled-aggregation / external-sort paths —
# results must be identical to the unbudgeted runs — then runs the
# spill benchmark, which refreshes BENCH_spill.json.
#
# HIVE_PIR_SWEEP=1 re-runs the test suite with the compiled physical
# IR forced off and then on (HIVE_PIR_ENABLED overrides
# hive.exec.pir.enabled) — results must be identical either way — then
# runs the pir benchmark, which refreshes BENCH_pir.json.
#
# HIVE_STATS_SWEEP=1 re-runs the test suite with histogram-driven
# cardinality estimation forced off and then on (HIVE_HISTOGRAMS_ENABLED
# overrides hive.optimizer.histograms.enabled) — results must be
# identical either way; the off setting is the constant-selectivity
# differential oracle — then runs the optstats benchmark, which
# refreshes BENCH_optstats.json.
#
# HIVE_WM_SWEEP=1 runs the multi-stream serving determinism suite at
# 1/4/16 streams × 1/2/8 morsel threads under a fixed HIVE_FAULT_SEED
# (HIVE_WM_STREAMS gates tests/serving_determinism.rs::env_wm_sweep;
# the single-query serial path is the differential oracle), then runs
# the throughput benchmark, which refreshes BENCH_throughput.json.
#
# HIVE_SWEEP_ALL=1 turns on every per-PR sweep above in one knob (the
# individual flags keep working, and an explicitly-set flag wins).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ -n "${HIVE_SWEEP_ALL:-}" ]]; then
    : "${HIVE_PAR_SWEEP:=1}"
    : "${HIVE_DICT_SWEEP:=1}"
    : "${HIVE_SELVEC_SWEEP:=1}"
    : "${HIVE_RAWTABLE_SWEEP:=1}"
    : "${HIVE_SPILL_SWEEP:=1}"
    : "${HIVE_PIR_SWEEP:=1}"
    : "${HIVE_STATS_SWEEP:=1}"
    : "${HIVE_WM_SWEEP:=1}"
fi

echo "== format =="
cargo fmt --check

echo "== clippy =="
cargo clippy -q --offline --workspace --all-targets -- -D warnings

echo "== build (release) =="
cargo build --release --offline

echo "== tests =="
cargo test -q --offline --workspace

echo "== chaos: fixed-seed fault-injection suite =="
cargo test -q --offline --test chaos

for seed in ${HIVE_CHAOS_SEEDS:-}; do
    echo "== chaos: replaying seed $seed =="
    HIVE_FAULT_SEED="$seed" \
        cargo test -q --offline --test chaos env_seeded_chaos_replay -- --nocapture
done

if [[ -n "${HIVE_PAR_SWEEP:-}" ]]; then
    for threads in 1 2 8; do
        echo "== parallel sweep: tests at HIVE_PARALLEL_THREADS=$threads =="
        HIVE_PARALLEL_THREADS="$threads" cargo test -q --offline --workspace
    done
    echo "== parallel sweep: benchmark (writes BENCH_parallel.json) =="
    cargo bench -q --offline -p hive-bench --bench parallel
fi

if [[ -n "${HIVE_DICT_SWEEP:-}" ]]; then
    for dict in 0 1; do
        echo "== dictionary sweep: tests at HIVE_DICT_ENABLED=$dict =="
        HIVE_DICT_ENABLED="$dict" cargo test -q --offline --workspace
    done
    echo "== dictionary sweep: benchmark (writes BENCH_dict.json) =="
    cargo bench -q --offline -p hive-bench --bench dictionary
fi

if [[ -n "${HIVE_SELVEC_SWEEP:-}" ]]; then
    for selvec in 0 1; do
        echo "== selvec sweep: tests at HIVE_SELVEC_ENABLED=$selvec =="
        HIVE_SELVEC_ENABLED="$selvec" cargo test -q --offline --workspace
    done
    echo "== selvec sweep: benchmark (writes BENCH_selvec.json) =="
    cargo bench -q --offline -p hive-bench --bench selvec
fi

if [[ -n "${HIVE_RAWTABLE_SWEEP:-}" ]]; then
    for raw in 0 1; do
        echo "== rawtable sweep: tests at HIVE_RAWTABLE_ENABLED=$raw =="
        HIVE_RAWTABLE_ENABLED="$raw" cargo test -q --offline --workspace
    done
    echo "== rawtable sweep: benchmark (writes BENCH_hash.json) =="
    cargo bench -q --offline -p hive-bench --bench hashtable
fi

if [[ -n "${HIVE_SPILL_SWEEP:-}" ]]; then
    for budget in 32768 1048576; do
        echo "== spill sweep: tests at HIVE_MEMORY_BUDGET=$budget =="
        HIVE_MEMORY_BUDGET="$budget" cargo test -q --offline --workspace
    done
    echo "== spill sweep: benchmark (writes BENCH_spill.json) =="
    cargo bench -q --offline -p hive-bench --bench spill
fi

if [[ -n "${HIVE_PIR_SWEEP:-}" ]]; then
    for pir in 0 1; do
        echo "== pir sweep: tests at HIVE_PIR_ENABLED=$pir =="
        HIVE_PIR_ENABLED="$pir" cargo test -q --offline --workspace
    done
    echo "== pir sweep: benchmark (writes BENCH_pir.json) =="
    cargo bench -q --offline -p hive-bench --bench pir
    echo "== pir sweep: aggregate/residual benchmark (writes BENCH_pir_agg.json) =="
    cargo bench -q --offline -p hive-bench --bench pir_agg
fi

if [[ -n "${HIVE_STATS_SWEEP:-}" ]]; then
    for hist in 0 1; do
        echo "== stats sweep: tests at HIVE_HISTOGRAMS_ENABLED=$hist =="
        HIVE_HISTOGRAMS_ENABLED="$hist" cargo test -q --offline --workspace
    done
    echo "== stats sweep: benchmark (writes BENCH_optstats.json) =="
    cargo bench -q --offline -p hive-bench --bench optstats
fi

if [[ -n "${HIVE_WM_SWEEP:-}" ]]; then
    for streams in 1 4 16; do
        for threads in 1 2 8; do
            echo "== wm sweep: $streams streams at HIVE_PARALLEL_THREADS=$threads =="
            HIVE_WM_STREAMS="$streams" \
                HIVE_PARALLEL_THREADS="$threads" \
                HIVE_FAULT_SEED="${HIVE_WM_SEED:-3112019}" \
                HIVE_FAULT_DAEMON_KILL_PROB=0.3 \
                HIVE_FAULT_DFS_SLOW_PROB=0.1 \
                cargo test -q --offline --test serving_determinism env_wm_sweep -- --nocapture
        done
    done
    echo "== wm sweep: benchmark (writes BENCH_throughput.json) =="
    cargo bench -q --offline -p hive-bench --bench throughput
fi

echo "== bench gates =="
python3 scripts/bench_check.py

echo "verify: OK"
