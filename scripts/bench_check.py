#!/usr/bin/env python3
"""Validate recorded benchmark speedup gates.

Loads every BENCH_*.json at the repo root. A benchmark that declares a
top-level ``"gates"`` object — a mapping of case name to the minimum
acceptable ``speedup`` — fails this check if any gated case's recorded
speedup sits below its floor, or if a gated case is missing from the
results. Benchmarks without a ``gates`` object are listed but not
gated (their JSON predates the gating convention).

Run directly or via scripts/verify.sh (the `bench gates` step). Gates
check the *recorded* numbers: re-run the matching `cargo bench` target
first if the implementation changed.
"""

import glob
import json
import os
import sys


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print("bench_check: no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures = []
    tables = {}  # file -> [(case, observed, floor, verdict)]
    for path in paths:
        name = os.path.basename(path)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            failures.append(f"{name}: unreadable ({e})")
            continue
        gates = doc.get("gates")
        if not isinstance(gates, dict):
            print(f"  {name}: no gates declared, skipped")
            continue
        speedups = {
            r["case"]: r["speedup"]
            for r in doc.get("results", [])
            if isinstance(r, dict) and "case" in r and "speedup" in r
        }
        rows = []
        for case, floor in sorted(gates.items()):
            got = speedups.get(case)
            if got is None:
                failures.append(f"{name}: gated case '{case}' missing from results")
                rows.append((case, None, floor, "MISSING"))
            elif got < floor:
                failures.append(
                    f"{name}: {case} speedup {got:.3f}x below its {floor:.2f}x floor"
                )
                rows.append((case, got, floor, "FAIL"))
            else:
                rows.append((case, got, floor, "ok"))
        tables[name] = rows
        print(f"  {name}: {len(gates)} gate(s) checked")
    if failures:
        # Per-case observed-vs-gate table: every gated case of every
        # file, not just the failing ones, so a regression shows its
        # margin context without re-running the bench.
        width = max(
            (len(case) for rows in tables.values() for case, *_ in rows),
            default=4,
        )
        print(f"\n{'case':<{width}}  {'observed':>9}  {'gate':>6}  verdict", file=sys.stderr)
        for name, rows in sorted(tables.items()):
            print(f"-- {name}", file=sys.stderr)
            for case, got, floor, verdict in rows:
                observed = "---" if got is None else f"{got:.3f}x"
                print(
                    f"{case:<{width}}  {observed:>9}  {floor:>5.2f}x  {verdict}",
                    file=sys.stderr,
                )
        print("", file=sys.stderr)
        for f in failures:
            print(f"bench_check: FAIL {f}", file=sys.stderr)
        return 1
    print("bench_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
