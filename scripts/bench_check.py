#!/usr/bin/env python3
"""Validate recorded benchmark speedup gates.

Loads every BENCH_*.json at the repo root. A benchmark that declares a
top-level ``"gates"`` object — a mapping of case name to the minimum
acceptable ``speedup`` — fails this check if any gated case's recorded
speedup sits below its floor, or if a gated case is missing from the
results. Benchmarks without a ``gates`` object are listed but not
gated (their JSON predates the gating convention).

Run directly or via scripts/verify.sh (the `bench gates` step). Gates
check the *recorded* numbers: re-run the matching `cargo bench` target
first if the implementation changed.
"""

import glob
import json
import os
import sys


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        print("bench_check: no BENCH_*.json files found", file=sys.stderr)
        return 1
    failures = []
    for path in paths:
        name = os.path.basename(path)
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            failures.append(f"{name}: unreadable ({e})")
            continue
        gates = doc.get("gates")
        if not isinstance(gates, dict):
            print(f"  {name}: no gates declared, skipped")
            continue
        speedups = {
            r["case"]: r["speedup"]
            for r in doc.get("results", [])
            if isinstance(r, dict) and "case" in r and "speedup" in r
        }
        for case, floor in sorted(gates.items()):
            got = speedups.get(case)
            if got is None:
                failures.append(f"{name}: gated case '{case}' missing from results")
            elif got < floor:
                failures.append(
                    f"{name}: {case} speedup {got:.3f}x below its {floor:.2f}x floor"
                )
        print(f"  {name}: {len(gates)} gate(s) checked")
    if failures:
        for f in failures:
            print(f"bench_check: FAIL {f}", file=sys.stderr)
        return 1
    print("bench_check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
