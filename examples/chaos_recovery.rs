//! Fault injection + fragment recovery, end to end.
//!
//! Boots a warehouse, runs an aggregation fault-free, then replays it
//! under a seeded chaos plan (daemon kills, transient/slow DFS reads,
//! cache corruption, fragment failures): results stay identical while
//! the failovers/retries and the simulated-latency penalty surface on
//! the `QueryResult`. Set `HIVE_FAULT_SEED` to override the built-in
//! plan with an environment-configured one.
//!
//! ```sh
//! cargo run --example chaos_recovery
//! HIVE_FAULT_SEED=42 cargo run --example chaos_recovery
//! ```

use hive_warehouse::{FaultPlan, HiveConf, HiveServer};

fn boot() -> HiveServer {
    let server = HiveServer::new(HiveConf::v3_1());
    let session = server.session();
    session
        .execute("CREATE TABLE region_dim (r_id INT, r_name STRING)")
        .unwrap();
    session
        .execute(
            "INSERT INTO region_dim VALUES \
             (0, 'AFRICA'), (1, 'AMERICA'), (2, 'ASIA'), (3, 'EUROPE'), (4, 'MIDDLE EAST')",
        )
        .unwrap();
    session
        .execute("CREATE TABLE sales (s_id INT, r_id INT, qty INT, amount DECIMAL(12,2))")
        .unwrap();
    for batch in 0..4 {
        let values: Vec<String> = (0..75)
            .map(|i| {
                let id = batch * 75 + i;
                format!(
                    "({id}, {}, {}, {}.{:02})",
                    id % 5,
                    (id * 7) % 23 + 1,
                    (id * 13) % 900 + 10,
                    id % 100,
                )
            })
            .collect();
        session
            .execute(&format!("INSERT INTO sales VALUES {}", values.join(", ")))
            .unwrap();
    }
    server
}

const QUERY: &str = "SELECT r_name, COUNT(*), SUM(amount) \
                     FROM sales JOIN region_dim ON sales.r_id = region_dim.r_id \
                     WHERE qty > 3 GROUP BY r_name ORDER BY r_name";

fn main() {
    // Fault-free reference run.
    let server = boot();
    let clean = server.session().execute(QUERY).unwrap();
    println!("fault-free:   sim {:8.2} ms", clean.sim_ms);
    for row in clean.display_rows() {
        println!("    {row}");
    }

    // The same query under chaos (env-overridable seed/rates).
    let plan = FaultPlan::from_env()
        .unwrap_or_else(|| FaultPlan::chaos(0xC0FFEE).with(|p| p.daemon_kill_prob = 0.6));
    println!(
        "\nchaos plan: seed={} kill={} dfs_err={} slow={} corrupt={} frag={} recovery={}",
        plan.seed,
        plan.daemon_kill_prob,
        plan.dfs_read_error_prob,
        plan.dfs_slow_prob,
        plan.cache_corruption_prob,
        plan.fragment_failure_prob,
        plan.recovery_enabled,
    );
    let server = boot();
    server.set_conf(|c| c.fault = plan.clone());
    match server.session().execute(QUERY) {
        Ok(r) => {
            println!(
                "under chaos:  sim {:8.2} ms   ({} fragment retries, {} failovers, \
                 {}/{} daemons alive)",
                r.sim_ms,
                r.fragment_retries,
                r.failovers,
                server.llap().live_node_count(),
                server.llap().nodes(),
            );
            for row in r.display_rows() {
                println!("    {row}");
            }
            assert_eq!(
                r.display_rows(),
                clean.display_rows(),
                "recovery must preserve results"
            );
            println!("results identical to the fault-free run ✓");
        }
        Err(e) => {
            assert!(!plan.recovery_enabled, "unexpected failure: {e}");
            println!("under chaos (recovery disabled): {} — {e}", e.kind());
        }
    }

    // Kill every daemon but one; the survivor answers alone (§5.1).
    let server = boot();
    for node in 0..server.llap().nodes() - 1 {
        server.llap().kill_daemon(node);
    }
    let r = server.session().execute(QUERY).unwrap();
    println!(
        "\n1 of {} daemons alive: sim {:.2} ms, rows match: {}",
        server.llap().nodes(),
        r.sim_ms,
        r.display_rows() == clean.display_rows(),
    );
}
