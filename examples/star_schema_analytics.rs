//! Star-schema analytics (paper §4): load the TPC-DS-derived schema,
//! run star joins with cost-based optimization and dynamic semijoin
//! reduction, then accelerate a reporting query with a materialized
//! view and automatic rewriting.
//!
//! ```bash
//! cargo run --release --example star_schema_analytics
//! ```

use hive_warehouse::benchdata::tpcds;
use hive_warehouse::{HiveConf, HiveServer};

fn main() -> hive_warehouse::Result<()> {
    let server = HiveServer::new(HiveConf::v3_1());
    let rows = tpcds::load(&server, tpcds::TpcdsScale::tiny(), 7)?;
    println!("loaded {rows} rows into the TPC-DS-derived schema");
    let session = server.session();

    // A classic star join: fact + two filtered dimensions.
    let star = "SELECT i_category, d_moy, SUM(ss_ext_sales_price) AS revenue
                FROM store_sales, item, date_dim
                WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
                  AND i_category IN ('Sports', 'Books')
                GROUP BY i_category, d_moy
                ORDER BY i_category, d_moy";
    let r = session.execute(star)?;
    println!("\nrevenue by category and month ({} groups):", r.num_rows());
    for row in r.display_rows().iter().take(6) {
        println!("  {row}");
    }
    println!(
        "  … simulated response {:.0} ms; the EXPLAIN below shows the\n  semijoin reducer the optimizer attached to the fact scan:",
        r.sim_ms
    );
    let explain = session.execute(&format!("EXPLAIN {star}"))?;
    for line in explain.message.unwrap_or_default().lines() {
        println!("  | {line}");
    }

    // Materialized view + automatic rewriting (§4.4).
    session.execute(
        "CREATE MATERIALIZED VIEW category_daily AS
         SELECT i_category, d_date_sk AS day_sk, d_moy,
                SUM(ss_ext_sales_price) AS revenue, COUNT(*) AS sales
         FROM store_sales, item, date_dim
         WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
         GROUP BY i_category, d_date_sk, d_moy",
    )?;
    // This coarser rollup is answered from the view, not the fact table.
    let q = "SELECT i_category, SUM(ss_ext_sales_price) AS revenue
             FROM store_sales, item, date_dim
             WHERE ss_item_sk = i_item_sk AND ss_sold_date_sk = d_date_sk
             GROUP BY i_category ORDER BY revenue DESC";
    let rewritten = session.execute(q)?;
    println!(
        "\nrollup query answered from materialized view: {}",
        rewritten.used_mv
    );
    for row in rewritten.display_rows().iter().take(5) {
        println!("  {row}");
    }

    // New data makes the view stale; REBUILD refreshes it.
    session.execute(
        "INSERT INTO store_sales VALUES
            (1, 1, 1, 1, 1, 1, 123456, 2, 10.00, 20.00, 15.00, 30.00, 10.00, 2451545)",
    )?;
    let stale = session.execute(q)?;
    println!(
        "after new data, view used: {} (stale views never serve queries)",
        stale.used_mv
    );
    let rebuilt = session.execute("ALTER MATERIALIZED VIEW category_daily REBUILD")?;
    println!("{}", rebuilt.message.unwrap_or_default());
    let fresh = session.execute(q)?;
    println!("after REBUILD, view used: {}", fresh.used_mv);
    Ok(())
}
