//! ACID in action (paper §3.2): row-level UPDATE / DELETE / MERGE over
//! the base/delta file layout, snapshot isolation, conflict resolution,
//! and compaction.
//!
//! ```bash
//! cargo run --release --example acid_transactions
//! ```

use hive_warehouse::{HiveConf, HiveServer};

fn main() -> hive_warehouse::Result<()> {
    let server = HiveServer::new(HiveConf::v3_1().with(|c| {
        // Trigger compaction aggressively so the demo shows it.
        c.compaction_delta_threshold = 5;
    }));
    let session = server.session();

    session.execute("CREATE TABLE accounts (id INT, owner STRING, balance DECIMAL(10,2))")?;
    for i in 0..10 {
        session.execute(&format!(
            "INSERT INTO accounts VALUES ({i}, 'owner{i}', {}.00)",
            100 + i * 10
        ))?;
    }
    println!("after 10 single-row inserts (each its own transaction/delta):");
    show(&session, "SELECT COUNT(*), SUM(balance) FROM accounts")?;

    // Row-level DML: update = delete + insert under the covers, delete =
    // tombstone records in delete_delta directories.
    session.execute("UPDATE accounts SET balance = balance + 5.00 WHERE id < 3")?;
    session.execute("DELETE FROM accounts WHERE id = 9")?;
    show(&session, "SELECT COUNT(*), SUM(balance) FROM accounts")?;

    // MERGE (upsert) from a staging table.
    session.execute("CREATE TABLE staging (id INT, owner STRING, balance DECIMAL(10,2))")?;
    session.execute("INSERT INTO staging VALUES (0, 'owner0', 999.00), (42, 'newcomer', 1.00)")?;
    session.execute(
        "MERGE INTO accounts a USING staging s ON a.id = s.id
         WHEN MATCHED THEN UPDATE SET balance = s.balance
         WHEN NOT MATCHED THEN INSERT VALUES (s.id, s.owner, s.balance)",
    )?;
    println!("\nafter MERGE:");
    show(
        &session,
        "SELECT id, owner, balance FROM accounts ORDER BY id",
    )?;

    // The compaction queue: SHOW COMPACTIONS exposes what the automatic
    // trigger did (the delta threshold was 5).
    println!("\ncompaction history:");
    show(&session, "SHOW COMPACTIONS")?;

    // A manual major compaction squashes everything into one base.
    session.execute("ALTER TABLE accounts COMPACT 'major'")?;
    let table = server.metastore().get_table("default", "accounts")?;
    println!("\ndirectories after major compaction:");
    for entry in server
        .fs()
        .list(&hive_warehouse::DfsPath::new(&table.location))
    {
        println!("  {}", entry.path);
    }
    show(&session, "SELECT COUNT(*), SUM(balance) FROM accounts")?;
    Ok(())
}

fn show(session: &hive_warehouse::Session, sql: &str) -> hive_warehouse::Result<()> {
    for row in session.execute(sql)?.display_rows() {
        println!("  {row}");
    }
    Ok(())
}
