//! The federated warehouse (paper §6): Hive as a mediator over
//! specialized systems. Maps external tables onto a Druid-style OLAP
//! store and a JDBC-style database, and shows the Calcite-role pushdown
//! generating native queries for each (Figure 6).
//!
//! ```bash
//! cargo run --release --example federated_warehouse
//! ```

use hive_warehouse::common::{dates, DataType, Field, Row, Schema, Value, VectorBatch};
use hive_warehouse::{HiveConf, HiveServer};

fn main() -> hive_warehouse::Result<()> {
    let server = HiveServer::new(HiveConf::v3_1());

    // --- a pre-existing Druid datasource (the paper's my_druid_source) --
    let schema = Schema::new(vec![
        Field::new("__time", DataType::Timestamp),
        Field::new("d1", DataType::String),
        Field::new("m1", DataType::Double),
    ]);
    server
        .druid()
        .create_datasource("my_druid_source", &schema)?;
    let base = dates::civil_to_days(2017, 1, 1) as i64;
    let rows: Vec<Row> = (0..5_000)
        .map(|i| {
            Row::new(vec![
                Value::Timestamp((base + (i % 700) as i64) * dates::MICROS_PER_DAY),
                Value::String(format!("dim{}", i % 9)),
                Value::Double((i % 250) as f64),
            ])
        })
        .collect();
    server
        .druid()
        .ingest("my_druid_source", &VectorBatch::from_rows(&schema, &rows)?)?;

    let session = server.session();
    // §6.1: map an external table; schema is inferred from Druid.
    session.execute(
        "CREATE EXTERNAL TABLE druid_table_1 ()
         STORED BY 'druid'
         TBLPROPERTIES ('druid.datasource' = 'my_druid_source')",
    )?;

    // Figure 6's query: the optimizer converts it into a Druid groupBy
    // JSON query with an interval derived from the EXTRACT predicate.
    let fig6 = "SELECT d1, SUM(m1) AS s
                FROM druid_table_1
                WHERE EXTRACT(year FROM __time) BETWEEN 2017 AND 2018
                GROUP BY d1
                ORDER BY s DESC
                LIMIT 10";
    let r = session.execute(fig6)?;
    println!("Figure 6 query via Druid pushdown ({} rows):", r.num_rows());
    for row in r.display_rows().iter().take(3) {
        println!("  {row}");
    }
    println!("\nplan (note the pushed groupBy landing in the scan):");
    for line in session
        .execute(&format!("EXPLAIN {fig6}"))?
        .message
        .unwrap_or_default()
        .lines()
    {
        println!("  | {line}");
    }

    // --- a JDBC-style remote database ---------------------------------
    server.jdbc().create_table(
        "orders",
        Schema::new(vec![
            Field::new("o_id", DataType::Int),
            Field::new("o_region", DataType::String),
            Field::new("o_total", DataType::Double),
        ]),
    );
    server.jdbc().insert(
        "orders",
        (0..1000)
            .map(|i| {
                Row::new(vec![
                    Value::Int(i),
                    Value::String(["NA", "EU", "APAC"][i as usize % 3].into()),
                    Value::Double(i as f64 * 3.5),
                ])
            })
            .collect(),
    )?;
    session.execute("CREATE EXTERNAL TABLE orders () STORED BY 'jdbc'")?;
    let r = session.execute(
        "SELECT o_region, COUNT(*) AS n FROM orders WHERE o_total > 3000.0 GROUP BY o_region ORDER BY o_region",
    )?;
    println!("\nJDBC-backed aggregation:");
    for row in r.display_rows() {
        println!("  {row}");
    }
    println!("\nSQL text generated for the remote system:");
    for sql in server.jdbc().received_sql() {
        println!("  >> {sql}");
    }

    // Hive as the data-movement layer (§6): copy remote data into an
    // ACID table with one INSERT…SELECT.
    session.execute("CREATE TABLE local_orders (o_id INT, o_region STRING, o_total DOUBLE)")?;
    let moved = session.execute(
        "INSERT INTO local_orders SELECT o_id, o_region, o_total FROM orders WHERE o_region = 'EU'",
    )?;
    println!(
        "\nfederated data movement: copied {} EU orders into an ACID table",
        moved.affected_rows
    );
    Ok(())
}
