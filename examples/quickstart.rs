//! Quickstart: boot an embedded warehouse, create a partitioned ACID
//! table, load data, and query it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use hive_warehouse::{HiveConf, HiveServer};

fn main() -> hive_warehouse::Result<()> {
    // A full-featured Hive 3.1-style server: Tez-like runtime, LLAP
    // cache, cost-based optimizer, ACID tables.
    let server = HiveServer::new(HiveConf::v3_1());
    let session = server.session();

    // The paper's §3.1 example table, partitioned by day.
    session.execute(
        "CREATE TABLE store_sales (
            sold_date_sk INT, item_sk INT, customer_sk INT, store_sk INT,
            quantity INT, list_price DECIMAL(7,2), sales_price DECIMAL(7,2)
         ) PARTITIONED BY (sold_date INT)",
    )?;

    // Rows route to partition directories automatically.
    session.execute(
        "INSERT INTO store_sales VALUES
            (1, 101, 7, 1, 2, 19.99, 17.49, 20200101),
            (1, 102, 7, 1, 1, 5.25, 5.25, 20200101),
            (2, 101, 9, 2, 4, 19.99, 18.00, 20200102),
            (2, 103, 3, 1, 1, 99.00, 89.10, 20200102)",
    )?;

    // Partition pruning: only the 20200102 directory is read.
    let result = session.execute(
        "SELECT item_sk, SUM(sales_price * quantity) AS revenue
         FROM store_sales
         WHERE sold_date = 20200102
         GROUP BY item_sk
         ORDER BY revenue DESC",
    )?;
    println!("revenue by item on 2020-01-02:");
    for row in result.display_rows() {
        println!("  {row}");
    }
    println!(
        "(simulated cluster response time: {:.1} ms, {} bytes read)",
        result.sim_ms, result.bytes_disk
    );

    // EXPLAIN shows the optimized plan, including the pruned partition
    // list and pushed filters.
    let plan =
        session.execute("EXPLAIN SELECT COUNT(*) FROM store_sales WHERE sold_date = 20200102")?;
    println!("\nEXPLAIN:\n{}", plan.message.unwrap_or_default());

    // Repeat queries hit the results cache (§4.3 of the paper).
    let again = session.execute(
        "SELECT item_sk, SUM(sales_price * quantity) AS revenue
         FROM store_sales
         WHERE sold_date = 20200102
         GROUP BY item_sk
         ORDER BY revenue DESC",
    )?;
    println!("second run served from results cache: {}", again.from_cache);
    Ok(())
}
