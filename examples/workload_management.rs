//! Workload management (paper §5.2): resource plans, pools, mappings
//! and triggers controlling LLAP access in a multi-tenant cluster —
//! reproducing the paper's `daytime` resource-plan example.
//!
//! ```bash
//! cargo run --release --example workload_management
//! ```

use hive_warehouse::{HiveConf, HiveServer};

fn main() -> hive_warehouse::Result<()> {
    let server = HiveServer::new(HiveConf::v3_1());
    let session = server.session();
    session.execute("CREATE TABLE events (user_id INT, kind STRING, amount DOUBLE)")?;
    let values: Vec<String> = (0..5000)
        .map(|i| format!("({}, 'kind{}', {}.0)", i % 500, i % 7, i % 90))
        .collect();
    session.execute(&format!("INSERT INTO events VALUES {}", values.join(", ")))?;

    // The paper's §5.2 resource plan:
    //   CREATE RESOURCE PLAN daytime;
    //   CREATE POOL daytime.bi  WITH alloc_fraction=0.8, query_parallelism=5;
    //   CREATE POOL daytime.etl WITH alloc_fraction=0.2, query_parallelism=20;
    //   CREATE RULE downgrade IN daytime WHEN total_runtime > 3000 THEN MOVE etl;
    //   CREATE APPLICATION MAPPING visualization_app IN daytime TO bi;
    //   ALTER PLAN daytime SET DEFAULT POOL = etl;
    //   ALTER RESOURCE PLAN daytime ENABLE ACTIVATE;
    let plan = hive_warehouse::core::resource_plan_example();
    println!("activating resource plan:\n{plan}");
    server.activate_resource_plan(plan)?;

    // Queries from the BI application land in the bi pool…
    let bi = server.session_for("alice", Some("visualization_app"));
    let r = bi.execute("SELECT kind, SUM(amount) FROM events GROUP BY kind")?;
    println!("BI query ran ({} rows) — routed to pool 'bi'", r.num_rows());

    // …everything else defaults to etl.
    let etl = server.session_for("batch-user", None);
    etl.execute("SELECT COUNT(*) FROM events")?;
    println!("batch query ran — routed to pool 'etl' (default)");

    // Admission control: the bi pool runs at most 5 concurrent queries;
    // extra ones borrow idle etl capacity.
    println!(
        "\nadmission check: bi running = {}, etl running = {} (slots release after each query)",
        server.workload(|w| w.running_in("bi")),
        server.workload(|w| w.running_in("etl")),
    );

    // Triggers: a long-running query in bi is moved to etl (the paper's
    // `downgrade` rule at 3000 ms). Simulated runtimes here are short,
    // so demonstrate the trigger machinery directly: admit a query into
    // bi and walk its trigger timeline as if it ran for 3.5 s.
    let slot = server.workload(|w| w.admit("alice", Some("visualization_app"), &[]))?;
    println!(
        "\nadmitted into '{}' (guaranteed fraction {})",
        slot.pool(),
        slot.guaranteed_fraction()
    );
    let verdict = slot.resolve_triggers(3500);
    println!("trigger timeline for a 3.5s query in 'bi': {verdict:?}");
    println!("the slot now occupies pool '{}'", slot.pool());
    drop(slot);

    // Concurrent serving: drive three tenant streams through the plan
    // on one simulated timeline (admission queues + fair sharing).
    let streams: Vec<hive_warehouse::QueryStream> = (0..3)
        .map(|i| hive_warehouse::QueryStream {
            name: format!("stream-{i}"),
            user: format!("analyst-{i}"),
            application: Some("visualization_app".into()),
            groups: vec![],
            statements: vec![
                "SELECT kind, SUM(amount) FROM events GROUP BY kind".into(),
                "SELECT COUNT(*) FROM events WHERE user_id < 100".into(),
            ],
        })
        .collect();
    let report = hive_warehouse::run_streams(
        &server,
        &streams,
        &hive_warehouse::ServingOptions::default(),
    );
    println!(
        "\nserved {} queries across {} streams in {:.1} sim-ms ({:.0} queries/hour)",
        report.completed,
        streams.len(),
        report.span_ms,
        report.queries_per_hour,
    );
    Ok(())
}
