//! Property-based tests of the corc format: arbitrary batches survive
//! the write→read round trip exactly, and row-group selection never
//! drops matching rows (sargs are pruning-only).

use hive_common::{DataType, Field, Row, Schema, Value, VectorBatch};
use hive_corc::{
    reader::round_trip, ColumnPredicate, CorcFile, CorcWriter, SearchArgument, WriterOptions,
};
use hive_dfs::{DfsPath, DistFs};
use proptest::prelude::*;

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (
            any::<Option<i64>>(),
            proptest::option::of("[a-zA-Z0-9]{0,12}"),
            any::<Option<bool>>(),
            proptest::option::of(-1_000_000i64..1_000_000),
        ),
        0..max,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(a, b, c, d)| {
                Row::new(vec![
                    a.map(Value::BigInt).unwrap_or(Value::Null),
                    b.map(Value::String).unwrap_or(Value::Null),
                    c.map(Value::Boolean).unwrap_or(Value::Null),
                    d.map(|v| Value::Decimal(v as i128, 2)).unwrap_or(Value::Null),
                ])
            })
            .collect()
    })
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::BigInt),
        Field::new("s", DataType::String),
        Field::new("flag", DataType::Boolean),
        Field::new("amount", DataType::Decimal(18, 2)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_read_round_trip_exact(rows in arb_rows(200), rg in 1usize..64) {
        let batch = VectorBatch::from_rows(&schema(), &rows).unwrap();
        let opts = WriterOptions {
            row_group_size: rg,
            bloom_columns: vec![0, 1],
            bloom_fpp: 0.05,
        };
        let back = round_trip(&batch, opts).unwrap();
        prop_assert_eq!(back, batch);
    }

    #[test]
    fn sarg_selection_never_loses_matches(
        keys in proptest::collection::vec(-500i64..500, 1..300),
        lo in -500i64..500,
        span in 0i64..200,
        rg in 1usize..50,
    ) {
        let rows: Vec<Row> = keys
            .iter()
            .map(|&k| Row::new(vec![
                Value::BigInt(k),
                Value::String(format!("s{k}")),
                Value::Boolean(k % 2 == 0),
                Value::Decimal(k as i128, 2),
            ]))
            .collect();
        let batch = VectorBatch::from_rows(&schema(), &rows).unwrap();
        let fs = DistFs::new();
        let path = DfsPath::new("/p/f");
        let mut w = CorcWriter::new(schema(), WriterOptions {
            row_group_size: rg,
            bloom_columns: vec![0],
            bloom_fpp: 0.02,
        }).unwrap();
        w.write_batch(&batch).unwrap();
        fs.create(&path, w.finish().unwrap()).unwrap();
        let f = CorcFile::open(&fs, &path).unwrap();

        let hi = lo + span;
        let sarg = SearchArgument::with(vec![ColumnPredicate::Between(
            0, Value::BigInt(lo), Value::BigInt(hi),
        )]);
        // Read only the selected row groups and count matches.
        let mut selected_matches = 0usize;
        for g in f.selected_row_groups(&sarg) {
            let part = f.read_row_group(g, &[0]).unwrap();
            for i in 0..part.num_rows() {
                if let Value::BigInt(k) = part.column(0).get(i) {
                    if k >= lo && k <= hi {
                        selected_matches += 1;
                    }
                }
            }
        }
        let expected = keys.iter().filter(|&&k| k >= lo && k <= hi).count();
        prop_assert_eq!(selected_matches, expected, "sarg pruning dropped matching rows");
    }
}
