//! Property-based tests of the corc format: arbitrary batches survive
//! the write→read round trip exactly, and row-group selection never
//! drops matching rows (sargs are pruning-only).

use hive_common::{DataType, Field, Row, Schema, Value, VectorBatch};
use hive_corc::{
    reader::round_trip, ColumnPredicate, CorcFile, CorcWriter, SearchArgument, WriterOptions,
};
use hive_dfs::{DfsPath, DistFs};
use proptest::prelude::*;

fn arb_rows(max: usize) -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (
            any::<Option<i64>>(),
            proptest::option::of("[a-zA-Z0-9]{0,12}"),
            any::<Option<bool>>(),
            proptest::option::of(-1_000_000i64..1_000_000),
        ),
        0..max,
    )
    .prop_map(|rows| {
        rows.into_iter()
            .map(|(a, b, c, d)| {
                Row::new(vec![
                    a.map(Value::BigInt).unwrap_or(Value::Null),
                    b.map(Value::String).unwrap_or(Value::Null),
                    c.map(Value::Boolean).unwrap_or(Value::Null),
                    d.map(|v| Value::Decimal(v as i128, 2))
                        .unwrap_or(Value::Null),
                ])
            })
            .collect()
    })
}

fn schema() -> Schema {
    Schema::new(vec![
        Field::new("k", DataType::BigInt),
        Field::new("s", DataType::String),
        Field::new("flag", DataType::Boolean),
        Field::new("amount", DataType::Decimal(18, 2)),
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_read_round_trip_exact(rows in arb_rows(200), rg in 1usize..64) {
        let batch = VectorBatch::from_rows(&schema(), &rows).unwrap();
        let opts = WriterOptions {
            row_group_size: rg,
            bloom_columns: vec![0, 1],
            bloom_fpp: 0.05,
            ..Default::default()
        };
        let back = round_trip(&batch, opts).unwrap();
        prop_assert_eq!(back, batch);
    }

    #[test]
    fn sarg_selection_never_loses_matches(
        keys in proptest::collection::vec(-500i64..500, 1..300),
        lo in -500i64..500,
        span in 0i64..200,
        rg in 1usize..50,
    ) {
        let rows: Vec<Row> = keys
            .iter()
            .map(|&k| Row::new(vec![
                Value::BigInt(k),
                Value::String(format!("s{k}")),
                Value::Boolean(k % 2 == 0),
                Value::Decimal(k as i128, 2),
            ]))
            .collect();
        let batch = VectorBatch::from_rows(&schema(), &rows).unwrap();
        let fs = DistFs::new();
        let path = DfsPath::new("/p/f");
        let mut w = CorcWriter::new(schema(), WriterOptions {
            row_group_size: rg,
            bloom_columns: vec![0],
            bloom_fpp: 0.02,
            ..Default::default()
        }).unwrap();
        w.write_batch(&batch).unwrap();
        fs.create(&path, w.finish().unwrap()).unwrap();
        let f = CorcFile::open(&fs, &path).unwrap();

        let hi = lo + span;
        let sarg = SearchArgument::with(vec![ColumnPredicate::Between(
            0, Value::BigInt(lo), Value::BigInt(hi),
        )]);
        // Read only the selected row groups and count matches.
        let mut selected_matches = 0usize;
        for g in f.selected_row_groups(&sarg) {
            let part = f.read_row_group(g, &[0]).unwrap();
            for i in 0..part.num_rows() {
                if let Value::BigInt(k) = part.column(0).get(i) {
                    if k >= lo && k <= hi {
                        selected_matches += 1;
                    }
                }
            }
        }
        let expected = keys.iter().filter(|&&k| k >= lo && k <= hi).count();
        prop_assert_eq!(selected_matches, expected, "sarg pruning dropped matching rows");
    }
}

// --- dictionary-encoded round trips ------------------------------------

use hive_common::ColumnVector;
use std::sync::Arc;

fn str_schema() -> Schema {
    Schema::new(vec![Field::new("s", DataType::String)])
}

/// Write `batch`, then read it back both materialized and encoded; the
/// encoded form must decode to exactly the materialized read.
fn encoded_round_trip(batch: &VectorBatch, rg: usize) -> (VectorBatch, VectorBatch) {
    let fs = DistFs::new();
    let path = DfsPath::new("/t/dict_rt");
    let mut w = CorcWriter::new(
        batch.schema().clone(),
        WriterOptions {
            row_group_size: rg,
            ..Default::default()
        },
    )
    .unwrap();
    w.write_batch(batch).unwrap();
    fs.create(&path, w.finish().unwrap()).unwrap();
    let f = CorcFile::open(&fs, &path).unwrap();
    (f.read_all().unwrap(), f.read_all_encoded().unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Low-cardinality string columns (the case the writer dictionary-
    /// encodes): write → read_all_encoded → decode is the identity.
    #[test]
    fn dict_write_read_decode_round_trip(
        picks in proptest::collection::vec(proptest::option::of(0usize..5), 0..200),
        rg in 1usize..64,
    ) {
        let pool = ["", "alpha", "beta", "gamma", "delta"];
        let rows: Vec<Row> = picks
            .iter()
            .map(|p| Row::new(vec![p.map(|i| Value::String(pool[i].into())).unwrap_or(Value::Null)]))
            .collect();
        let batch = VectorBatch::from_rows(&str_schema(), &rows).unwrap();
        let (plain, encoded) = encoded_round_trip(&batch, rg);
        prop_assert_eq!(&plain, &batch);
        // Encoded and plain reads are logically equal before decode
        // (ColumnVector::PartialEq compares Dict vs Str by content)...
        prop_assert_eq!(&encoded, &batch);
        // ...and exactly equal after materialization.
        prop_assert_eq!(encoded.decode(), plain);
    }

    /// A Dict column fed to the writer round-trips the same as its
    /// materialized form: the encoder is representation-agnostic.
    #[test]
    fn dict_input_encodes_byte_identically(
        codes in proptest::collection::vec(0u32..4, 1..150),
        null_every in 2usize..7,
        rg in 1usize..64,
    ) {
        let dict = Arc::new(vec![
            "a".to_string(),
            "bb".to_string(),
            "ccc".to_string(),
            "".to_string(),
        ]);
        let mut nulls = hive_common::BitSet::new(codes.len());
        for i in (0..codes.len()).step_by(null_every) {
            nulls.set(i);
        }
        let col = ColumnVector::dict_from_codes(codes, dict, Some(nulls)).unwrap();
        let n = col.len();
        let as_dict = VectorBatch::new_with_rows(str_schema(), vec![col.clone()], n).unwrap();
        let as_str = VectorBatch::new_with_rows(str_schema(), vec![col.decode()], n).unwrap();
        let opts = WriterOptions { row_group_size: rg, ..Default::default() };
        let from_dict =
            hive_corc::writer::write_batch_to_bytes(&as_dict, opts.clone()).unwrap();
        let from_str = hive_corc::writer::write_batch_to_bytes(&as_str, opts).unwrap();
        prop_assert_eq!(from_dict, from_str, "Dict input changed the file bytes");
        let (_, encoded) = encoded_round_trip(&as_dict, rg);
        prop_assert_eq!(encoded.decode(), as_str);
    }
}

/// Zero rows means a zero-length dictionary; the boundary code
/// `dict_len - 1` is the largest that may round-trip.
#[test]
fn dict_edge_cases_round_trip() {
    // Empty dictionary / empty column.
    let empty = VectorBatch::new_with_rows(
        str_schema(),
        vec![ColumnVector::dict_from_codes(vec![], Arc::new(vec![]), None).unwrap()],
        0,
    )
    .unwrap();
    let (plain, encoded) = encoded_round_trip(&empty, 8);
    assert_eq!(plain.num_rows(), 0);
    assert_eq!(encoded.decode(), plain);

    // Every row uses the boundary code dict_len - 1.
    let dict = Arc::new(vec!["lo".to_string(), "hi".to_string()]);
    let col = ColumnVector::dict_from_codes(vec![1, 1, 1], dict.clone(), None).unwrap();
    let b = VectorBatch::new_with_rows(str_schema(), vec![col], 3).unwrap();
    let (plain, encoded) = encoded_round_trip(&b, 2);
    assert_eq!(encoded.decode(), plain);
    assert_eq!(plain.column(0).get(2), Value::String("hi".into()));

    // One past the boundary is rejected at construction.
    let err = ColumnVector::dict_from_codes(vec![0, 2], dict, None).unwrap_err();
    assert!(matches!(err, hive_common::HiveError::Format(_)), "{err:?}");
}
