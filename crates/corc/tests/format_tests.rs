//! End-to-end tests of the corc format: write to the simulated DFS,
//! read back with projection and sarg pushdown, and verify the I/O
//! meter observes the pushdowns.

use bytes::Bytes;
use hive_common::{DataType, Field, Row, Schema, Value, VectorBatch};
use hive_corc::{
    reader, writer::write_batch_to_bytes, ColumnPredicate, CorcFile, CorcWriter, SearchArgument,
    WriterOptions,
};
use hive_dfs::{DfsPath, DistFs};

fn sales_schema() -> Schema {
    Schema::new(vec![
        Field::new("id", DataType::BigInt),
        Field::new("category", DataType::String),
        Field::new("price", DataType::Decimal(7, 2)),
        Field::new("sold", DataType::Date),
    ])
}

fn sales_rows(n: usize) -> Vec<Row> {
    (0..n)
        .map(|i| {
            Row::new(vec![
                Value::BigInt(i as i64),
                Value::String(["sports", "books", "music", "home"][i % 4].into()),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::Decimal((i as i128 % 1000) * 7, 2)
                },
                Value::Date(17_000 + (i / 100) as i32),
            ])
        })
        .collect()
}

fn write_sales(fs: &DistFs, path: &DfsPath, n: usize, opts: WriterOptions) -> CorcFile {
    let schema = sales_schema();
    let batch = VectorBatch::from_rows(&schema, &sales_rows(n)).unwrap();
    let mut w = CorcWriter::new(schema, opts).unwrap();
    w.write_batch(&batch).unwrap();
    let bytes = w.finish().unwrap();
    fs.create(path, bytes).unwrap();
    CorcFile::open(fs, path).unwrap()
}

#[test]
fn write_read_round_trip() {
    let fs = DistFs::new();
    let path = DfsPath::new("/t/f0");
    let f = write_sales(
        &fs,
        &path,
        2500,
        WriterOptions {
            row_group_size: 1000,
            ..Default::default()
        },
    );
    assert_eq!(f.num_rows(), 2500);
    assert_eq!(f.row_group_count(), 3);
    assert_eq!(f.row_group_rows(2), 500);
    let all = f.read_all().unwrap();
    assert_eq!(all.num_rows(), 2500);
    let expected = sales_rows(2500);
    assert_eq!(all.row(0), expected[0]);
    assert_eq!(all.row(2499), expected[2499]);
    // NULLs preserved.
    assert!(all.column(2).is_null(0));
    assert!(all.column(2).is_null(11));
    assert!(!all.column(2).is_null(1));
}

#[test]
fn projection_reads_fewer_bytes() {
    let fs = DistFs::new();
    let path = DfsPath::new("/t/f0");
    let f = write_sales(
        &fs,
        &path,
        10_000,
        WriterOptions {
            row_group_size: 1000,
            ..Default::default()
        },
    );
    let before = fs.stats().snapshot();
    let one = f.read_row_group(0, &[0]).unwrap();
    let one_col = fs.stats().snapshot().since(&before).bytes_read;
    assert_eq!(one.num_columns(), 1);

    let before = fs.stats().snapshot();
    let all: Vec<usize> = (0..4).collect();
    f.read_row_group(0, &all).unwrap();
    let all_cols = fs.stats().snapshot().since(&before).bytes_read;
    assert!(
        one_col * 2 < all_cols,
        "projection should cut bytes read: {one_col} vs {all_cols}"
    );
}

#[test]
fn sarg_skips_row_groups_by_range() {
    let fs = DistFs::new();
    let path = DfsPath::new("/t/f0");
    let f = write_sales(
        &fs,
        &path,
        10_000,
        WriterOptions {
            row_group_size: 1000,
            ..Default::default()
        },
    );
    // id is monotonically increasing: 0..10_000 in groups of 1000.
    let sarg = SearchArgument::with(vec![ColumnPredicate::Between(
        0,
        Value::BigInt(2500),
        Value::BigInt(3500),
    )]);
    let selected = f.selected_row_groups(&sarg);
    assert_eq!(selected, vec![2, 3]);
    // An impossible predicate selects nothing.
    let none = f.selected_row_groups(&SearchArgument::with(vec![ColumnPredicate::Gt(
        0,
        Value::BigInt(1_000_000),
    )]));
    assert!(none.is_empty());
}

#[test]
fn bloom_filter_skips_point_lookups() {
    let fs = DistFs::new();
    let path = DfsPath::new("/t/f0");
    // Bloom on column 1 (category). Every row group contains all four
    // categories, so range stats alone cannot skip; a missing value can
    // only be skipped via the Bloom filter.
    let f = write_sales(
        &fs,
        &path,
        4000,
        WriterOptions {
            row_group_size: 1000,
            bloom_columns: vec![1],
            bloom_fpp: 0.01,
            ..Default::default()
        },
    );
    let missing =
        SearchArgument::with(vec![ColumnPredicate::Eq(1, Value::String("garden".into()))]);
    assert!(f.selected_row_groups(&missing).is_empty());
    let present =
        SearchArgument::with(vec![ColumnPredicate::Eq(1, Value::String("sports".into()))]);
    assert_eq!(f.selected_row_groups(&present).len(), 4);
}

#[test]
fn file_stats_merge_row_groups() {
    let fs = DistFs::new();
    let path = DfsPath::new("/t/f0");
    let f = write_sales(
        &fs,
        &path,
        3000,
        WriterOptions {
            row_group_size: 1000,
            ..Default::default()
        },
    );
    let s = f.file_column_stats(0);
    assert_eq!(s.min, Some(Value::BigInt(0)));
    assert_eq!(s.max, Some(Value::BigInt(2999)));
    assert_eq!(s.num_rows, 3000);
    let nulls = f.file_column_stats(2);
    assert_eq!(
        nulls.null_count,
        (0..3000).filter(|i| i % 11 == 0).count() as u64
    );
}

#[test]
fn dictionary_encoding_kicks_in_for_low_cardinality() {
    // category column has 4 distinct values over 4000 rows — dictionary
    // encoding should make its chunk far smaller than plain would be.
    let schema = Schema::new(vec![Field::new("category", DataType::String)]);
    let rows: Vec<Row> = (0..4000)
        .map(|i| {
            Row::new(vec![Value::String(
                ["sports", "books", "music", "home"][i % 4].into(),
            )])
        })
        .collect();
    let batch = VectorBatch::from_rows(&schema, &rows).unwrap();
    let bytes = write_batch_to_bytes(&batch, WriterOptions::default()).unwrap();
    // Plain would be ≥ 4000 * 7 bytes ≈ 28 KB for data alone; dictionary
    // indexes cost ~1 byte/row (the cycling pattern defeats RLE runs).
    assert!(
        bytes.len() < 6000,
        "dictionary encoding should compress: {} bytes",
        bytes.len()
    );
    let back = reader::round_trip(&batch, WriterOptions::default()).unwrap();
    assert_eq!(back, batch);
}

#[test]
fn open_reads_footer_only() {
    let fs = DistFs::new();
    let path = DfsPath::new("/t/f0");
    write_sales(&fs, &path, 100_000, WriterOptions::default());
    let file_len = fs.stat(&path).unwrap().len;
    let before = fs.stats().snapshot();
    let _f = CorcFile::open(&fs, &path).unwrap();
    let d = fs.stats().snapshot().since(&before);
    assert!(
        d.bytes_read * 10 < file_len,
        "open should read only footer: {} of {}",
        d.bytes_read,
        file_len
    );
}

#[test]
fn corrupt_files_rejected() {
    let fs = DistFs::new();
    let bad = DfsPath::new("/t/bad");
    fs.create(&bad, Bytes::from_static(b"not a corc file at all"))
        .unwrap();
    assert!(CorcFile::open(&fs, &bad).is_err());
    let short = DfsPath::new("/t/short");
    fs.create(&short, Bytes::from_static(b"xy")).unwrap();
    assert!(CorcFile::open(&fs, &short).is_err());
}

#[test]
fn empty_file_round_trips() {
    let fs = DistFs::new();
    let path = DfsPath::new("/t/empty");
    let schema = sales_schema();
    let w = CorcWriter::new(schema.clone(), WriterOptions::default()).unwrap();
    fs.create(&path, w.finish().unwrap()).unwrap();
    let f = CorcFile::open(&fs, &path).unwrap();
    assert_eq!(f.num_rows(), 0);
    assert_eq!(f.row_group_count(), 0);
    assert_eq!(f.read_all().unwrap().num_rows(), 0);
    assert!(f.selected_row_groups(&SearchArgument::new()).is_empty());
}
