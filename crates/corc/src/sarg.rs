//! Search arguments (sargs): the pushed-down predicate form the paper's
//! I/O elevator evaluates against row-group indexes (§5.1) before
//! reading data.

use crate::bloom::BloomFilter;
use crate::stats::ColumnStatistics;
use hive_common::Value;
use std::cmp::Ordering;
use std::fmt;

/// Three-valued outcome of evaluating a predicate against an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TruthValue {
    /// Every row in the range satisfies the predicate.
    Yes,
    /// No row in the range can satisfy the predicate — skip it.
    No,
    /// Cannot decide from the index; rows must be read.
    Maybe,
}

impl TruthValue {
    /// Logical AND for conjunctions.
    pub fn and(self, other: TruthValue) -> TruthValue {
        use TruthValue::*;
        match (self, other) {
            (No, _) | (_, No) => No,
            (Yes, Yes) => Yes,
            _ => Maybe,
        }
    }
}

/// A single sargable predicate on one column (identified by its index in
/// the file schema).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnPredicate {
    Eq(usize, Value),
    Lt(usize, Value),
    Le(usize, Value),
    Gt(usize, Value),
    Ge(usize, Value),
    Between(usize, Value, Value),
    In(usize, Vec<Value>),
    IsNull(usize),
    IsNotNull(usize),
    /// Dynamic runtime filter from semijoin reduction: a Bloom filter of
    /// the build-side keys plus their min/max range (§4.6).
    BloomRange {
        column: usize,
        min: Value,
        max: Value,
        bloom: BloomFilter,
    },
}

impl ColumnPredicate {
    /// The column this predicate constrains.
    pub fn column(&self) -> usize {
        match self {
            ColumnPredicate::Eq(c, _)
            | ColumnPredicate::Lt(c, _)
            | ColumnPredicate::Le(c, _)
            | ColumnPredicate::Gt(c, _)
            | ColumnPredicate::Ge(c, _)
            | ColumnPredicate::Between(c, _, _)
            | ColumnPredicate::In(c, _)
            | ColumnPredicate::IsNull(c)
            | ColumnPredicate::IsNotNull(c)
            | ColumnPredicate::BloomRange { column: c, .. } => *c,
        }
    }

    /// Evaluate against row-range statistics (and an optional Bloom
    /// filter over the same range).
    pub fn evaluate(&self, stats: &ColumnStatistics, bloom: Option<&BloomFilter>) -> TruthValue {
        use TruthValue::*;
        // A range with no rows can be skipped outright.
        if stats.num_rows == 0 {
            return No;
        }
        match self {
            ColumnPredicate::IsNull(_) => {
                if stats.null_count == 0 {
                    No
                } else if stats.all_null() {
                    Yes
                } else {
                    Maybe
                }
            }
            ColumnPredicate::IsNotNull(_) => {
                if stats.all_null() {
                    No
                } else if stats.null_count == 0 {
                    Yes
                } else {
                    Maybe
                }
            }
            _ if stats.all_null() => No, // comparisons never match NULL
            ColumnPredicate::Eq(_, v) => {
                match range_contains(stats, v) {
                    No => No,
                    _ => {
                        // Consult the Bloom filter for a definitive miss.
                        if let Some(b) = bloom {
                            if !b.might_contain(v) {
                                return No;
                            }
                        }
                        if stats.null_count == 0 && stats.min == stats.max {
                            // Constant column equal to v.
                            if stats.min.as_ref() == Some(v) {
                                return Yes;
                            }
                        }
                        Maybe
                    }
                }
            }
            ColumnPredicate::In(_, vals) => {
                let mut any = No;
                for v in vals {
                    let t = ColumnPredicate::Eq(self.column(), v.clone()).evaluate(stats, bloom);
                    any = match (any, t) {
                        (_, Yes) | (Yes, _) => Yes,
                        (Maybe, _) | (_, Maybe) => Maybe,
                        _ => No,
                    };
                }
                any
            }
            ColumnPredicate::Lt(_, v) => cmp_bound(stats, v, |o| o == Ordering::Less),
            ColumnPredicate::Le(_, v) => cmp_bound(stats, v, |o| o != Ordering::Greater),
            ColumnPredicate::Gt(_, v) => cmp_bound(stats, v, |o| o == Ordering::Greater),
            ColumnPredicate::Ge(_, v) => cmp_bound(stats, v, |o| o != Ordering::Less),
            ColumnPredicate::Between(_, lo, hi) => {
                let ge = cmp_bound(stats, lo, |o| o != Ordering::Less);
                let le = cmp_bound(stats, hi, |o| o != Ordering::Greater);
                ge.and(le)
            }
            ColumnPredicate::BloomRange {
                min, max, bloom: b, ..
            } => {
                let ge = cmp_bound(stats, min, |o| o != Ordering::Less);
                let le = cmp_bound(stats, max, |o| o != Ordering::Greater);
                if ge.and(le) == No {
                    return No;
                }
                // If the range is a single value, the Bloom filter can
                // give a definitive miss.
                if stats.min == stats.max {
                    if let Some(v) = &stats.min {
                        if !b.might_contain(v) {
                            return No;
                        }
                    }
                }
                Maybe
            }
        }
    }

    /// Evaluate against a single concrete value (row-level residual
    /// check used by the index-semijoin runtime filter).
    pub fn matches_value(&self, v: &Value) -> bool {
        match self {
            ColumnPredicate::IsNull(_) => v.is_null(),
            ColumnPredicate::IsNotNull(_) => !v.is_null(),
            _ if v.is_null() => false,
            ColumnPredicate::Eq(_, x) => v.sql_cmp(x) == Some(Ordering::Equal),
            ColumnPredicate::Lt(_, x) => v.sql_cmp(x) == Some(Ordering::Less),
            ColumnPredicate::Le(_, x) => {
                v.sql_cmp(x) != Some(Ordering::Greater) && v.sql_cmp(x).is_some()
            }
            ColumnPredicate::Gt(_, x) => v.sql_cmp(x) == Some(Ordering::Greater),
            ColumnPredicate::Ge(_, x) => {
                v.sql_cmp(x) != Some(Ordering::Less) && v.sql_cmp(x).is_some()
            }
            ColumnPredicate::Between(_, lo, hi) => {
                v.sql_cmp(lo) != Some(Ordering::Less)
                    && v.sql_cmp(hi) != Some(Ordering::Greater)
                    && v.sql_cmp(lo).is_some()
                    && v.sql_cmp(hi).is_some()
            }
            ColumnPredicate::In(_, vals) => {
                vals.iter().any(|x| v.sql_cmp(x) == Some(Ordering::Equal))
            }
            ColumnPredicate::BloomRange {
                min, max, bloom, ..
            } => {
                v.sql_cmp(min) != Some(Ordering::Less)
                    && v.sql_cmp(max) != Some(Ordering::Greater)
                    && v.sql_cmp(min).is_some()
                    && bloom.might_contain(v)
            }
        }
    }
}

/// `No` when `v` is outside `[min, max]`, else `Maybe`.
fn range_contains(stats: &ColumnStatistics, v: &Value) -> TruthValue {
    if let (Some(min), Some(max)) = (&stats.min, &stats.max) {
        if v.sql_cmp(min) == Some(Ordering::Less) || v.sql_cmp(max) == Some(Ordering::Greater) {
            return TruthValue::No;
        }
    }
    TruthValue::Maybe
}

/// Evaluate an ordering predicate against min/max bounds.
fn cmp_bound(stats: &ColumnStatistics, v: &Value, accept: impl Fn(Ordering) -> bool) -> TruthValue {
    let (min, max) = match (&stats.min, &stats.max) {
        (Some(a), Some(b)) => (a, b),
        _ => return TruthValue::Maybe,
    };
    let min_ok = min.sql_cmp(v).map(&accept);
    let max_ok = max.sql_cmp(v).map(&accept);
    match (min_ok, max_ok) {
        (Some(true), Some(true)) if stats.null_count == 0 => TruthValue::Yes,
        (Some(false), Some(false)) => TruthValue::No,
        _ => TruthValue::Maybe,
    }
}

/// A conjunction of sargable predicates.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SearchArgument {
    /// All predicates must hold (AND semantics).
    pub predicates: Vec<ColumnPredicate>,
}

impl SearchArgument {
    /// The empty (always-true) sarg.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from predicates.
    pub fn with(predicates: Vec<ColumnPredicate>) -> Self {
        SearchArgument { predicates }
    }

    /// True when no predicates are present.
    pub fn is_empty(&self) -> bool {
        self.predicates.is_empty()
    }

    /// Evaluate the conjunction against per-column stats/blooms for a
    /// row range. `stats(col)` and `bloom(col)` fetch the per-column
    /// index entries.
    pub fn evaluate<'a>(
        &self,
        stats: impl Fn(usize) -> Option<&'a ColumnStatistics>,
        bloom: impl Fn(usize) -> Option<&'a BloomFilter>,
    ) -> TruthValue {
        let mut acc = TruthValue::Yes;
        for p in &self.predicates {
            let col = p.column();
            let t = match stats(col) {
                Some(s) => p.evaluate(s, bloom(col)),
                None => TruthValue::Maybe,
            };
            acc = acc.and(t);
            if acc == TruthValue::No {
                return TruthValue::No;
            }
        }
        acc
    }
}

impl fmt::Display for ColumnPredicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnPredicate::Eq(c, v) => write!(f, "col{c} = {v}"),
            ColumnPredicate::Lt(c, v) => write!(f, "col{c} < {v}"),
            ColumnPredicate::Le(c, v) => write!(f, "col{c} <= {v}"),
            ColumnPredicate::Gt(c, v) => write!(f, "col{c} > {v}"),
            ColumnPredicate::Ge(c, v) => write!(f, "col{c} >= {v}"),
            ColumnPredicate::Between(c, a, b) => write!(f, "col{c} BETWEEN {a} AND {b}"),
            ColumnPredicate::In(c, vs) => {
                write!(f, "col{c} IN (")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            ColumnPredicate::IsNull(c) => write!(f, "col{c} IS NULL"),
            ColumnPredicate::IsNotNull(c) => write!(f, "col{c} IS NOT NULL"),
            ColumnPredicate::BloomRange {
                column, min, max, ..
            } => {
                write!(f, "col{column} IN BLOOM[{min}..{max}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(min: i32, max: i32, nulls: u64, rows: u64) -> ColumnStatistics {
        ColumnStatistics {
            min: Some(Value::Int(min)),
            max: Some(Value::Int(max)),
            null_count: nulls,
            num_rows: rows,
            ..Default::default()
        }
    }

    #[test]
    fn eq_against_range() {
        let s = stats(10, 20, 0, 100);
        assert_eq!(
            ColumnPredicate::Eq(0, Value::Int(5)).evaluate(&s, None),
            TruthValue::No
        );
        assert_eq!(
            ColumnPredicate::Eq(0, Value::Int(15)).evaluate(&s, None),
            TruthValue::Maybe
        );
        let constant = stats(7, 7, 0, 10);
        assert_eq!(
            ColumnPredicate::Eq(0, Value::Int(7)).evaluate(&constant, None),
            TruthValue::Yes
        );
    }

    #[test]
    fn eq_with_bloom_definitive_miss() {
        let s = stats(0, 1000, 0, 100);
        let mut b = BloomFilter::new(100, 0.01);
        b.insert(&Value::Int(500));
        assert_eq!(
            ColumnPredicate::Eq(0, Value::Int(500)).evaluate(&s, Some(&b)),
            TruthValue::Maybe
        );
        assert_eq!(
            ColumnPredicate::Eq(0, Value::Int(501)).evaluate(&s, Some(&b)),
            TruthValue::No
        );
    }

    #[test]
    fn ordering_predicates() {
        let s = stats(10, 20, 0, 100);
        assert_eq!(
            ColumnPredicate::Lt(0, Value::Int(10)).evaluate(&s, None),
            TruthValue::No
        );
        assert_eq!(
            ColumnPredicate::Lt(0, Value::Int(25)).evaluate(&s, None),
            TruthValue::Yes
        );
        assert_eq!(
            ColumnPredicate::Lt(0, Value::Int(15)).evaluate(&s, None),
            TruthValue::Maybe
        );
        assert_eq!(
            ColumnPredicate::Ge(0, Value::Int(21)).evaluate(&s, None),
            TruthValue::No
        );
        assert_eq!(
            ColumnPredicate::Between(0, Value::Int(30), Value::Int(40)).evaluate(&s, None),
            TruthValue::No
        );
    }

    #[test]
    fn null_predicates() {
        let no_nulls = stats(1, 2, 0, 10);
        let all_null = ColumnStatistics {
            min: None,
            max: None,
            null_count: 10,
            num_rows: 10,
            ..Default::default()
        };
        assert_eq!(
            ColumnPredicate::IsNull(0).evaluate(&no_nulls, None),
            TruthValue::No
        );
        assert_eq!(
            ColumnPredicate::IsNull(0).evaluate(&all_null, None),
            TruthValue::Yes
        );
        assert_eq!(
            ColumnPredicate::Eq(0, Value::Int(1)).evaluate(&all_null, None),
            TruthValue::No
        );
        assert_eq!(
            ColumnPredicate::IsNotNull(0).evaluate(&all_null, None),
            TruthValue::No
        );
    }

    #[test]
    fn conjunction_short_circuits() {
        let s = stats(10, 20, 0, 100);
        let sarg = SearchArgument::with(vec![
            ColumnPredicate::Ge(0, Value::Int(15)),
            ColumnPredicate::Eq(1, Value::Int(999)),
        ]);
        // Column 1 stats say impossible -> whole conjunction is No.
        let other = stats(0, 5, 0, 100);
        let t = sarg.evaluate(|c| if c == 0 { Some(&s) } else { Some(&other) }, |_| None);
        assert_eq!(t, TruthValue::No);
    }

    #[test]
    fn in_list() {
        let s = stats(10, 20, 0, 100);
        assert_eq!(
            ColumnPredicate::In(0, vec![Value::Int(1), Value::Int(2)]).evaluate(&s, None),
            TruthValue::No
        );
        assert_eq!(
            ColumnPredicate::In(0, vec![Value::Int(1), Value::Int(12)]).evaluate(&s, None),
            TruthValue::Maybe
        );
    }

    #[test]
    fn row_level_matches() {
        let p = ColumnPredicate::Between(0, Value::Int(5), Value::Int(10));
        assert!(p.matches_value(&Value::Int(7)));
        assert!(!p.matches_value(&Value::Int(11)));
        assert!(!p.matches_value(&Value::Null));
        let mut b = BloomFilter::new(10, 0.01);
        b.insert(&Value::Int(7));
        let br = ColumnPredicate::BloomRange {
            column: 0,
            min: Value::Int(0),
            max: Value::Int(100),
            bloom: b,
        };
        assert!(br.matches_value(&Value::Int(7)));
        assert!(!br.matches_value(&Value::Int(200)));
    }
}
