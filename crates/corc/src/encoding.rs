//! Primitive binary encodings: little-endian scalars, LEB128 varints,
//! zigzag integers, run-length encoding, and value (de)serialization.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use hive_common::{HiveError, Result, Value};

/// Append-only binary writer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: BytesMut,
}

impl ByteWriter {
    /// A new empty writer.
    pub fn new() -> Self {
        ByteWriter {
            buf: BytesMut::new(),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Finish and return the accumulated buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    pub fn put_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    pub fn put_u32(&mut self, v: u32) {
        self.buf.put_u32_le(v);
    }

    pub fn put_u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    pub fn put_f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    pub fn put_i128(&mut self, v: i128) {
        self.buf.put_i128_le(v);
    }

    pub fn put_slice(&mut self, s: &[u8]) {
        self.buf.put_slice(s);
    }

    /// LEB128 unsigned varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.put_u8(byte);
                break;
            }
            self.buf.put_u8(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn put_varint_signed(&mut self, v: i64) {
        self.put_varint(zigzag_encode(v));
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, s: &[u8]) {
        self.put_varint(s.len() as u64);
        self.put_slice(s);
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }
}

/// Sequential binary reader over a `Bytes` buffer.
#[derive(Debug)]
pub struct ByteReader {
    buf: Bytes,
}

impl ByteReader {
    /// Wrap a buffer for reading.
    pub fn new(buf: Bytes) -> Self {
        ByteReader { buf }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.remaining()
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            Err(HiveError::Format(format!(
                "unexpected end of buffer: need {n}, have {}",
                self.buf.remaining()
            )))
        } else {
            Ok(())
        }
    }

    pub fn get_u8(&mut self) -> Result<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    pub fn get_u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    pub fn get_u64(&mut self) -> Result<u64> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    pub fn get_f64(&mut self) -> Result<f64> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    pub fn get_i128(&mut self) -> Result<i128> {
        self.need(16)?;
        Ok(self.buf.get_i128_le())
    }

    /// LEB128 unsigned varint.
    pub fn get_varint(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.get_u8()?;
            v |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
            if shift >= 64 {
                return Err(HiveError::Format("varint too long".into()));
            }
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn get_varint_signed(&mut self) -> Result<i64> {
        Ok(zigzag_decode(self.get_varint()?))
    }

    /// Length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<Bytes> {
        let len = self.get_varint()? as usize;
        self.need(len)?;
        Ok(self.buf.split_to(len))
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let b = self.get_bytes()?;
        String::from_utf8(b.to_vec())
            .map_err(|_| HiveError::Format("invalid UTF-8 in string".into()))
    }
}

/// Map signed to unsigned preserving small magnitudes.
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Run-length encode a signed integer sequence.
///
/// Stream grammar: repeated `(control, payload)` where `control` is a
/// varint `n`; if the low bit is 0 the run is `n >> 1` repeats of one
/// zigzag varint; if 1 it is `n >> 1` literal zigzag varints.
pub fn rle_encode_i64(values: &[i64], w: &mut ByteWriter) {
    let mut i = 0;
    while i < values.len() {
        // Measure the run starting at i.
        let mut run = 1;
        while i + run < values.len() && values[i + run] == values[i] {
            run += 1;
        }
        if run >= 3 {
            w.put_varint((run as u64) << 1);
            w.put_varint_signed(values[i]);
            i += run;
        } else {
            // Collect a literal run until the next >=3 repeat.
            let start = i;
            i += run;
            while i < values.len() {
                let mut r = 1;
                while i + r < values.len() && values[i + r] == values[i] {
                    r += 1;
                }
                if r >= 3 {
                    break;
                }
                i += r;
            }
            let lit = &values[start..i];
            w.put_varint(((lit.len() as u64) << 1) | 1);
            for &v in lit {
                w.put_varint_signed(v);
            }
        }
    }
}

/// Decode a [`rle_encode_i64`] stream of exactly `count` values.
pub fn rle_decode_i64(r: &mut ByteReader, count: usize) -> Result<Vec<i64>> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let control = r.get_varint()?;
        let n = (control >> 1) as usize;
        if n == 0 || out.len() + n > count {
            return Err(HiveError::Format("corrupt RLE stream".into()));
        }
        if control & 1 == 0 {
            let v = r.get_varint_signed()?;
            out.resize(out.len() + n, v);
        } else {
            for _ in 0..n {
                out.push(r.get_varint_signed()?);
            }
        }
    }
    Ok(out)
}

/// Value tags for stats serialization.
const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_BIGINT: u8 = 3;
const TAG_DOUBLE: u8 = 4;
const TAG_DECIMAL: u8 = 5;
const TAG_STRING: u8 = 6;
const TAG_DATE: u8 = 7;
const TAG_TIMESTAMP: u8 = 8;

/// Serialize one scalar [`Value`] with a type tag.
pub fn write_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(TAG_NULL),
        Value::Boolean(b) => {
            w.put_u8(TAG_BOOL);
            w.put_u8(*b as u8);
        }
        Value::Int(x) => {
            w.put_u8(TAG_INT);
            w.put_varint_signed(*x as i64);
        }
        Value::BigInt(x) => {
            w.put_u8(TAG_BIGINT);
            w.put_varint_signed(*x);
        }
        Value::Double(x) => {
            w.put_u8(TAG_DOUBLE);
            w.put_f64(*x);
        }
        Value::Decimal(u, s) => {
            w.put_u8(TAG_DECIMAL);
            w.put_i128(*u);
            w.put_u8(*s);
        }
        Value::String(s) => {
            w.put_u8(TAG_STRING);
            w.put_str(s);
        }
        Value::Date(d) => {
            w.put_u8(TAG_DATE);
            w.put_varint_signed(*d as i64);
        }
        Value::Timestamp(t) => {
            w.put_u8(TAG_TIMESTAMP);
            w.put_varint_signed(*t);
        }
    }
}

/// Deserialize one scalar [`Value`].
pub fn read_value(r: &mut ByteReader) -> Result<Value> {
    Ok(match r.get_u8()? {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Boolean(r.get_u8()? != 0),
        TAG_INT => Value::Int(r.get_varint_signed()? as i32),
        TAG_BIGINT => Value::BigInt(r.get_varint_signed()?),
        TAG_DOUBLE => Value::Double(r.get_f64()?),
        TAG_DECIMAL => {
            let u = r.get_i128()?;
            let s = r.get_u8()?;
            Value::Decimal(u, s)
        }
        TAG_STRING => Value::String(r.get_str()?),
        TAG_DATE => Value::Date(r.get_varint_signed()? as i32),
        TAG_TIMESTAMP => Value::Timestamp(r.get_varint_signed()?),
        t => return Err(HiveError::Format(format!("unknown value tag {t}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let mut w = ByteWriter::new();
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            w.put_varint(v);
        }
        let mut r = ByteReader::new(w.finish());
        for v in [0u64, 1, 127, 128, 300, u64::MAX] {
            assert_eq!(r.get_varint().unwrap(), v);
        }
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn zigzag() {
        for v in [0i64, -1, 1, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
    }

    #[test]
    fn rle_round_trip_runs_and_literals() {
        let cases: Vec<Vec<i64>> = vec![
            vec![],
            vec![5],
            vec![7; 1000],
            vec![1, 2, 3, 4, 5],
            vec![1, 1, 1, 2, 3, 3, 3, 3, 9, -4, -4, -4, 0],
            (0..500).map(|i| i % 7).collect(),
        ];
        for vals in cases {
            let mut w = ByteWriter::new();
            rle_encode_i64(&vals, &mut w);
            let mut r = ByteReader::new(w.finish());
            assert_eq!(rle_decode_i64(&mut r, vals.len()).unwrap(), vals);
        }
    }

    #[test]
    fn rle_compresses_runs() {
        let vals = vec![42i64; 10_000];
        let mut w = ByteWriter::new();
        rle_encode_i64(&vals, &mut w);
        assert!(w.len() < 10, "run of 10k identical values should be tiny");
    }

    #[test]
    fn rle_rejects_corrupt_count() {
        let mut w = ByteWriter::new();
        w.put_varint(1000 << 1); // run of 1000
        w.put_varint_signed(1);
        let mut r = ByteReader::new(w.finish());
        assert!(rle_decode_i64(&mut r, 10).is_err());
    }

    #[test]
    fn value_round_trip() {
        let vals = vec![
            Value::Null,
            Value::Boolean(true),
            Value::Int(-5),
            Value::BigInt(1 << 40),
            Value::Double(3.5),
            Value::Decimal(12345, 2),
            Value::String("héllo".into()),
            Value::Date(17000),
            Value::Timestamp(1_500_000_000_000_000),
        ];
        let mut w = ByteWriter::new();
        for v in &vals {
            write_value(&mut w, v);
        }
        let mut r = ByteReader::new(w.finish());
        for v in &vals {
            assert_eq!(&read_value(&mut r).unwrap(), v);
        }
    }
}
