//! Bloom filters over column values, used for sargable `=`/`IN`
//! pushdown and for the dynamic index-semijoin reduction (paper §4.6).

use crate::encoding::{ByteReader, ByteWriter};
use hive_common::{Result, Value};
use std::hash::{Hash, Hasher};

/// A classic Bloom filter with double hashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_hashes: u32,
}

impl BloomFilter {
    /// Size the filter for `expected` insertions at false-positive
    /// probability `fpp`.
    pub fn new(expected: usize, fpp: f64) -> Self {
        let expected = expected.max(1) as f64;
        let fpp = fpp.clamp(1e-6, 0.5);
        let num_bits = (-(expected * fpp.ln()) / (2f64.ln().powi(2))).ceil() as u64;
        let num_bits = num_bits.max(64);
        let num_hashes = ((num_bits as f64 / expected) * 2f64.ln()).round().max(1.0) as u32;
        BloomFilter {
            bits: vec![0; num_bits.div_ceil(64) as usize],
            num_bits,
            num_hashes: num_hashes.min(16),
        }
    }

    fn base_hashes(v: &Value) -> (u64, u64) {
        // Two independent hash streams via seeded SipHash-like mixing of
        // the default hasher output.
        let mut h1 = std::collections::hash_map::DefaultHasher::new();
        v.hash_value(&mut h1);
        let a = h1.finish();
        let mut h2 = std::collections::hash_map::DefaultHasher::new();
        0x9e37_79b9_7f4a_7c15u64.hash(&mut h2);
        v.hash_value(&mut h2);
        let b = h2.finish() | 1; // odd so strides cover the table
        (a, b)
    }

    /// Insert a value (NULLs are ignored; NULL never matches `=`).
    pub fn insert(&mut self, v: &Value) {
        if v.is_null() {
            return;
        }
        let (a, b) = Self::base_hashes(v);
        for i in 0..self.num_hashes {
            let bit = a.wrapping_add(b.wrapping_mul(i as u64)) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Possibly-contains test; `false` is definitive.
    pub fn might_contain(&self, v: &Value) -> bool {
        if v.is_null() {
            return false;
        }
        let (a, b) = Self::base_hashes(v);
        (0..self.num_hashes).all(|i| {
            let bit = a.wrapping_add(b.wrapping_mul(i as u64)) % self.num_bits;
            self.bits[(bit / 64) as usize] >> (bit % 64) & 1 == 1
        })
    }

    /// Merge another filter built with identical parameters.
    pub fn union(&mut self, other: &BloomFilter) {
        assert_eq!(self.num_bits, other.num_bits, "bloom size mismatch");
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= b;
        }
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.bits.len() * 8
    }

    /// Serialize to a byte stream.
    pub fn write(&self, w: &mut ByteWriter) {
        w.put_varint(self.num_bits);
        w.put_varint(self.num_hashes as u64);
        w.put_varint(self.bits.len() as u64);
        for word in &self.bits {
            w.put_u64(*word);
        }
    }

    /// Deserialize from a byte stream.
    pub fn read(r: &mut ByteReader) -> Result<Self> {
        let num_bits = r.get_varint()?;
        let num_hashes = r.get_varint()? as u32;
        let words = r.get_varint()? as usize;
        let mut bits = Vec::with_capacity(words);
        for _ in 0..words {
            bits.push(r.get_u64()?);
        }
        Ok(BloomFilter {
            bits,
            num_bits,
            num_hashes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut b = BloomFilter::new(1000, 0.01);
        for i in 0..1000 {
            b.insert(&Value::Int(i));
        }
        for i in 0..1000 {
            assert!(b.might_contain(&Value::Int(i)));
        }
    }

    #[test]
    fn false_positive_rate_reasonable() {
        let mut b = BloomFilter::new(1000, 0.01);
        for i in 0..1000 {
            b.insert(&Value::Int(i));
        }
        let fp = (10_000..30_000)
            .filter(|&i| b.might_contain(&Value::Int(i)))
            .count();
        // 20k probes at ~1% target: allow generous margin.
        assert!(fp < 800, "false positive count too high: {fp}");
    }

    #[test]
    fn null_never_matches() {
        let mut b = BloomFilter::new(10, 0.01);
        b.insert(&Value::Null);
        assert!(!b.might_contain(&Value::Null));
    }

    #[test]
    fn strings_and_cross_type_numerics() {
        let mut b = BloomFilter::new(100, 0.01);
        b.insert(&Value::String("sports".into()));
        b.insert(&Value::Int(42));
        assert!(b.might_contain(&Value::String("sports".into())));
        // Value hashing normalizes numeric types, so BigInt 42 matches.
        assert!(b.might_contain(&Value::BigInt(42)));
        assert!(!b.might_contain(&Value::String("books".into())));
    }

    #[test]
    fn serialization_round_trip() {
        let mut b = BloomFilter::new(500, 0.05);
        for i in 0..500 {
            b.insert(&Value::BigInt(i * 7));
        }
        let mut w = ByteWriter::new();
        b.write(&mut w);
        let mut r = ByteReader::new(w.finish());
        let b2 = BloomFilter::read(&mut r).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn union_combines() {
        let mut a = BloomFilter::new(100, 0.01);
        let mut b = BloomFilter::new(100, 0.01);
        a.insert(&Value::Int(1));
        b.insert(&Value::Int(2));
        a.union(&b);
        assert!(a.might_contain(&Value::Int(1)));
        assert!(a.might_contain(&Value::Int(2)));
    }
}
