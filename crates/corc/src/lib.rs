//! # hive-corc
//!
//! A columnar file format modeled on Apache ORC (the paper's Section 2
//! and [39]): data is laid out in **row groups** (default 10k rows) of
//! per-column encoded streams, with per-row-group min/max statistics and
//! optional Bloom filters in the file footer.
//!
//! The format supports the two pushdowns the paper's I/O elevator relies
//! on (Section 5.1): **projection** (only requested column streams are
//! read) and **sargable predicates** (row groups whose statistics or
//! Bloom filters disprove the predicate are skipped without reading
//! data). Both pushdowns operate through ranged DFS reads, so the I/O
//! meter observes exactly the bytes a real columnar reader would fetch.
//!
//! The stripe level of real ORC is collapsed: row groups are the unit of
//! both skipping and caching (LLAP chunks are `(file, column, row group)`).

pub mod bloom;
pub mod encoding;
pub mod reader;
pub mod sarg;
pub mod stats;
pub mod writer;

pub use bloom::BloomFilter;
pub use reader::CorcFile;
pub use sarg::{ColumnPredicate, SearchArgument, TruthValue};
pub use stats::ColumnStatistics;
pub use writer::{CorcWriter, WriterOptions};

/// Default rows per row group (ORC's index stride).
pub const DEFAULT_ROW_GROUP_SIZE: usize = 10_000;

/// Magic bytes identifying a corc file.
pub const MAGIC: &[u8; 4] = b"CORC";
