//! The corc file writer.

use crate::bloom::BloomFilter;
use crate::encoding::ByteWriter;
use crate::stats::{ChunkEncoding, ColumnStatistics};
use crate::{DEFAULT_ROW_GROUP_SIZE, MAGIC};
use bytes::Bytes;
use hive_common::{ColumnVector, DataType, HiveError, Result, Schema, VectorBatch};

/// Options controlling file layout.
#[derive(Debug, Clone)]
pub struct WriterOptions {
    /// Rows per row group (the skipping/caching granule).
    pub row_group_size: usize,
    /// Columns (by index) to build per-row-group Bloom filters for.
    pub bloom_columns: Vec<usize>,
    /// Bloom filter false-positive probability.
    pub bloom_fpp: f64,
    /// Dictionary-encode a string chunk when
    /// `distinct values ≤ rows × ratio` (ORC's distinct-ratio
    /// heuristic); set to `0.0` to force plain encoding.
    pub dictionary_ratio: f64,
}

impl Default for WriterOptions {
    fn default() -> Self {
        WriterOptions {
            row_group_size: DEFAULT_ROW_GROUP_SIZE,
            bloom_columns: Vec::new(),
            bloom_fpp: 0.02,
            dictionary_ratio: 0.5,
        }
    }
}

/// Metadata for one column chunk within a row group.
#[derive(Debug, Clone)]
pub(crate) struct ChunkMeta {
    pub offset: u64,
    pub len: u64,
    pub stats: ColumnStatistics,
    pub bloom: Option<BloomFilter>,
}

/// Metadata for one row group.
#[derive(Debug, Clone)]
pub(crate) struct RowGroupMeta {
    pub row_count: u64,
    pub chunks: Vec<ChunkMeta>,
}

/// Streaming writer producing a corc file as a byte buffer.
///
/// Batches are buffered and cut into fixed-size row groups; each column
/// of each row group is encoded independently so readers can fetch
/// exactly the `(row group, column)` chunks a query needs.
#[derive(Debug)]
pub struct CorcWriter {
    schema: Schema,
    opts: WriterOptions,
    data: ByteWriter,
    row_groups: Vec<RowGroupMeta>,
    pending: VectorBatch,
    total_rows: u64,
}

impl CorcWriter {
    /// Start writing a file with the given schema.
    pub fn new(schema: Schema, opts: WriterOptions) -> Result<Self> {
        for f in schema.fields() {
            if !f.data_type.is_atomic() {
                return Err(HiveError::Format(format!(
                    "cannot store non-atomic column {} ({})",
                    f.name, f.data_type
                )));
            }
        }
        let pending = VectorBatch::empty(&schema)?;
        Ok(CorcWriter {
            schema,
            opts,
            data: ByteWriter::new(),
            row_groups: Vec::new(),
            pending,
            total_rows: 0,
        })
    }

    /// Append a batch (must match the file schema's column types).
    pub fn write_batch(&mut self, batch: &VectorBatch) -> Result<()> {
        self.pending.append(batch)?;
        while self.pending.num_rows() >= self.opts.row_group_size {
            let idx: Vec<u32> = (0..self.opts.row_group_size as u32).collect();
            let group = self.pending.take(&idx);
            let rest: Vec<u32> =
                (self.opts.row_group_size as u32..self.pending.num_rows() as u32).collect();
            self.pending = self.pending.take(&rest);
            self.flush_group(&group)?;
        }
        Ok(())
    }

    fn flush_group(&mut self, group: &VectorBatch) -> Result<()> {
        let mut chunks = Vec::with_capacity(group.num_columns());
        for (ci, col) in group.columns().iter().enumerate() {
            let offset = self.data.len() as u64;
            let encoding = encode_column(col, &mut self.data, self.opts.dictionary_ratio)?;
            let len = self.data.len() as u64 - offset;
            let mut stats = ColumnStatistics::new();
            stats.update_column(col);
            stats.encoding = encoding;
            let bloom = if self.opts.bloom_columns.contains(&ci) {
                let mut b = BloomFilter::new(col.len(), self.opts.bloom_fpp);
                for i in 0..col.len() {
                    b.insert(&col.get(i));
                }
                Some(b)
            } else {
                None
            };
            chunks.push(ChunkMeta {
                offset,
                len,
                stats,
                bloom,
            });
        }
        self.total_rows += group.num_rows() as u64;
        self.row_groups.push(RowGroupMeta {
            row_count: group.num_rows() as u64,
            chunks,
        });
        Ok(())
    }

    /// Finish the file and return its bytes.
    pub fn finish(mut self) -> Result<Bytes> {
        if self.pending.num_rows() > 0 {
            let last = std::mem::replace(&mut self.pending, VectorBatch::empty(&self.schema)?);
            self.flush_group(&last)?;
        }
        let mut w = self.data;
        let footer_start = w.len() as u64;
        write_footer(
            &mut w,
            &self.schema,
            self.opts.row_group_size,
            self.total_rows,
            &self.row_groups,
        );
        let footer_len = w.len() as u64 - footer_start;
        w.put_u32(footer_len as u32);
        w.put_slice(MAGIC);
        Ok(w.finish())
    }
}

/// Convenience: write a whole batch as one file.
pub fn write_batch_to_bytes(batch: &VectorBatch, opts: WriterOptions) -> Result<Bytes> {
    let mut w = CorcWriter::new(batch.schema().clone(), opts)?;
    w.write_batch(batch)?;
    w.finish()
}

pub(crate) fn write_footer(
    w: &mut ByteWriter,
    schema: &Schema,
    row_group_size: usize,
    total_rows: u64,
    row_groups: &[RowGroupMeta],
) {
    w.put_varint(schema.len() as u64);
    for f in schema.fields() {
        w.put_str(&f.name);
        write_data_type(w, &f.data_type);
        w.put_u8(f.nullable as u8);
    }
    w.put_varint(row_group_size as u64);
    w.put_varint(total_rows);
    w.put_varint(row_groups.len() as u64);
    for rg in row_groups {
        w.put_varint(rg.row_count);
        for c in &rg.chunks {
            w.put_u64(c.offset);
            w.put_u64(c.len);
            c.stats.write(w);
            match &c.bloom {
                Some(b) => {
                    w.put_u8(1);
                    b.write(w);
                }
                None => w.put_u8(0),
            }
        }
    }
}

pub(crate) fn write_data_type(w: &mut ByteWriter, dt: &DataType) {
    match dt {
        DataType::Boolean => w.put_u8(0),
        DataType::Int => w.put_u8(1),
        DataType::BigInt => w.put_u8(2),
        DataType::Double => w.put_u8(3),
        DataType::Decimal(p, s) => {
            w.put_u8(4);
            w.put_u8(*p);
            w.put_u8(*s);
        }
        DataType::String => w.put_u8(5),
        DataType::Date => w.put_u8(6),
        DataType::Timestamp => w.put_u8(7),
        // invariant: `CorcWriter::new` validates the schema and rejects
        // every non-atomic type before any encode runs, so this arm is
        // unreachable for writers constructed through the public API.
        _ => unreachable!("non-atomic types rejected at writer construction"),
    }
}

/// Encode a string chunk: dictionary (sorted, deduped, RLE indexes)
/// when the distinct ratio clears the threshold, else plain. Both the
/// `Str` and `Dict` writer arms funnel through here so the bytes are
/// identical regardless of the in-memory representation.
fn encode_str_values(vals: &[&String], w: &mut ByteWriter, dictionary_ratio: f64) -> ChunkEncoding {
    let mut dict: Vec<&String> = vals.to_vec();
    dict.sort_unstable();
    dict.dedup();
    if !vals.is_empty() && (dict.len() as f64) <= (vals.len() as f64) * dictionary_ratio {
        w.put_u8(1); // dictionary encoding
        w.put_varint(dict.len() as u64);
        for s in &dict {
            w.put_str(s);
        }
        let indexes: Vec<i64> = vals
            .iter()
            // invariant: `dict` was built from these exact values
            // (sorted + deduped just above), so every value is present
            // in the search.
            .map(|s| dict.binary_search(s).expect("value in its own dictionary") as i64)
            .collect();
        crate::encoding::rle_encode_i64(&indexes, w);
        ChunkEncoding::Dictionary
    } else {
        w.put_u8(0); // plain encoding
        for s in vals {
            w.put_str(s);
        }
        ChunkEncoding::Plain
    }
}

/// Encode one column chunk. Layout: null-bitmap section then typed data.
/// Returns the physical encoding chosen (recorded in stripe stats).
pub(crate) fn encode_column(
    col: &ColumnVector,
    w: &mut ByteWriter,
    dictionary_ratio: f64,
) -> Result<ChunkEncoding> {
    // Null section: 0 = no nulls, 1 = varint-delta positions list.
    let null_positions: Vec<u64> = (0..col.len())
        .filter(|&i| col.is_null(i))
        .map(|i| i as u64)
        .collect();
    if null_positions.is_empty() {
        w.put_u8(0);
    } else {
        w.put_u8(1);
        w.put_varint(null_positions.len() as u64);
        let mut prev = 0u64;
        for p in &null_positions {
            w.put_varint(p - prev);
            prev = *p;
        }
    }
    match col {
        ColumnVector::Boolean(v, _) => {
            let ints: Vec<i64> = v.iter().map(|&b| b as i64).collect();
            crate::encoding::rle_encode_i64(&ints, w);
        }
        ColumnVector::Int(v, _) | ColumnVector::Date(v, _) => {
            let ints: Vec<i64> = v.iter().map(|&x| x as i64).collect();
            crate::encoding::rle_encode_i64(&ints, w);
        }
        ColumnVector::BigInt(v, _) | ColumnVector::Timestamp(v, _) => {
            crate::encoding::rle_encode_i64(v, w);
        }
        ColumnVector::Double(v, _) => {
            for &x in v {
                w.put_f64(x);
            }
        }
        ColumnVector::Decimal(v, _, _) => {
            for &x in v {
                w.put_i128(x);
            }
        }
        ColumnVector::Str(v, _) => {
            let vals: Vec<&String> = v.iter().collect();
            return Ok(encode_str_values(&vals, w, dictionary_ratio));
        }
        // Already-encoded columns write without materializing a String
        // per row: the per-row view borrows straight from the shared
        // dictionary (the compactor's corc re-write path).
        ColumnVector::Dict { codes, dict, .. } => {
            let vals: Vec<&String> = codes.iter().map(|&c| &dict[c as usize]).collect();
            return Ok(encode_str_values(&vals, w, dictionary_ratio));
        }
    }
    Ok(ChunkEncoding::Plain)
}
