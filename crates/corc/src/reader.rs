//! The corc file reader: footer parsing, sarg-driven row-group
//! selection, and ranged per-chunk column reads.

use crate::bloom::BloomFilter;
use crate::encoding::ByteReader;
use crate::sarg::{SearchArgument, TruthValue};
use crate::stats::ColumnStatistics;
use crate::writer::{ChunkMeta, RowGroupMeta};
use crate::MAGIC;
use bytes::Bytes;
use hive_common::{
    BitSet, ColumnVector, DataType, Field, FileId, HiveError, Result, Schema, VectorBatch,
};
use hive_dfs::{DfsPath, DistFs};

/// Parsed footer of a corc file.
#[derive(Debug, Clone)]
pub struct Footer {
    schema: Schema,
    row_group_size: usize,
    total_rows: u64,
    row_groups: Vec<RowGroupMeta>,
}

/// An open corc file backed by the simulated DFS.
///
/// `open` reads only the footer; data is fetched with ranged reads per
/// `(row group, column)` chunk, so the I/O meter reflects projection and
/// row-group skipping exactly.
///
/// The handle is `Sync` + cheaply `Clone` (a DFS handle plus an
/// `Arc`-shared footer), so the morsel-parallel scanner can hand one
/// clone to each worker thread and read disjoint chunks concurrently.
#[derive(Debug, Clone)]
pub struct CorcFile {
    fs: DistFs,
    path: DfsPath,
    file_id: FileId,
    file_len: u64,
    footer: std::sync::Arc<Footer>,
    /// First decoded dictionary per column, shared across every chunk
    /// of this file handle whose dictionary has identical contents —
    /// so the LLAP cache sees one `Arc` (and charges its bytes once)
    /// for all row groups of a column.
    dict_memo: std::sync::Arc<
        std::sync::Mutex<std::collections::HashMap<usize, std::sync::Arc<Vec<String>>>>,
    >,
}

const _: () = {
    // Compile-time guard: parallel scan workers share clones of this
    // handle across threads.
    fn _assert<T: Send + Sync + Clone>() {}
    fn _corc_file() {
        _assert::<CorcFile>();
    }
};

impl CorcFile {
    /// Open a file: fetches and parses the footer only.
    pub fn open(fs: &DistFs, path: &DfsPath) -> Result<Self> {
        let meta = fs.stat(path)?;
        if meta.len < 8 {
            return Err(HiveError::Format(format!("file too short: {path}")));
        }
        let tail = fs.read_range(path, meta.len - 8, 8)?;
        let mut tr = ByteReader::new(tail);
        let footer_len = tr.get_u32()? as u64;
        let mut magic = [0u8; 4];
        for b in magic.iter_mut() {
            *b = tr.get_u8()?;
        }
        if &magic != MAGIC {
            return Err(HiveError::Format(format!("bad magic in {path}")));
        }
        if footer_len + 8 > meta.len {
            return Err(HiveError::Format(format!(
                "corrupt footer length in {path}"
            )));
        }
        let footer_bytes = fs.read_range(path, meta.len - 8 - footer_len, footer_len)?;
        let footer = parse_footer(footer_bytes)?;
        Ok(CorcFile {
            fs: fs.clone(),
            path: path.clone(),
            file_id: meta.file_id,
            file_len: meta.len,
            footer: std::sync::Arc::new(footer),
            dict_memo: Default::default(),
        })
    }

    /// The file schema.
    pub fn schema(&self) -> &Schema {
        &self.footer.schema
    }

    /// Stable file identity (LLAP cache key component).
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// File length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The file path.
    pub fn path(&self) -> &DfsPath {
        &self.path
    }

    /// Total row count.
    pub fn num_rows(&self) -> u64 {
        self.footer.total_rows
    }

    /// Number of row groups.
    pub fn row_group_count(&self) -> usize {
        self.footer.row_groups.len()
    }

    /// Rows in row group `rg`.
    // invariant: callers enumerate `rg` from `row_group_count()` /
    // `selected_row_groups()` of this same footer, so the index is in
    // range by construction.
    pub fn row_group_rows(&self, rg: usize) -> u64 {
        self.footer.row_groups[rg].row_count
    }

    /// Per-row-group column statistics.
    // invariant: `rg` from footer enumeration (see `row_group_rows`);
    // `col` from this file's schema.
    pub fn column_stats(&self, rg: usize, col: usize) -> &ColumnStatistics {
        &self.footer.row_groups[rg].chunks[col].stats
    }

    /// Per-row-group column Bloom filter, when one was written.
    pub fn column_bloom(&self, rg: usize, col: usize) -> Option<&BloomFilter> {
        self.footer.row_groups[rg].chunks[col].bloom.as_ref()
    }

    /// File-level statistics for a column (merged across row groups).
    pub fn file_column_stats(&self, col: usize) -> ColumnStatistics {
        let mut acc = ColumnStatistics::new();
        for rg in &self.footer.row_groups {
            acc.merge(&rg.chunks[col].stats);
        }
        acc
    }

    /// Row groups the sarg cannot disprove — the paper's "skip reading
    /// entire row groups" pushdown.
    pub fn selected_row_groups(&self, sarg: &SearchArgument) -> Vec<usize> {
        (0..self.row_group_count())
            .filter(|&rg| {
                sarg.evaluate(
                    |c| Some(self.column_stats(rg, c)),
                    |c| self.column_bloom(rg, c),
                ) != TruthValue::No
            })
            .collect()
    }

    /// Byte range of one `(row group, column)` chunk within the file;
    /// a typed error (not a panic) for out-of-range coordinates, which
    /// can reach here via an external cache key rather than footer
    /// enumeration.
    pub fn chunk_range(&self, rg: usize, col: usize) -> Result<(u64, u64)> {
        let c = self
            .footer
            .row_groups
            .get(rg)
            .and_then(|g| g.chunks.get(col))
            .ok_or_else(|| {
                HiveError::Format(format!(
                    "chunk (rg={rg}, col={col}) out of range for {}",
                    self.path
                ))
            })?;
        Ok((c.offset, c.len))
    }

    /// Fetch and decode one column chunk (a ranged DFS read),
    /// materializing strings (`Str`).
    pub fn read_column_chunk(&self, rg: usize, col: usize) -> Result<ColumnVector> {
        let bytes = self.fetch_chunk_bytes(rg, col)?;
        self.decode_column_chunk(bytes, rg, col)
    }

    /// Fetch and decode one column chunk keeping dictionary-encoded
    /// string chunks in their encoded form (`Dict` with an `Arc`'d
    /// dictionary shared across this file's chunks of the column).
    pub fn read_column_chunk_encoded(&self, rg: usize, col: usize) -> Result<ColumnVector> {
        let bytes = self.fetch_chunk_bytes(rg, col)?;
        self.decode_column_chunk_encoded(bytes, rg, col)
    }

    fn fetch_chunk_bytes(&self, rg: usize, col: usize) -> Result<Bytes> {
        let (offset, len) = self.chunk_range(rg, col)?;
        self.fs.read_range(&self.path, offset, len)
    }

    /// Decode a previously-fetched chunk (LLAP's cache path: the cache
    /// stores decoded chunks; on miss it fetches bytes then decodes).
    pub fn decode_column_chunk(&self, bytes: Bytes, rg: usize, col: usize) -> Result<ColumnVector> {
        self.decode_chunk_inner(bytes, rg, col, false)
    }

    /// Encoded-form counterpart of [`CorcFile::decode_column_chunk`].
    pub fn decode_column_chunk_encoded(
        &self,
        bytes: Bytes,
        rg: usize,
        col: usize,
    ) -> Result<ColumnVector> {
        self.decode_chunk_inner(bytes, rg, col, true)
    }

    fn decode_chunk_inner(
        &self,
        bytes: Bytes,
        rg: usize,
        col: usize,
        keep_dict: bool,
    ) -> Result<ColumnVector> {
        let rows = self
            .footer
            .row_groups
            .get(rg)
            .ok_or_else(|| {
                HiveError::Format(format!("row group {rg} out of range for {}", self.path))
            })?
            .row_count as usize;
        let dt = &self.footer.schema.field(col).data_type;
        let decoded = decode_column(bytes, dt, rows, keep_dict)?;
        if !keep_dict {
            return Ok(decoded);
        }
        Ok(self.share_dict(col, decoded))
    }

    /// Swap a freshly-decoded dictionary for the memoized per-column
    /// `Arc` when the contents match (first decode wins), so identical
    /// dictionaries across row groups collapse to one allocation.
    fn share_dict(&self, col: usize, decoded: ColumnVector) -> ColumnVector {
        let ColumnVector::Dict { codes, dict, nulls } = decoded else {
            return decoded;
        };
        let mut memo = self.dict_memo.lock().unwrap_or_else(|p| p.into_inner());
        let dict = match memo.get(&col) {
            Some(m) if **m == *dict => m.clone(),
            Some(_) => dict,
            None => {
                memo.insert(col, dict.clone());
                dict
            }
        };
        ColumnVector::Dict { codes, dict, nulls }
    }

    /// Read a whole row group restricted to `projection` columns.
    pub fn read_row_group(&self, rg: usize, projection: &[usize]) -> Result<VectorBatch> {
        let cols = projection
            .iter()
            .map(|&c| self.read_column_chunk(rg, c))
            .collect::<Result<Vec<_>>>()?;
        VectorBatch::new(self.footer.schema.project(projection), cols)
    }

    /// Read the entire file (all row groups, all columns).
    pub fn read_all(&self) -> Result<VectorBatch> {
        let proj: Vec<usize> = (0..self.footer.schema.len()).collect();
        let mut out = VectorBatch::empty(&self.footer.schema)?;
        for rg in 0..self.row_group_count() {
            out.append(&self.read_row_group(rg, &proj)?)?;
        }
        Ok(out)
    }

    /// Read the entire file keeping string chunks dictionary-encoded
    /// (the compactor's read side of the encoded re-write path).
    pub fn read_all_encoded(&self) -> Result<VectorBatch> {
        let proj: Vec<usize> = (0..self.footer.schema.len()).collect();
        let mut out = VectorBatch::empty(&self.footer.schema)?;
        for rg in 0..self.row_group_count() {
            let cols = proj
                .iter()
                .map(|&c| self.read_column_chunk_encoded(rg, c))
                .collect::<Result<Vec<_>>>()?;
            out.append(&VectorBatch::new(self.footer.schema.clone(), cols)?)?;
        }
        Ok(out)
    }
}

pub(crate) fn parse_footer(bytes: Bytes) -> Result<Footer> {
    let mut r = ByteReader::new(bytes);
    let nfields = r.get_varint()? as usize;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let name = r.get_str()?;
        let dt = read_data_type(&mut r)?;
        let nullable = r.get_u8()? != 0;
        fields.push(Field {
            name,
            data_type: dt,
            nullable,
        });
    }
    let schema = Schema::new(fields);
    let row_group_size = r.get_varint()? as usize;
    let total_rows = r.get_varint()?;
    let ngroups = r.get_varint()? as usize;
    let mut row_groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let row_count = r.get_varint()?;
        let mut chunks = Vec::with_capacity(schema.len());
        for _ in 0..schema.len() {
            let offset = r.get_u64()?;
            let len = r.get_u64()?;
            let stats = ColumnStatistics::read(&mut r)?;
            let bloom = if r.get_u8()? == 1 {
                Some(BloomFilter::read(&mut r)?)
            } else {
                None
            };
            chunks.push(ChunkMeta {
                offset,
                len,
                stats,
                bloom,
            });
        }
        row_groups.push(RowGroupMeta { row_count, chunks });
    }
    Ok(Footer {
        schema,
        row_group_size,
        total_rows,
        row_groups,
    })
}

impl Footer {
    /// Rows per row group as written.
    pub fn row_group_size(&self) -> usize {
        self.row_group_size
    }
}

fn read_data_type(r: &mut ByteReader) -> Result<DataType> {
    Ok(match r.get_u8()? {
        0 => DataType::Boolean,
        1 => DataType::Int,
        2 => DataType::BigInt,
        3 => DataType::Double,
        4 => {
            let p = r.get_u8()?;
            let s = r.get_u8()?;
            DataType::Decimal(p, s)
        }
        5 => DataType::String,
        6 => DataType::Date,
        7 => DataType::Timestamp,
        t => return Err(HiveError::Format(format!("unknown type tag {t}"))),
    })
}

/// Decode one column chunk given its type and row count. With
/// `keep_dict`, dictionary-encoded string chunks come back as
/// `ColumnVector::Dict` (codes + shared dictionary) instead of
/// materializing one `String` per row.
pub(crate) fn decode_column(
    bytes: Bytes,
    dt: &DataType,
    rows: usize,
    keep_dict: bool,
) -> Result<ColumnVector> {
    let mut r = ByteReader::new(bytes);
    // Null section.
    let nulls = match r.get_u8()? {
        0 => None,
        1 => {
            let count = r.get_varint()? as usize;
            let mut b = BitSet::new(rows);
            let mut pos = 0u64;
            for i in 0..count {
                let delta = r.get_varint()?;
                pos = if i == 0 { delta } else { pos + delta };
                if pos as usize >= rows {
                    return Err(HiveError::Format("null position out of range".into()));
                }
                b.set(pos as usize);
            }
            Some(b)
        }
        t => return Err(HiveError::Format(format!("bad null section tag {t}"))),
    };
    Ok(match dt {
        DataType::Boolean => {
            let ints = crate::encoding::rle_decode_i64(&mut r, rows)?;
            ColumnVector::Boolean(ints.into_iter().map(|v| v != 0).collect(), nulls)
        }
        DataType::Int => {
            let ints = crate::encoding::rle_decode_i64(&mut r, rows)?;
            ColumnVector::Int(ints.into_iter().map(|v| v as i32).collect(), nulls)
        }
        DataType::Date => {
            let ints = crate::encoding::rle_decode_i64(&mut r, rows)?;
            ColumnVector::Date(ints.into_iter().map(|v| v as i32).collect(), nulls)
        }
        DataType::BigInt => {
            ColumnVector::BigInt(crate::encoding::rle_decode_i64(&mut r, rows)?, nulls)
        }
        DataType::Timestamp => {
            ColumnVector::Timestamp(crate::encoding::rle_decode_i64(&mut r, rows)?, nulls)
        }
        DataType::Double => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_f64()?);
            }
            ColumnVector::Double(v, nulls)
        }
        DataType::Decimal(_, s) => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_i128()?);
            }
            ColumnVector::Decimal(v, *s, nulls)
        }
        DataType::String => match r.get_u8()? {
            1 => {
                let dict_len = r.get_varint()? as usize;
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(r.get_str()?);
                }
                let idx = crate::encoding::rle_decode_i64(&mut r, rows)?;
                if keep_dict {
                    let mut codes = Vec::with_capacity(rows);
                    for i in idx {
                        if i < 0 || i as usize >= dict.len() {
                            return Err(HiveError::Format("dictionary index out of range".into()));
                        }
                        codes.push(i as u32);
                    }
                    ColumnVector::dict_from_codes(codes, std::sync::Arc::new(dict), nulls)?
                } else {
                    let mut v = Vec::with_capacity(rows);
                    for i in idx {
                        let s = dict.get(i as usize).ok_or_else(|| {
                            HiveError::Format("dictionary index out of range".into())
                        })?;
                        v.push(s.clone());
                    }
                    ColumnVector::Str(v, nulls)
                }
            }
            0 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(r.get_str()?);
                }
                ColumnVector::Str(v, nulls)
            }
            t => return Err(HiveError::Format(format!("bad string encoding tag {t}"))),
        },
        t => {
            return Err(HiveError::Format(format!(
                "unsupported column type in file: {t}"
            )))
        }
    })
}

/// Parse a corc file held fully in memory (tests / tooling).
pub fn parse_in_memory(bytes: &Bytes) -> Result<(Footer, Bytes)> {
    if bytes.len() < 8 {
        return Err(HiveError::Format("file too short".into()));
    }
    let tail = bytes.slice(bytes.len() - 8..);
    let mut tr = ByteReader::new(tail);
    let footer_len = tr.get_u32()? as usize;
    let mut magic = [0u8; 4];
    for b in magic.iter_mut() {
        *b = tr.get_u8()?;
    }
    if &magic != MAGIC {
        return Err(HiveError::Format("bad magic".into()));
    }
    let footer = parse_footer(bytes.slice(bytes.len() - 8 - footer_len..bytes.len() - 8))?;
    Ok((footer, bytes.clone()))
}

/// Re-encode helper used by compaction tests: round-trip a batch through
/// the format in memory.
pub fn round_trip(batch: &VectorBatch, opts: crate::writer::WriterOptions) -> Result<VectorBatch> {
    let bytes = crate::writer::write_batch_to_bytes(batch, opts)?;
    let (footer, all) = parse_in_memory(&bytes)?;
    let mut out = VectorBatch::empty(&footer.schema)?;
    for rg in &footer.row_groups {
        let mut cols = Vec::new();
        for (ci, c) in rg.chunks.iter().enumerate() {
            let chunk = all.slice(c.offset as usize..(c.offset + c.len) as usize);
            cols.push(decode_column(
                chunk,
                &footer.schema.field(ci).data_type,
                rg.row_count as usize,
                false,
            )?);
        }
        out.append(&VectorBatch::new(footer.schema.clone(), cols)?)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{rle_encode_i64, ByteWriter};
    use crate::writer::{CorcWriter, WriterOptions};
    use hive_common::Row;

    /// Hand-craft a dictionary-encoded string chunk whose index stream
    /// holds a code past the dictionary: both the encoded and the
    /// materialized decode paths must fail with a Format error rather
    /// than panic or fabricate data.
    #[test]
    fn out_of_range_dictionary_code_is_a_format_error() {
        let mut w = ByteWriter::new();
        w.put_u8(0); // no nulls
        w.put_u8(1); // dictionary encoding
        w.put_varint(2); // two entries
        w.put_str("a");
        w.put_str("b");
        rle_encode_i64(&[0, 5, 1], &mut w); // code 5 is out of range
        let bytes = w.finish();
        for keep_dict in [true, false] {
            let err = decode_column(bytes.clone(), &DataType::String, 3, keep_dict)
                .expect_err("out-of-range code must not decode");
            assert!(
                matches!(err, HiveError::Format(_)),
                "{keep_dict}: unexpected error {err:?}"
            );
        }
    }

    /// Encoded chunks of one column share a single memoized dictionary
    /// Arc across row groups — the identity the LLAP cache charges once.
    #[test]
    fn encoded_chunks_share_one_dictionary_arc() {
        let schema = Schema::new(vec![Field::new("s", DataType::String)]);
        let rows: Vec<Row> = (0..100)
            .map(|i| Row::new(vec![hive_common::Value::String(format!("v{}", i % 4))]))
            .collect();
        let batch = VectorBatch::from_rows(&schema, &rows).unwrap();
        let fs = DistFs::new();
        let path = DfsPath::new("/t/shared_dict");
        let mut w = CorcWriter::new(
            schema,
            WriterOptions {
                row_group_size: 25,
                ..Default::default()
            },
        )
        .unwrap();
        w.write_batch(&batch).unwrap();
        fs.create(&path, w.finish().unwrap()).unwrap();

        let f = CorcFile::open(&fs, &path).unwrap();
        assert!(f.row_group_count() > 1);
        let dicts: Vec<std::sync::Arc<Vec<String>>> = (0..f.row_group_count())
            .map(|rg| {
                let col = f.read_column_chunk_encoded(rg, 0).unwrap();
                let (_, dict, _) = col.dict_parts().expect("chunk should stay encoded");
                dict.clone()
            })
            .collect();
        for d in &dicts[1..] {
            assert!(
                std::sync::Arc::ptr_eq(&dicts[0], d),
                "row-group dictionaries were not memoized into one Arc"
            );
        }
    }
}
