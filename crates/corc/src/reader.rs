//! The corc file reader: footer parsing, sarg-driven row-group
//! selection, and ranged per-chunk column reads.

use crate::bloom::BloomFilter;
use crate::encoding::ByteReader;
use crate::sarg::{SearchArgument, TruthValue};
use crate::stats::ColumnStatistics;
use crate::writer::{ChunkMeta, RowGroupMeta};
use crate::MAGIC;
use bytes::Bytes;
use hive_common::{
    BitSet, ColumnVector, DataType, Field, FileId, HiveError, Result, Schema, VectorBatch,
};
use hive_dfs::{DfsPath, DistFs};

/// Parsed footer of a corc file.
#[derive(Debug, Clone)]
pub struct Footer {
    schema: Schema,
    row_group_size: usize,
    total_rows: u64,
    row_groups: Vec<RowGroupMeta>,
}

/// An open corc file backed by the simulated DFS.
///
/// `open` reads only the footer; data is fetched with ranged reads per
/// `(row group, column)` chunk, so the I/O meter reflects projection and
/// row-group skipping exactly.
///
/// The handle is `Sync` + cheaply `Clone` (a DFS handle plus an
/// `Arc`-shared footer), so the morsel-parallel scanner can hand one
/// clone to each worker thread and read disjoint chunks concurrently.
#[derive(Debug, Clone)]
pub struct CorcFile {
    fs: DistFs,
    path: DfsPath,
    file_id: FileId,
    file_len: u64,
    footer: std::sync::Arc<Footer>,
}

const _: () = {
    // Compile-time guard: parallel scan workers share clones of this
    // handle across threads.
    fn _assert<T: Send + Sync + Clone>() {}
    fn _corc_file() {
        _assert::<CorcFile>();
    }
};

impl CorcFile {
    /// Open a file: fetches and parses the footer only.
    pub fn open(fs: &DistFs, path: &DfsPath) -> Result<Self> {
        let meta = fs.stat(path)?;
        if meta.len < 8 {
            return Err(HiveError::Format(format!("file too short: {path}")));
        }
        let tail = fs.read_range(path, meta.len - 8, 8)?;
        let mut tr = ByteReader::new(tail);
        let footer_len = tr.get_u32()? as u64;
        let mut magic = [0u8; 4];
        for b in magic.iter_mut() {
            *b = tr.get_u8()?;
        }
        if &magic != MAGIC {
            return Err(HiveError::Format(format!("bad magic in {path}")));
        }
        if footer_len + 8 > meta.len {
            return Err(HiveError::Format(format!("corrupt footer length in {path}")));
        }
        let footer_bytes = fs.read_range(path, meta.len - 8 - footer_len, footer_len)?;
        let footer = parse_footer(footer_bytes)?;
        Ok(CorcFile {
            fs: fs.clone(),
            path: path.clone(),
            file_id: meta.file_id,
            file_len: meta.len,
            footer: std::sync::Arc::new(footer),
        })
    }

    /// The file schema.
    pub fn schema(&self) -> &Schema {
        &self.footer.schema
    }

    /// Stable file identity (LLAP cache key component).
    pub fn file_id(&self) -> FileId {
        self.file_id
    }

    /// File length in bytes.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }

    /// The file path.
    pub fn path(&self) -> &DfsPath {
        &self.path
    }

    /// Total row count.
    pub fn num_rows(&self) -> u64 {
        self.footer.total_rows
    }

    /// Number of row groups.
    pub fn row_group_count(&self) -> usize {
        self.footer.row_groups.len()
    }

    /// Rows in row group `rg`.
    // invariant: callers enumerate `rg` from `row_group_count()` /
    // `selected_row_groups()` of this same footer, so the index is in
    // range by construction.
    pub fn row_group_rows(&self, rg: usize) -> u64 {
        self.footer.row_groups[rg].row_count
    }

    /// Per-row-group column statistics.
    // invariant: `rg` from footer enumeration (see `row_group_rows`);
    // `col` from this file's schema.
    pub fn column_stats(&self, rg: usize, col: usize) -> &ColumnStatistics {
        &self.footer.row_groups[rg].chunks[col].stats
    }

    /// Per-row-group column Bloom filter, when one was written.
    pub fn column_bloom(&self, rg: usize, col: usize) -> Option<&BloomFilter> {
        self.footer.row_groups[rg].chunks[col].bloom.as_ref()
    }

    /// File-level statistics for a column (merged across row groups).
    pub fn file_column_stats(&self, col: usize) -> ColumnStatistics {
        let mut acc = ColumnStatistics::new();
        for rg in &self.footer.row_groups {
            acc.merge(&rg.chunks[col].stats);
        }
        acc
    }

    /// Row groups the sarg cannot disprove — the paper's "skip reading
    /// entire row groups" pushdown.
    pub fn selected_row_groups(&self, sarg: &SearchArgument) -> Vec<usize> {
        (0..self.row_group_count())
            .filter(|&rg| {
                sarg.evaluate(
                    |c| Some(self.column_stats(rg, c)),
                    |c| self.column_bloom(rg, c),
                ) != TruthValue::No
            })
            .collect()
    }

    /// Byte range of one `(row group, column)` chunk within the file;
    /// a typed error (not a panic) for out-of-range coordinates, which
    /// can reach here via an external cache key rather than footer
    /// enumeration.
    pub fn chunk_range(&self, rg: usize, col: usize) -> Result<(u64, u64)> {
        let c = self
            .footer
            .row_groups
            .get(rg)
            .and_then(|g| g.chunks.get(col))
            .ok_or_else(|| {
                HiveError::Format(format!(
                    "chunk (rg={rg}, col={col}) out of range for {}",
                    self.path
                ))
            })?;
        Ok((c.offset, c.len))
    }

    /// Fetch and decode one column chunk (a ranged DFS read).
    pub fn read_column_chunk(&self, rg: usize, col: usize) -> Result<ColumnVector> {
        let (offset, len) = self.chunk_range(rg, col)?;
        let bytes = self.fs.read_range(&self.path, offset, len)?;
        self.decode_column_chunk(bytes, rg, col)
    }

    /// Decode a previously-fetched chunk (LLAP's cache path: the cache
    /// stores decoded chunks; on miss it fetches bytes then decodes).
    pub fn decode_column_chunk(
        &self,
        bytes: Bytes,
        rg: usize,
        col: usize,
    ) -> Result<ColumnVector> {
        let rows = self
            .footer
            .row_groups
            .get(rg)
            .ok_or_else(|| {
                HiveError::Format(format!("row group {rg} out of range for {}", self.path))
            })?
            .row_count as usize;
        let dt = &self.footer.schema.field(col).data_type;
        decode_column(bytes, dt, rows)
    }

    /// Read a whole row group restricted to `projection` columns.
    pub fn read_row_group(&self, rg: usize, projection: &[usize]) -> Result<VectorBatch> {
        let cols = projection
            .iter()
            .map(|&c| self.read_column_chunk(rg, c))
            .collect::<Result<Vec<_>>>()?;
        VectorBatch::new(self.footer.schema.project(projection), cols)
    }

    /// Read the entire file (all row groups, all columns).
    pub fn read_all(&self) -> Result<VectorBatch> {
        let proj: Vec<usize> = (0..self.footer.schema.len()).collect();
        let mut out = VectorBatch::empty(&self.footer.schema)?;
        for rg in 0..self.row_group_count() {
            out.append(&self.read_row_group(rg, &proj)?)?;
        }
        Ok(out)
    }
}

pub(crate) fn parse_footer(bytes: Bytes) -> Result<Footer> {
    let mut r = ByteReader::new(bytes);
    let nfields = r.get_varint()? as usize;
    let mut fields = Vec::with_capacity(nfields);
    for _ in 0..nfields {
        let name = r.get_str()?;
        let dt = read_data_type(&mut r)?;
        let nullable = r.get_u8()? != 0;
        fields.push(Field {
            name,
            data_type: dt,
            nullable,
        });
    }
    let schema = Schema::new(fields);
    let row_group_size = r.get_varint()? as usize;
    let total_rows = r.get_varint()?;
    let ngroups = r.get_varint()? as usize;
    let mut row_groups = Vec::with_capacity(ngroups);
    for _ in 0..ngroups {
        let row_count = r.get_varint()?;
        let mut chunks = Vec::with_capacity(schema.len());
        for _ in 0..schema.len() {
            let offset = r.get_u64()?;
            let len = r.get_u64()?;
            let stats = ColumnStatistics::read(&mut r)?;
            let bloom = if r.get_u8()? == 1 {
                Some(BloomFilter::read(&mut r)?)
            } else {
                None
            };
            chunks.push(ChunkMeta {
                offset,
                len,
                stats,
                bloom,
            });
        }
        row_groups.push(RowGroupMeta { row_count, chunks });
    }
    Ok(Footer {
        schema,
        row_group_size,
        total_rows,
        row_groups,
    })
}

impl Footer {
    /// Rows per row group as written.
    pub fn row_group_size(&self) -> usize {
        self.row_group_size
    }
}

fn read_data_type(r: &mut ByteReader) -> Result<DataType> {
    Ok(match r.get_u8()? {
        0 => DataType::Boolean,
        1 => DataType::Int,
        2 => DataType::BigInt,
        3 => DataType::Double,
        4 => {
            let p = r.get_u8()?;
            let s = r.get_u8()?;
            DataType::Decimal(p, s)
        }
        5 => DataType::String,
        6 => DataType::Date,
        7 => DataType::Timestamp,
        t => return Err(HiveError::Format(format!("unknown type tag {t}"))),
    })
}

/// Decode one column chunk given its type and row count.
pub(crate) fn decode_column(bytes: Bytes, dt: &DataType, rows: usize) -> Result<ColumnVector> {
    let mut r = ByteReader::new(bytes);
    // Null section.
    let nulls = match r.get_u8()? {
        0 => None,
        1 => {
            let count = r.get_varint()? as usize;
            let mut b = BitSet::new(rows);
            let mut pos = 0u64;
            for i in 0..count {
                let delta = r.get_varint()?;
                pos = if i == 0 { delta } else { pos + delta };
                if pos as usize >= rows {
                    return Err(HiveError::Format("null position out of range".into()));
                }
                b.set(pos as usize);
            }
            Some(b)
        }
        t => return Err(HiveError::Format(format!("bad null section tag {t}"))),
    };
    Ok(match dt {
        DataType::Boolean => {
            let ints = crate::encoding::rle_decode_i64(&mut r, rows)?;
            ColumnVector::Boolean(ints.into_iter().map(|v| v != 0).collect(), nulls)
        }
        DataType::Int => {
            let ints = crate::encoding::rle_decode_i64(&mut r, rows)?;
            ColumnVector::Int(ints.into_iter().map(|v| v as i32).collect(), nulls)
        }
        DataType::Date => {
            let ints = crate::encoding::rle_decode_i64(&mut r, rows)?;
            ColumnVector::Date(ints.into_iter().map(|v| v as i32).collect(), nulls)
        }
        DataType::BigInt => {
            ColumnVector::BigInt(crate::encoding::rle_decode_i64(&mut r, rows)?, nulls)
        }
        DataType::Timestamp => {
            ColumnVector::Timestamp(crate::encoding::rle_decode_i64(&mut r, rows)?, nulls)
        }
        DataType::Double => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_f64()?);
            }
            ColumnVector::Double(v, nulls)
        }
        DataType::Decimal(_, s) => {
            let mut v = Vec::with_capacity(rows);
            for _ in 0..rows {
                v.push(r.get_i128()?);
            }
            ColumnVector::Decimal(v, *s, nulls)
        }
        DataType::String => match r.get_u8()? {
            1 => {
                let dict_len = r.get_varint()? as usize;
                let mut dict = Vec::with_capacity(dict_len);
                for _ in 0..dict_len {
                    dict.push(r.get_str()?);
                }
                let idx = crate::encoding::rle_decode_i64(&mut r, rows)?;
                let mut v = Vec::with_capacity(rows);
                for i in idx {
                    let s = dict.get(i as usize).ok_or_else(|| {
                        HiveError::Format("dictionary index out of range".into())
                    })?;
                    v.push(s.clone());
                }
                ColumnVector::Str(v, nulls)
            }
            0 => {
                let mut v = Vec::with_capacity(rows);
                for _ in 0..rows {
                    v.push(r.get_str()?);
                }
                ColumnVector::Str(v, nulls)
            }
            t => return Err(HiveError::Format(format!("bad string encoding tag {t}"))),
        },
        t => {
            return Err(HiveError::Format(format!(
                "unsupported column type in file: {t}"
            )))
        }
    })
}

/// Parse a corc file held fully in memory (tests / tooling).
pub fn parse_in_memory(bytes: &Bytes) -> Result<(Footer, Bytes)> {
    if bytes.len() < 8 {
        return Err(HiveError::Format("file too short".into()));
    }
    let tail = bytes.slice(bytes.len() - 8..);
    let mut tr = ByteReader::new(tail);
    let footer_len = tr.get_u32()? as usize;
    let mut magic = [0u8; 4];
    for b in magic.iter_mut() {
        *b = tr.get_u8()?;
    }
    if &magic != MAGIC {
        return Err(HiveError::Format("bad magic".into()));
    }
    let footer =
        parse_footer(bytes.slice(bytes.len() - 8 - footer_len..bytes.len() - 8))?;
    Ok((footer, bytes.clone()))
}

/// Re-encode helper used by compaction tests: round-trip a batch through
/// the format in memory.
pub fn round_trip(batch: &VectorBatch, opts: crate::writer::WriterOptions) -> Result<VectorBatch> {
    let bytes = crate::writer::write_batch_to_bytes(batch, opts)?;
    let (footer, all) = parse_in_memory(&bytes)?;
    let mut out = VectorBatch::empty(&footer.schema)?;
    for rg in &footer.row_groups {
        let mut cols = Vec::new();
        for (ci, c) in rg.chunks.iter().enumerate() {
            let chunk = all.slice(c.offset as usize..(c.offset + c.len) as usize);
            cols.push(decode_column(
                chunk,
                &footer.schema.field(ci).data_type,
                rg.row_count as usize,
            )?);
        }
        out.append(&VectorBatch::new(footer.schema.clone(), cols)?)?;
    }
    Ok(out)
}
