//! Per-column min/max/null statistics carried in file footers, used for
//! row-group skipping and merged upward into Metastore table statistics.

use crate::encoding::{read_value, write_value, ByteReader, ByteWriter};
use hive_common::{ColumnVector, Result, Value};

/// Physical encoding the writer chose for a column chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ChunkEncoding {
    /// Values stored directly.
    #[default]
    Plain,
    /// Sorted deduped dictionary plus RLE-coded indexes (strings only).
    Dictionary,
}

/// Statistics for one column over some row range.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStatistics {
    /// Minimum non-null value, if any non-null value was seen.
    pub min: Option<Value>,
    /// Maximum non-null value.
    pub max: Option<Value>,
    /// Number of NULLs.
    pub null_count: u64,
    /// Total number of rows covered (including NULLs).
    pub num_rows: u64,
    /// Encoding the writer chose for this chunk; merged stats report
    /// `Dictionary` when any covered chunk was dictionary-encoded.
    pub encoding: ChunkEncoding,
}

impl ColumnStatistics {
    /// Empty statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one value into the statistics.
    pub fn update(&mut self, v: &Value) {
        self.num_rows += 1;
        if v.is_null() {
            self.null_count += 1;
            return;
        }
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) => {
                if v.sql_cmp(m) == Some(std::cmp::Ordering::Less) {
                    self.min = Some(v.clone());
                }
            }
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) => {
                if v.sql_cmp(m) == Some(std::cmp::Ordering::Greater) {
                    self.max = Some(v.clone());
                }
            }
        }
    }

    /// Fold a whole column vector into the statistics.
    pub fn update_column(&mut self, col: &ColumnVector) {
        for i in 0..col.len() {
            self.update(&col.get(i));
        }
    }

    /// Merge statistics from another row range (additive, per §4.1).
    pub fn merge(&mut self, other: &ColumnStatistics) {
        self.num_rows += other.num_rows;
        self.null_count += other.null_count;
        if other.encoding == ChunkEncoding::Dictionary {
            self.encoding = ChunkEncoding::Dictionary;
        }
        if let Some(m) = &other.min {
            self.update_minmax_only(m);
        }
        if let Some(m) = &other.max {
            self.update_minmax_only(m);
        }
    }

    fn update_minmax_only(&mut self, v: &Value) {
        match &self.min {
            None => self.min = Some(v.clone()),
            Some(m) if v.sql_cmp(m) == Some(std::cmp::Ordering::Less) => self.min = Some(v.clone()),
            _ => {}
        }
        match &self.max {
            None => self.max = Some(v.clone()),
            Some(m) if v.sql_cmp(m) == Some(std::cmp::Ordering::Greater) => {
                self.max = Some(v.clone())
            }
            _ => {}
        }
    }

    /// True when every covered row is NULL.
    pub fn all_null(&self) -> bool {
        self.num_rows > 0 && self.null_count == self.num_rows
    }

    /// Serialize.
    pub fn write(&self, w: &mut ByteWriter) {
        write_value(w, self.min.as_ref().unwrap_or(&Value::Null));
        write_value(w, self.max.as_ref().unwrap_or(&Value::Null));
        w.put_varint(self.null_count);
        w.put_varint(self.num_rows);
        w.put_u8(match self.encoding {
            ChunkEncoding::Plain => 0,
            ChunkEncoding::Dictionary => 1,
        });
    }

    /// Deserialize.
    pub fn read(r: &mut ByteReader) -> Result<Self> {
        let min = match read_value(r)? {
            Value::Null => None,
            v => Some(v),
        };
        let max = match read_value(r)? {
            Value::Null => None,
            v => Some(v),
        };
        Ok(ColumnStatistics {
            min,
            max,
            null_count: r.get_varint()?,
            num_rows: r.get_varint()?,
            encoding: match r.get_u8()? {
                1 => ChunkEncoding::Dictionary,
                _ => ChunkEncoding::Plain,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_tracks_min_max_nulls() {
        let mut s = ColumnStatistics::new();
        for v in [Value::Int(5), Value::Null, Value::Int(-3), Value::Int(9)] {
            s.update(&v);
        }
        assert_eq!(s.min, Some(Value::Int(-3)));
        assert_eq!(s.max, Some(Value::Int(9)));
        assert_eq!(s.null_count, 1);
        assert_eq!(s.num_rows, 4);
        assert!(!s.all_null());
    }

    #[test]
    fn merge_is_additive() {
        let mut a = ColumnStatistics::new();
        a.update(&Value::Int(1));
        a.update(&Value::Int(5));
        let mut b = ColumnStatistics::new();
        b.update(&Value::Int(-2));
        b.update(&Value::Null);
        a.merge(&b);
        assert_eq!(a.min, Some(Value::Int(-2)));
        assert_eq!(a.max, Some(Value::Int(5)));
        assert_eq!(a.num_rows, 4);
        assert_eq!(a.null_count, 1);
    }

    #[test]
    fn all_null_detection() {
        let mut s = ColumnStatistics::new();
        s.update(&Value::Null);
        s.update(&Value::Null);
        assert!(s.all_null());
        assert_eq!(s.min, None);
    }

    #[test]
    fn serialization_round_trip() {
        let mut s = ColumnStatistics::new();
        s.update(&Value::String("apple".into()));
        s.update(&Value::String("pear".into()));
        s.update(&Value::Null);
        let mut w = ByteWriter::new();
        s.write(&mut w);
        let mut r = ByteReader::new(w.finish());
        assert_eq!(ColumnStatistics::read(&mut r).unwrap(), s);
    }
}
