//! SQL feature detection for engine-version gating.
//!
//! Figure 7 of the paper relies on Hive 1.2 *failing* 49 of the 99
//! TPC-DS queries: it "lacked support for set operations such as EXCEPT
//! or INTERSECT, correlated scalar subqueries with non-equi join
//! conditions, interval notation, and order by unselected columns". The
//! driver uses [`required_features`] to reject those statements when
//! emulating the old release.

use crate::ast::*;

/// A SQL feature introduced after Hive 1.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SqlFeature {
    /// INTERSECT / EXCEPT set operations.
    IntersectExcept,
    /// Scalar subqueries (correlated or not).
    ScalarSubquery,
    /// Correlated EXISTS / IN subqueries.
    SubqueryPredicate,
    /// `INTERVAL n DAYS` notation.
    IntervalNotation,
    /// ORDER BY an expression that is not in the select list.
    OrderByUnselected,
    /// GROUPING SETS / ROLLUP / CUBE.
    GroupingSets,
    /// Window functions.
    WindowFunctions,
    /// Materialized views.
    MaterializedViews,
    /// MERGE statement.
    MergeStatement,
    /// Row-level UPDATE/DELETE.
    RowLevelDml,
}

impl SqlFeature {
    /// Was this feature available in Hive 1.2?
    pub fn available_in_v1_2(&self) -> bool {
        matches!(
            self,
            // Windowing and grouping sets existed (in some form) in 1.2.
            SqlFeature::WindowFunctions | SqlFeature::GroupingSets
        )
    }
}

/// Collect the post-1.2 features a statement requires.
pub fn required_features(stmt: &Statement) -> Vec<SqlFeature> {
    let mut out = Vec::new();
    collect_statement(stmt, &mut out);
    out.sort_by_key(|f| *f as u8);
    out.dedup();
    out
}

fn push(out: &mut Vec<SqlFeature>, f: SqlFeature) {
    out.push(f);
}

fn collect_statement(stmt: &Statement, out: &mut Vec<SqlFeature>) {
    match stmt {
        Statement::Query(q) => collect_query(q, out),
        Statement::Insert(i) => match &i.source {
            InsertSource::Query(q) => collect_query(q, out),
            InsertSource::Values(rows) => {
                for r in rows {
                    for e in r {
                        collect_expr(e, out);
                    }
                }
            }
        },
        Statement::Update(u) => {
            push(out, SqlFeature::RowLevelDml);
            for (_, e) in &u.assignments {
                collect_expr(e, out);
            }
            if let Some(f) = &u.filter {
                collect_expr(f, out);
            }
        }
        Statement::Delete(d) => {
            push(out, SqlFeature::RowLevelDml);
            if let Some(f) = &d.filter {
                collect_expr(f, out);
            }
        }
        Statement::MultiInsert(mi) => {
            for leg in &mi.inserts {
                for item in &leg.projection {
                    if let SelectItem::Expr { expr, .. } = item {
                        collect_expr(expr, out);
                    }
                }
                if let Some(f) = &leg.filter {
                    collect_expr(f, out);
                }
            }
        }
        Statement::Merge(m) => {
            push(out, SqlFeature::MergeStatement);
            collect_expr(&m.on, out);
        }
        Statement::CreateMaterializedView(mv) => {
            push(out, SqlFeature::MaterializedViews);
            collect_query(&mv.query, out);
        }
        Statement::AlterMaterializedViewRebuild { .. } | Statement::DropMaterializedView { .. } => {
            push(out, SqlFeature::MaterializedViews);
        }
        Statement::CreateTable(ct) => {
            if let Some(q) = &ct.as_query {
                collect_query(q, out);
            }
        }
        Statement::Explain(inner) => collect_statement(inner, out),
        _ => {}
    }
}

fn collect_query(q: &Query, out: &mut Vec<SqlFeature>) {
    for (_, cte) in &q.ctes {
        collect_query(cte, out);
    }
    collect_body(&q.body, out);
    // ORDER BY unselected columns: approximate by checking that every
    // ORDER BY column reference appears in the (top-level) select list
    // as an expression or alias.
    if let QueryBody::Select(sel) = &q.body {
        let mut selected: Vec<String> = Vec::new();
        let mut has_wildcard = false;
        for item in &sel.projection {
            match item {
                SelectItem::Expr { expr, alias } => {
                    if let Some(a) = alias {
                        selected.push(a.clone());
                    }
                    if let Expr::Column { name, .. } = expr {
                        selected.push(name.clone());
                    }
                }
                SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => has_wildcard = true,
            }
        }
        if !has_wildcard {
            for o in &q.order_by {
                if let Expr::Column { name, .. } = &o.expr {
                    if !selected.iter().any(|s| s == name) {
                        push(out, SqlFeature::OrderByUnselected);
                    }
                }
            }
        }
    }
    for o in &q.order_by {
        collect_expr(&o.expr, out);
    }
}

fn collect_body(b: &QueryBody, out: &mut Vec<SqlFeature>) {
    match b {
        QueryBody::Select(sel) => collect_select(sel, out),
        QueryBody::SetOp {
            op, left, right, ..
        } => {
            if matches!(op, SetOperator::Intersect | SetOperator::Except) {
                push(out, SqlFeature::IntersectExcept);
            }
            collect_body(left, out);
            collect_body(right, out);
        }
    }
}

fn collect_select(sel: &Select, out: &mut Vec<SqlFeature>) {
    if sel.grouping_sets.is_some() {
        push(out, SqlFeature::GroupingSets);
    }
    for item in &sel.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_expr(expr, out);
        }
    }
    for t in &sel.from {
        collect_table_ref(t, out);
    }
    if let Some(e) = &sel.selection {
        collect_expr(e, out);
    }
    for e in &sel.group_by {
        collect_expr(e, out);
    }
    if let Some(e) = &sel.having {
        collect_expr(e, out);
    }
}

fn collect_table_ref(t: &TableRef, out: &mut Vec<SqlFeature>) {
    match t {
        TableRef::Table { .. } => {}
        TableRef::Subquery { query, .. } => collect_query(query, out),
        TableRef::Join {
            left, right, on, ..
        } => {
            collect_table_ref(left, out);
            collect_table_ref(right, out);
            if let Some(e) = on {
                collect_expr(e, out);
            }
        }
    }
}

fn collect_expr(e: &Expr, out: &mut Vec<SqlFeature>) {
    e.visit(&mut |node| match node {
        Expr::ScalarSubquery(q) => {
            push(out, SqlFeature::ScalarSubquery);
            collect_query(q, out);
        }
        Expr::InSubquery { query, .. } => {
            push(out, SqlFeature::SubqueryPredicate);
            collect_query(query, out);
        }
        Expr::Exists { query, .. } => {
            push(out, SqlFeature::SubqueryPredicate);
            collect_query(query, out);
        }
        Expr::Window { .. } => push(out, SqlFeature::WindowFunctions),
        Expr::Function { name, .. } if name.starts_with("__interval_") => {
            push(out, SqlFeature::IntervalNotation)
        }
        _ => {}
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_sql;

    fn features(sql: &str) -> Vec<SqlFeature> {
        required_features(&parse_sql(sql).unwrap())
    }

    #[test]
    fn plain_select_needs_nothing() {
        assert!(features("SELECT a FROM t WHERE b > 1").is_empty());
    }

    #[test]
    fn intersect_detected() {
        assert!(features("SELECT a FROM t INTERSECT SELECT a FROM u")
            .contains(&SqlFeature::IntersectExcept));
        assert!(features("SELECT a FROM t EXCEPT SELECT a FROM u")
            .contains(&SqlFeature::IntersectExcept));
        assert!(!features("SELECT a FROM t UNION ALL SELECT a FROM u")
            .contains(&SqlFeature::IntersectExcept));
    }

    #[test]
    fn subqueries_detected() {
        assert!(features("SELECT a FROM t WHERE a IN (SELECT b FROM u)")
            .contains(&SqlFeature::SubqueryPredicate));
        assert!(features("SELECT a FROM t WHERE a > (SELECT AVG(b) FROM u)")
            .contains(&SqlFeature::ScalarSubquery));
    }

    #[test]
    fn interval_detected() {
        assert!(
            features("SELECT a FROM t WHERE d <= DATE '2000-01-01' + INTERVAL 30 DAYS")
                .contains(&SqlFeature::IntervalNotation)
        );
    }

    #[test]
    fn order_by_unselected_detected() {
        assert!(features("SELECT a FROM t ORDER BY b").contains(&SqlFeature::OrderByUnselected));
        assert!(!features("SELECT a, b FROM t ORDER BY b").contains(&SqlFeature::OrderByUnselected));
        assert!(
            !features("SELECT a AS x FROM t ORDER BY x").contains(&SqlFeature::OrderByUnselected)
        );
    }

    #[test]
    fn v1_2_availability() {
        assert!(SqlFeature::WindowFunctions.available_in_v1_2());
        assert!(!SqlFeature::IntersectExcept.available_in_v1_2());
        assert!(!SqlFeature::MergeStatement.available_in_v1_2());
    }
}
