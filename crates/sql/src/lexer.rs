//! The SQL lexer.

use hive_common::{HiveError, Result};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (kept verbatim; keyword matching is
    /// case-insensitive at the parser level).
    Word(String),
    /// Backtick-quoted identifier.
    QuotedIdent(String),
    /// Single-quoted string literal (escapes resolved).
    StringLit(String),
    /// Integer literal.
    Integer(i128),
    /// Decimal/float literal, kept as text for exact decimal handling.
    Number(String),
    Comma,
    LParen,
    RParen,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    Semicolon,
    /// End of input.
    Eof,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Word(w) => write!(f, "{w}"),
            Token::QuotedIdent(w) => write!(f, "`{w}`"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::Integer(v) => write!(f, "{v}"),
            Token::Number(v) => write!(f, "{v}"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Percent => write!(f, "%"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// Tokenize SQL text. Supports `--` line comments and `/* */` block
/// comments.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let chars: Vec<char> = sql.chars().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                i += 2;
                while i + 1 < chars.len() && !(chars[i] == '*' && chars[i + 1] == '/') {
                    i += 1;
                }
                if i + 1 >= chars.len() {
                    return Err(HiveError::Parse("unterminated block comment".into()));
                }
                i += 2;
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match chars.get(i) {
                        None => return Err(HiveError::Parse("unterminated string".into())),
                        Some('\'') if chars.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some('\\') if chars.get(i + 1).is_some() => {
                            let n = chars[i + 1];
                            s.push(match n {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            i += 2;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.push(Token::StringLit(s));
            }
            '`' => {
                i += 1;
                let start = i;
                while i < chars.len() && chars[i] != '`' {
                    i += 1;
                }
                if i >= chars.len() {
                    return Err(HiveError::Parse("unterminated quoted identifier".into()));
                }
                out.push(Token::QuotedIdent(
                    chars[start..i].iter().collect::<String>(),
                ));
                i += 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_decimal = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || (chars[i] == '.'
                            && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit())))
                {
                    if chars[i] == '.' {
                        is_decimal = true;
                    }
                    i += 1;
                }
                // Scientific notation.
                if i < chars.len() && (chars[i] == 'e' || chars[i] == 'E') {
                    let save = i;
                    i += 1;
                    if i < chars.len() && (chars[i] == '+' || chars[i] == '-') {
                        i += 1;
                    }
                    if i < chars.len() && chars[i].is_ascii_digit() {
                        is_decimal = true;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    } else {
                        i = save;
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if is_decimal {
                    out.push(Token::Number(text));
                } else {
                    let v: i128 = text
                        .parse()
                        .map_err(|_| HiveError::Parse(format!("bad integer literal {text}")))?;
                    out.push(Token::Integer(v));
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Token::Word(chars[start..i].iter().collect()));
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            '.' => {
                out.push(Token::Dot);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            ';' => {
                out.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                if chars.get(i + 1) == Some(&'=') {
                    i += 1; // tolerate '=='
                }
                out.push(Token::Eq);
                i += 1;
            }
            '!' if chars.get(i + 1) == Some(&'=') => {
                out.push(Token::NotEq);
                i += 2;
            }
            '<' => match chars.get(i + 1) {
                Some('=') => {
                    out.push(Token::LtEq);
                    i += 2;
                }
                Some('>') => {
                    out.push(Token::NotEq);
                    i += 2;
                }
                _ => {
                    out.push(Token::Lt);
                    i += 1;
                }
            },
            '>' => {
                if chars.get(i + 1) == Some(&'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            other => {
                return Err(HiveError::Parse(format!(
                    "unexpected character '{other}' at offset {i}"
                )))
            }
        }
    }
    out.push(Token::Eof);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_numbers_symbols() {
        let toks = tokenize("SELECT a, 1.5, 42 FROM t WHERE x <= 'hi'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("SELECT".into()),
                Token::Word("a".into()),
                Token::Comma,
                Token::Number("1.5".into()),
                Token::Comma,
                Token::Integer(42),
                Token::Word("FROM".into()),
                Token::Word("t".into()),
                Token::Word("WHERE".into()),
                Token::Word("x".into()),
                Token::LtEq,
                Token::StringLit("hi".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_quotes() {
        let toks = tokenize("a -- line comment\n /* block */ `weird id` 'it''s'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Word("a".into()),
                Token::QuotedIdent("weird id".into()),
                Token::StringLit("it's".into()),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn operators() {
        let toks = tokenize("< <= > >= <> != = ==").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::LtEq,
                Token::Gt,
                Token::GtEq,
                Token::NotEq,
                Token::NotEq,
                Token::Eq,
                Token::Eq,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn scientific_notation_and_member_access() {
        let toks = tokenize("1e3 2.5E-2 t.c").unwrap();
        assert_eq!(toks[0], Token::Number("1e3".into()));
        assert_eq!(toks[1], Token::Number("2.5E-2".into()));
        assert_eq!(
            &toks[2..5],
            &[Token::Word("t".into()), Token::Dot, Token::Word("c".into())]
        );
    }

    #[test]
    fn errors() {
        assert!(tokenize("'unterminated").is_err());
        assert!(tokenize("`unterminated").is_err());
        assert!(tokenize("a @ b").is_err());
        assert!(tokenize("/* unterminated").is_err());
    }
}
