//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Token};
use hive_common::dates::DateField;
use hive_common::{value, DataType, HiveError, Result, Value};

/// Parse a single SQL statement.
pub fn parse_sql(sql: &str) -> Result<Statement> {
    let mut stmts = parse_statements(sql)?;
    match stmts.len() {
        1 => Ok(stmts.remove(0)),
        0 => Err(HiveError::Parse("empty statement".into())),
        n => Err(HiveError::Parse(format!("expected one statement, got {n}"))),
    }
}

/// Parse a `;`-separated script.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    loop {
        while p.peek() == &Token::Semicolon {
            p.advance();
        }
        if p.peek() == &Token::Eof {
            break;
        }
        out.push(p.parse_statement()?);
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_at(&self, n: usize) -> &Token {
        &self.tokens[(self.pos + n).min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        self.pos += 1;
        t
    }

    fn error<T>(&self, msg: &str) -> Result<T> {
        Err(HiveError::Parse(format!(
            "{msg} (near token '{}')",
            self.peek()
        )))
    }

    /// Is the current token the given keyword (case-insensitive)?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    fn at_kw_at(&self, n: usize, kw: &str) -> bool {
        matches!(self.peek_at(n), Token::Word(w) if w.eq_ignore_ascii_case(kw))
    }

    /// Consume the keyword if present.
    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Require a keyword.
    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            self.error(&format!("expected {kw}"))
        }
    }

    /// Consume the token if it matches.
    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == t {
            self.advance();
            true
        } else {
            false
        }
    }

    /// Require a token.
    fn expect(&mut self, t: &Token) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            self.error(&format!("expected '{t}'"))
        }
    }

    /// Parse an identifier (word that is not a reserved structural
    /// keyword, or quoted identifier).
    fn parse_ident(&mut self) -> Result<String> {
        match self.advance() {
            Token::Word(w) => Ok(w.to_ascii_lowercase()),
            Token::QuotedIdent(w) => Ok(w.to_ascii_lowercase()),
            other => Err(HiveError::Parse(format!(
                "expected identifier, found '{other}'"
            ))),
        }
    }

    fn parse_object_name(&mut self) -> Result<ObjectName> {
        let first = self.parse_ident()?;
        if self.eat(&Token::Dot) {
            let second = self.parse_ident()?;
            Ok(ObjectName {
                db: Some(first),
                name: second,
            })
        } else {
            Ok(ObjectName {
                db: None,
                name: first,
            })
        }
    }

    // ---- statements ------------------------------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        if self.at_kw("SELECT") || self.at_kw("WITH") || self.peek() == &Token::LParen {
            return Ok(Statement::Query(self.parse_query()?));
        }
        if self.at_kw("EXPLAIN") {
            self.advance();
            return Ok(Statement::Explain(Box::new(self.parse_statement()?)));
        }
        if self.at_kw("CREATE") {
            return self.parse_create();
        }
        if self.at_kw("DROP") {
            return self.parse_drop();
        }
        if self.at_kw("INSERT") {
            return self.parse_insert();
        }
        if self.at_kw("FROM") {
            return self.parse_multi_insert();
        }
        if self.at_kw("UPDATE") {
            return self.parse_update();
        }
        if self.at_kw("DELETE") {
            return self.parse_delete();
        }
        if self.at_kw("MERGE") {
            return self.parse_merge();
        }
        if self.at_kw("USE") {
            self.advance();
            return Ok(Statement::Use(self.parse_ident()?));
        }
        if self.at_kw("ANALYZE") {
            self.advance();
            self.expect_kw("TABLE")?;
            let name = self.parse_object_name()?;
            self.expect_kw("COMPUTE")?;
            self.expect_kw("STATISTICS")?;
            return Ok(Statement::AnalyzeTable { name });
        }
        if self.at_kw("ALTER") {
            return self.parse_alter();
        }
        if self.at_kw("SHOW") {
            self.advance();
            if self.eat_kw("TABLES") {
                return Ok(Statement::ShowTables);
            }
            if self.eat_kw("COMPACTIONS") {
                return Ok(Statement::ShowCompactions);
            }
            if self.eat_kw("TRANSACTIONS") {
                return Ok(Statement::ShowTransactions);
            }
            if self.eat_kw("PARTITIONS") {
                return Ok(Statement::ShowPartitions {
                    name: self.parse_object_name()?,
                });
            }
            return self
                .error("expected TABLES, PARTITIONS, COMPACTIONS, or TRANSACTIONS after SHOW");
        }
        if self.at_kw("DESCRIBE") || self.at_kw("DESC") {
            self.advance();
            let extended = self.eat_kw("EXTENDED");
            return Ok(Statement::Describe {
                name: self.parse_object_name()?,
                extended,
            });
        }
        self.error("unrecognized statement")
    }

    fn parse_alter(&mut self) -> Result<Statement> {
        self.expect_kw("ALTER")?;
        if self.eat_kw("MATERIALIZED") {
            self.expect_kw("VIEW")?;
            let name = self.parse_object_name()?;
            self.expect_kw("REBUILD")?;
            return Ok(Statement::AlterMaterializedViewRebuild { name });
        }
        self.expect_kw("TABLE")?;
        let name = self.parse_object_name()?;
        self.expect_kw("COMPACT")?;
        let major = match self.advance() {
            Token::StringLit(s) if s.eq_ignore_ascii_case("major") => true,
            Token::StringLit(s) if s.eq_ignore_ascii_case("minor") => false,
            other => {
                return Err(HiveError::Parse(format!(
                    "expected 'major' or 'minor', found '{other}'"
                )))
            }
        };
        Ok(Statement::AlterTableCompact { name, major })
    }

    fn parse_create(&mut self) -> Result<Statement> {
        self.expect_kw("CREATE")?;
        if self.eat_kw("DATABASE") || self.eat_kw("SCHEMA") {
            let if_not_exists = self.parse_if_not_exists()?;
            return Ok(Statement::CreateDatabase {
                name: self.parse_ident()?,
                if_not_exists,
            });
        }
        if self.eat_kw("MATERIALIZED") {
            self.expect_kw("VIEW")?;
            let if_not_exists = self.parse_if_not_exists()?;
            let name = self.parse_object_name()?;
            let mut stored_by = None;
            let mut properties = Vec::new();
            loop {
                if self.at_kw("STORED") {
                    self.advance();
                    self.expect_kw("BY")?;
                    stored_by = Some(self.parse_string_lit()?);
                } else if self.at_kw("TBLPROPERTIES") {
                    self.advance();
                    properties = self.parse_properties()?;
                } else {
                    break;
                }
            }
            self.expect_kw("AS")?;
            let query = self.parse_query()?;
            return Ok(Statement::CreateMaterializedView(CreateMaterializedView {
                name,
                if_not_exists,
                stored_by,
                properties,
                query,
            }));
        }
        let external = self.eat_kw("EXTERNAL");
        self.expect_kw("TABLE")?;
        let if_not_exists = self.parse_if_not_exists()?;
        let name = self.parse_object_name()?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        if self.eat(&Token::LParen) {
            // Empty column list: schema inferred from the external
            // system (STORED BY) or from a CTAS query.
            if self.eat(&Token::RParen) {
                return self.parse_create_table_tail(
                    name,
                    if_not_exists,
                    external,
                    columns,
                    constraints,
                );
            }
            loop {
                if self.at_kw("PRIMARY") {
                    self.advance();
                    self.expect_kw("KEY")?;
                    constraints.push(TableConstraintDef::PrimaryKey(self.parse_ident_list()?));
                } else if self.at_kw("FOREIGN") {
                    self.advance();
                    self.expect_kw("KEY")?;
                    let cols = self.parse_ident_list()?;
                    self.expect_kw("REFERENCES")?;
                    let ref_table = self.parse_object_name()?;
                    let ref_columns = self.parse_ident_list()?;
                    constraints.push(TableConstraintDef::ForeignKey {
                        columns: cols,
                        ref_table,
                        ref_columns,
                    });
                } else if self.at_kw("UNIQUE") {
                    self.advance();
                    constraints.push(TableConstraintDef::Unique(self.parse_ident_list()?));
                } else {
                    columns.push(self.parse_column_def()?);
                }
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.parse_create_table_tail(name, if_not_exists, external, columns, constraints)
    }

    fn parse_create_table_tail(
        &mut self,
        name: ObjectName,
        if_not_exists: bool,
        external: bool,
        columns: Vec<ColumnDef>,
        constraints: Vec<TableConstraintDef>,
    ) -> Result<Statement> {
        let mut partitioned_by = Vec::new();
        let mut stored_by = None;
        let mut properties = Vec::new();
        let mut as_query = None;
        loop {
            if self.at_kw("PARTITIONED") {
                self.advance();
                self.expect_kw("BY")?;
                self.expect(&Token::LParen)?;
                loop {
                    partitioned_by.push(self.parse_column_def()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else if self.at_kw("STORED") {
                self.advance();
                self.expect_kw("BY")?;
                stored_by = Some(self.parse_string_lit()?);
            } else if self.at_kw("TBLPROPERTIES") {
                self.advance();
                properties = self.parse_properties()?;
            } else if self.at_kw("AS") {
                self.advance();
                as_query = Some(self.parse_query()?);
                break;
            } else {
                break;
            }
        }
        Ok(Statement::CreateTable(CreateTable {
            name,
            if_not_exists,
            external,
            columns,
            constraints,
            partitioned_by,
            stored_by,
            properties,
            as_query,
        }))
    }

    fn parse_if_not_exists(&mut self) -> Result<bool> {
        if self.at_kw("IF") && self.at_kw_at(1, "NOT") {
            self.advance();
            self.advance();
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_drop(&mut self) -> Result<Statement> {
        self.expect_kw("DROP")?;
        if self.eat_kw("DATABASE") || self.eat_kw("SCHEMA") {
            let if_exists = self.parse_if_exists()?;
            return Ok(Statement::DropDatabase {
                name: self.parse_ident()?,
                if_exists,
            });
        }
        if self.eat_kw("MATERIALIZED") {
            self.expect_kw("VIEW")?;
            let if_exists = self.parse_if_exists()?;
            return Ok(Statement::DropMaterializedView {
                name: self.parse_object_name()?,
                if_exists,
            });
        }
        self.expect_kw("TABLE")?;
        let if_exists = self.parse_if_exists()?;
        Ok(Statement::DropTable {
            name: self.parse_object_name()?,
            if_exists,
        })
    }

    fn parse_if_exists(&mut self) -> Result<bool> {
        if self.at_kw("IF") {
            self.advance();
            self.expect_kw("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_insert(&mut self) -> Result<Statement> {
        self.expect_kw("INSERT")?;
        let overwrite = if self.eat_kw("OVERWRITE") {
            self.expect_kw("TABLE")?;
            true
        } else {
            self.expect_kw("INTO")?;
            self.eat_kw("TABLE");
            false
        };
        let table = self.parse_object_name()?;
        let columns = if self.peek() == &Token::LParen
            && !self.at_kw_at(1, "SELECT")
            && !self.at_kw_at(1, "WITH")
        {
            Some(self.parse_ident_list()?)
        } else {
            None
        };
        let source = if self.eat_kw("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(self.parse_query()?)
        };
        Ok(Statement::Insert(Insert {
            table,
            columns,
            source,
            overwrite,
        }))
    }

    /// `FROM src INSERT INTO t1 SELECT ... [WHERE ...] INSERT INTO ...`
    fn parse_multi_insert(&mut self) -> Result<Statement> {
        self.expect_kw("FROM")?;
        let source = self.parse_table_primary()?;
        let mut inserts = Vec::new();
        while self.at_kw("INSERT") {
            self.advance();
            self.expect_kw("INTO")?;
            self.eat_kw("TABLE");
            let table = self.parse_object_name()?;
            let columns = if self.peek() == &Token::LParen {
                Some(self.parse_ident_list()?)
            } else {
                None
            };
            self.expect_kw("SELECT")?;
            let mut projection = Vec::new();
            loop {
                projection.push(self.parse_select_item()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
            let filter = if self.eat_kw("WHERE") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            inserts.push(MultiInsertLeg {
                table,
                columns,
                projection,
                filter,
            });
        }
        if inserts.is_empty() {
            return self.error("multi-insert requires at least one INSERT leg");
        }
        Ok(Statement::MultiInsert(MultiInsert { source, inserts }))
    }

    fn parse_update(&mut self) -> Result<Statement> {
        self.expect_kw("UPDATE")?;
        let table = self.parse_object_name()?;
        self.expect_kw("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.parse_ident()?;
            self.expect(&Token::Eq)?;
            assignments.push((col, self.parse_expr()?));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Update(Update {
            table,
            assignments,
            filter,
        }))
    }

    fn parse_delete(&mut self) -> Result<Statement> {
        self.expect_kw("DELETE")?;
        self.expect_kw("FROM")?;
        let table = self.parse_object_name()?;
        let filter = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Statement::Delete(Delete { table, filter }))
    }

    fn parse_merge(&mut self) -> Result<Statement> {
        self.expect_kw("MERGE")?;
        self.expect_kw("INTO")?;
        let target = self.parse_object_name()?;
        let target_alias = self.parse_opt_alias()?;
        self.expect_kw("USING")?;
        let source = self.parse_table_primary()?;
        self.expect_kw("ON")?;
        let on = self.parse_expr()?;
        let mut when_matched_update = None;
        let mut when_matched_delete = None;
        let mut when_not_matched_insert = None;
        while self.at_kw("WHEN") {
            self.advance();
            if self.eat_kw("MATCHED") {
                let condition = if self.eat_kw("AND") {
                    Some(self.parse_expr()?)
                } else {
                    None
                };
                self.expect_kw("THEN")?;
                if self.eat_kw("UPDATE") {
                    self.expect_kw("SET")?;
                    let mut assignments = Vec::new();
                    loop {
                        let col = self.parse_ident()?;
                        self.expect(&Token::Eq)?;
                        assignments.push((col, self.parse_expr()?));
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    when_matched_update = Some(MergeUpdate {
                        condition,
                        assignments,
                    });
                } else if self.eat_kw("DELETE") {
                    when_matched_delete = Some(condition);
                } else {
                    return self.error("expected UPDATE or DELETE after WHEN MATCHED THEN");
                }
            } else if self.eat_kw("NOT") {
                self.expect_kw("MATCHED")?;
                self.expect_kw("THEN")?;
                self.expect_kw("INSERT")?;
                let columns = if self.peek() == &Token::LParen && !self.at_kw_at(1, "VALUES") {
                    // Peek deeper: `INSERT VALUES (...)` vs `INSERT (cols) VALUES`.
                    Some(self.parse_ident_list()?)
                } else {
                    None
                };
                self.expect_kw("VALUES")?;
                self.expect(&Token::LParen)?;
                let mut values = Vec::new();
                loop {
                    values.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                when_not_matched_insert = Some(MergeInsert { columns, values });
            } else {
                return self.error("expected MATCHED or NOT MATCHED");
            }
        }
        Ok(Statement::Merge(Merge {
            target,
            target_alias,
            source,
            on,
            when_matched_update,
            when_matched_delete,
            when_not_matched_insert,
        }))
    }

    fn parse_ident_list(&mut self) -> Result<Vec<String>> {
        self.expect(&Token::LParen)?;
        let mut out = Vec::new();
        loop {
            out.push(self.parse_ident()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(out)
    }

    fn parse_properties(&mut self) -> Result<Vec<(String, String)>> {
        self.expect(&Token::LParen)?;
        let mut out = Vec::new();
        loop {
            let k = self.parse_string_lit()?;
            self.expect(&Token::Eq)?;
            let v = self.parse_string_lit()?;
            out.push((k, v));
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(out)
    }

    fn parse_string_lit(&mut self) -> Result<String> {
        match self.advance() {
            Token::StringLit(s) => Ok(s),
            other => Err(HiveError::Parse(format!(
                "expected string literal, found '{other}'"
            ))),
        }
    }

    fn parse_column_def(&mut self) -> Result<ColumnDef> {
        let name = self.parse_ident()?;
        let data_type = self.parse_data_type()?;
        let mut not_null = false;
        if self.at_kw("NOT") && self.at_kw_at(1, "NULL") {
            self.advance();
            self.advance();
            not_null = true;
        }
        Ok(ColumnDef {
            name,
            data_type,
            not_null,
        })
    }

    fn parse_data_type(&mut self) -> Result<DataType> {
        let word = self.parse_ident()?;
        let dt = match word.as_str() {
            "int" | "integer" | "smallint" | "tinyint" => DataType::Int,
            "bigint" | "long" => DataType::BigInt,
            "double" => {
                self.eat_kw("PRECISION");
                DataType::Double
            }
            "float" | "real" => DataType::Double,
            "string" | "text" => DataType::String,
            "varchar" | "char" => {
                if self.eat(&Token::LParen) {
                    self.advance(); // length
                    self.expect(&Token::RParen)?;
                }
                DataType::String
            }
            "boolean" | "bool" => DataType::Boolean,
            "date" => DataType::Date,
            "timestamp" => DataType::Timestamp,
            "decimal" | "numeric" => {
                let (mut p, mut s) = (10u8, 0u8);
                if self.eat(&Token::LParen) {
                    if let Token::Integer(v) = self.advance() {
                        p = v as u8;
                    } else {
                        return self.error("expected precision");
                    }
                    if self.eat(&Token::Comma) {
                        if let Token::Integer(v) = self.advance() {
                            s = v as u8;
                        } else {
                            return self.error("expected scale");
                        }
                    }
                    self.expect(&Token::RParen)?;
                }
                DataType::Decimal(p, s)
            }
            other => {
                return Err(HiveError::Parse(format!("unknown data type '{other}'")));
            }
        };
        Ok(dt)
    }

    // ---- queries ---------------------------------------------------------

    fn parse_query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.eat_kw("WITH") {
            loop {
                let name = self.parse_ident()?;
                self.expect_kw("AS")?;
                self.expect(&Token::LParen)?;
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                ctes.push((name, q));
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_query_body()?;
        let mut order_by = Vec::new();
        if self.at_kw("ORDER") {
            self.advance();
            self.expect_kw("BY")?;
            loop {
                order_by.push(self.parse_order_item()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("LIMIT") {
            match self.advance() {
                Token::Integer(v) => Some(v as u64),
                other => {
                    return Err(HiveError::Parse(format!(
                        "expected LIMIT count, found '{other}'"
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
        })
    }

    fn parse_order_item(&mut self) -> Result<OrderItem> {
        let expr = self.parse_expr()?;
        let asc = if self.eat_kw("DESC") {
            false
        } else {
            self.eat_kw("ASC");
            true
        };
        let nulls_first = if self.eat_kw("NULLS") {
            if self.eat_kw("FIRST") {
                Some(true)
            } else {
                self.expect_kw("LAST")?;
                Some(false)
            }
        } else {
            None
        };
        Ok(OrderItem {
            expr,
            asc,
            nulls_first,
        })
    }

    /// Set-operation precedence: INTERSECT binds tighter than
    /// UNION/EXCEPT; same-level operators associate left.
    fn parse_query_body(&mut self) -> Result<QueryBody> {
        let mut left = self.parse_query_body_intersect()?;
        loop {
            let op = if self.at_kw("UNION") {
                SetOperator::Union
            } else if self.at_kw("EXCEPT") || self.at_kw("MINUS") {
                SetOperator::Except
            } else {
                break;
            };
            self.advance();
            let all = self.eat_kw("ALL");
            if !all {
                self.eat_kw("DISTINCT");
            }
            let right = self.parse_query_body_intersect()?;
            left = QueryBody::SetOp {
                op,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_query_body_intersect(&mut self) -> Result<QueryBody> {
        let mut left = self.parse_query_primary()?;
        while self.at_kw("INTERSECT") {
            self.advance();
            let all = self.eat_kw("ALL");
            if !all {
                self.eat_kw("DISTINCT");
            }
            let right = self.parse_query_primary()?;
            left = QueryBody::SetOp {
                op: SetOperator::Intersect,
                all,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_query_primary(&mut self) -> Result<QueryBody> {
        if self.eat(&Token::LParen) {
            let q = self.parse_query()?;
            self.expect(&Token::RParen)?;
            // A parenthesized query with its own ORDER BY/LIMIT/CTEs must
            // stay a subquery; a bare body unwraps.
            if q.ctes.is_empty() && q.order_by.is_empty() && q.limit.is_none() {
                return Ok(q.body);
            }
            // Wrap as SELECT * FROM (q) sub.
            return Ok(QueryBody::Select(Box::new(Select {
                distinct: false,
                projection: vec![SelectItem::Wildcard],
                from: vec![TableRef::Subquery {
                    query: Box::new(q),
                    alias: "__paren".into(),
                }],
                selection: None,
                group_by: Vec::new(),
                grouping_sets: None,
                having: None,
            })));
        }
        Ok(QueryBody::Select(Box::new(self.parse_select()?)))
    }

    fn parse_select(&mut self) -> Result<Select> {
        self.expect_kw("SELECT")?;
        let distinct = if self.eat_kw("DISTINCT") {
            true
        } else {
            self.eat_kw("ALL");
            false
        };
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("FROM") {
            loop {
                from.push(self.parse_table_ref()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        let selection = if self.eat_kw("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        let mut grouping_sets = None;
        if self.at_kw("GROUP") {
            self.advance();
            self.expect_kw("BY")?;
            if self.at_kw("ROLLUP") || self.at_kw("CUBE") {
                let is_rollup = self.at_kw("ROLLUP");
                self.advance();
                self.expect(&Token::LParen)?;
                loop {
                    group_by.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                let n = group_by.len();
                let sets = if is_rollup {
                    // (a,b,c), (a,b), (a), ()
                    (0..=n).rev().map(|k| (0..k).collect()).collect()
                } else {
                    // All subsets.
                    (0..(1usize << n))
                        .map(|mask| (0..n).filter(|i| mask >> i & 1 == 1).collect())
                        .collect()
                };
                grouping_sets = Some(sets);
            } else if self.at_kw("GROUPING") {
                self.advance();
                self.expect_kw("SETS")?;
                grouping_sets = Some(self.parse_grouping_sets(&mut group_by)?);
            } else {
                loop {
                    group_by.push(self.parse_expr()?);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
                if self.at_kw("GROUPING") {
                    self.advance();
                    self.expect_kw("SETS")?;
                    grouping_sets = Some(self.parse_grouping_sets(&mut group_by)?);
                }
            }
        }
        let having = if self.eat_kw("HAVING") {
            Some(self.parse_expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            grouping_sets,
            having,
        })
    }

    fn parse_grouping_sets(&mut self, group_by: &mut Vec<Expr>) -> Result<Vec<Vec<usize>>> {
        self.expect(&Token::LParen)?;
        let mut sets = Vec::new();
        loop {
            self.expect(&Token::LParen)?;
            let mut set = Vec::new();
            if self.peek() != &Token::RParen {
                loop {
                    let e = self.parse_expr()?;
                    let idx = match group_by.iter().position(|g| *g == e) {
                        Some(i) => i,
                        None => {
                            group_by.push(e);
                            group_by.len() - 1
                        }
                    };
                    set.push(idx);
                    if !self.eat(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            sets.push(set);
            if !self.eat(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(sets)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem> {
        if self.peek() == &Token::Star {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if matches!(self.peek(), Token::Word(_))
            && self.peek_at(1) == &Token::Dot
            && self.peek_at(2) == &Token::Star
        {
            let q = self.parse_ident()?;
            self.advance(); // .
            self.advance(); // *
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.parse_expr()?;
        let alias = if self.eat_kw("AS") {
            Some(self.parse_ident()?)
        } else if let Token::Word(w) = self.peek() {
            // Implicit alias unless it is a structural keyword.
            if is_structural_keyword(w) {
                None
            } else {
                Some(self.parse_ident()?)
            }
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    // ---- table references --------------------------------------------------

    fn parse_table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.parse_table_primary()?;
        loop {
            let kind = if self.at_kw("JOIN") || self.at_kw("INNER") {
                self.eat_kw("INNER");
                self.expect_kw("JOIN")?;
                JoinKind::Inner
            } else if self.at_kw("LEFT") {
                self.advance();
                if self.eat_kw("SEMI") {
                    self.expect_kw("JOIN")?;
                    JoinKind::LeftSemi
                } else {
                    self.eat_kw("OUTER");
                    self.expect_kw("JOIN")?;
                    JoinKind::Left
                }
            } else if self.at_kw("RIGHT") {
                self.advance();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Right
            } else if self.at_kw("FULL") {
                self.advance();
                self.eat_kw("OUTER");
                self.expect_kw("JOIN")?;
                JoinKind::Full
            } else if self.at_kw("CROSS") {
                self.advance();
                self.expect_kw("JOIN")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.parse_table_primary()?;
            let on = if kind != JoinKind::Cross && self.eat_kw("ON") {
                Some(self.parse_expr()?)
            } else {
                None
            };
            left = TableRef::Join {
                left: Box::new(left),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(left)
    }

    fn parse_table_primary(&mut self) -> Result<TableRef> {
        if self.eat(&Token::LParen) {
            // Either a subquery or a parenthesized join tree.
            if self.at_kw("SELECT") || self.at_kw("WITH") || self.peek() == &Token::LParen {
                let q = self.parse_query()?;
                self.expect(&Token::RParen)?;
                self.eat_kw("AS");
                let alias = self.parse_ident()?;
                return Ok(TableRef::Subquery {
                    query: Box::new(q),
                    alias,
                });
            }
            let t = self.parse_table_ref()?;
            self.expect(&Token::RParen)?;
            return Ok(t);
        }
        let name = self.parse_object_name()?;
        let alias = self.parse_opt_alias()?;
        Ok(TableRef::Table { name, alias })
    }

    fn parse_opt_alias(&mut self) -> Result<Option<String>> {
        if self.eat_kw("AS") {
            return Ok(Some(self.parse_ident()?));
        }
        if let Token::Word(w) = self.peek() {
            if !is_structural_keyword(w) {
                return Ok(Some(self.parse_ident()?));
            }
        }
        Ok(None)
    }

    // ---- expressions -------------------------------------------------------

    /// Public entry: lowest precedence (OR).
    pub fn parse_expr(&mut self) -> Result<Expr> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr> {
        let mut left = self.parse_and()?;
        while self.eat_kw("OR") {
            let right = self.parse_and()?;
            left = Expr::BinaryOp {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr> {
        let mut left = self.parse_not()?;
        while self.eat_kw("AND") {
            let right = self.parse_not()?;
            left = Expr::BinaryOp {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_not(&mut self) -> Result<Expr> {
        if self.at_kw("NOT") && !self.at_kw_at(1, "EXISTS") {
            self.advance();
            return Ok(Expr::Not(Box::new(self.parse_not()?)));
        }
        self.parse_predicate()
    }

    fn parse_predicate(&mut self) -> Result<Expr> {
        if self.at_kw("EXISTS") || (self.at_kw("NOT") && self.at_kw_at(1, "EXISTS")) {
            let negated = self.eat_kw("NOT");
            self.expect_kw("EXISTS")?;
            self.expect(&Token::LParen)?;
            let q = self.parse_query()?;
            self.expect(&Token::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(q),
                negated,
            });
        }
        let mut left = self.parse_additive()?;
        loop {
            // IS [NOT] NULL
            if self.at_kw("IS") {
                self.advance();
                let negated = self.eat_kw("NOT");
                self.expect_kw("NULL")?;
                left = Expr::IsNull {
                    expr: Box::new(left),
                    negated,
                };
                continue;
            }
            let negated = if self.at_kw("NOT")
                && (self.at_kw_at(1, "BETWEEN")
                    || self.at_kw_at(1, "IN")
                    || self.at_kw_at(1, "LIKE"))
            {
                self.advance();
                true
            } else {
                false
            };
            if self.eat_kw("BETWEEN") {
                let low = self.parse_additive()?;
                self.expect_kw("AND")?;
                let high = self.parse_additive()?;
                left = Expr::Between {
                    expr: Box::new(left),
                    low: Box::new(low),
                    high: Box::new(high),
                    negated,
                };
                continue;
            }
            if self.eat_kw("IN") {
                self.expect(&Token::LParen)?;
                if self.at_kw("SELECT") || self.at_kw("WITH") {
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    left = Expr::InSubquery {
                        expr: Box::new(left),
                        query: Box::new(q),
                        negated,
                    };
                } else {
                    let mut list = Vec::new();
                    loop {
                        list.push(self.parse_expr()?);
                        if !self.eat(&Token::Comma) {
                            break;
                        }
                    }
                    self.expect(&Token::RParen)?;
                    left = Expr::InList {
                        expr: Box::new(left),
                        list,
                        negated,
                    };
                }
                continue;
            }
            if self.eat_kw("LIKE") {
                let pattern = self.parse_additive()?;
                left = Expr::Like {
                    expr: Box::new(left),
                    pattern: Box::new(pattern),
                    negated,
                };
                continue;
            }
            if negated {
                return self.error("expected BETWEEN, IN, or LIKE after NOT");
            }
            // Comparisons.
            let op = match self.peek() {
                Token::Eq => BinaryOp::Eq,
                Token::NotEq => BinaryOp::NotEq,
                Token::Lt => BinaryOp::Lt,
                Token::LtEq => BinaryOp::LtEq,
                Token::Gt => BinaryOp::Gt,
                Token::GtEq => BinaryOp::GtEq,
                _ => break,
            };
            self.advance();
            let right = self.parse_additive()?;
            left = Expr::BinaryOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr> {
        let mut left = self.parse_multiplicative()?;
        loop {
            let op = match self.peek() {
                Token::Plus => BinaryOp::Plus,
                Token::Minus => BinaryOp::Minus,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            left = Expr::BinaryOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                Token::Star => BinaryOp::Multiply,
                Token::Slash => BinaryOp::Divide,
                Token::Percent => BinaryOp::Modulo,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::BinaryOp {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        if self.eat(&Token::Minus) {
            return Ok(Expr::Negate(Box::new(self.parse_unary()?)));
        }
        if self.eat(&Token::Plus) {
            return self.parse_unary();
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Token::Integer(v) => {
                self.advance();
                if v >= i32::MIN as i128 && v <= i32::MAX as i128 {
                    Ok(Expr::Literal(Value::Int(v as i32)))
                } else {
                    Ok(Expr::Literal(Value::BigInt(v as i64)))
                }
            }
            Token::Number(text) => {
                self.advance();
                if text.contains(['e', 'E']) {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| HiveError::Parse(format!("bad number {text}")))?;
                    Ok(Expr::Literal(Value::Double(v)))
                } else {
                    let scale = text
                        .split_once('.')
                        .map(|(_, f)| f.len().min(18) as u8)
                        .unwrap_or(0);
                    let unscaled = value::parse_decimal(&text, scale)
                        .ok_or_else(|| HiveError::Parse(format!("bad decimal {text}")))?;
                    Ok(Expr::Literal(Value::Decimal(unscaled, scale)))
                }
            }
            Token::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Value::String(s)))
            }
            Token::LParen => {
                self.advance();
                if self.at_kw("SELECT") || self.at_kw("WITH") {
                    let q = self.parse_query()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Word(w) => self.parse_word_expr(&w),
            Token::QuotedIdent(_) => {
                let name = self.parse_ident()?;
                self.parse_column_tail(name)
            }
            other => Err(HiveError::Parse(format!(
                "unexpected token '{other}' in expression"
            ))),
        }
    }

    fn parse_word_expr(&mut self, w: &str) -> Result<Expr> {
        let upper = w.to_ascii_uppercase();
        match upper.as_str() {
            "NULL" => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            "TRUE" => {
                self.advance();
                Ok(Expr::Literal(Value::Boolean(true)))
            }
            "FALSE" => {
                self.advance();
                Ok(Expr::Literal(Value::Boolean(false)))
            }
            "DATE" if matches!(self.peek_at(1), Token::StringLit(_)) => {
                self.advance();
                let s = self.parse_string_lit()?;
                let d = hive_common::dates::parse_date(&s)
                    .ok_or_else(|| HiveError::Parse(format!("bad date literal '{s}'")))?;
                Ok(Expr::Literal(Value::Date(d)))
            }
            "TIMESTAMP" if matches!(self.peek_at(1), Token::StringLit(_)) => {
                self.advance();
                let s = self.parse_string_lit()?;
                let t = hive_common::dates::parse_timestamp(&s)
                    .ok_or_else(|| HiveError::Parse(format!("bad timestamp literal '{s}'")))?;
                Ok(Expr::Literal(Value::Timestamp(t)))
            }
            "INTERVAL" => {
                self.advance();
                let n = match self.advance() {
                    Token::Integer(v) => v as i64,
                    Token::StringLit(s) => s
                        .trim()
                        .parse()
                        .map_err(|_| HiveError::Parse(format!("bad interval quantity '{s}'")))?,
                    other => {
                        return Err(HiveError::Parse(format!(
                            "expected interval quantity, found '{other}'"
                        )))
                    }
                };
                let unit = self.parse_ident()?;
                let func = match unit.as_str() {
                    "day" | "days" => "__interval_day",
                    "month" | "months" => "__interval_month",
                    "year" | "years" => "__interval_year",
                    other => {
                        return Err(HiveError::Parse(format!("unknown interval unit '{other}'")))
                    }
                };
                Ok(Expr::Function {
                    name: func.into(),
                    args: vec![Expr::Literal(Value::BigInt(n))],
                    distinct: false,
                })
            }
            "CASE" => {
                self.advance();
                let operand = if !self.at_kw("WHEN") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                let mut branches = Vec::new();
                while self.eat_kw("WHEN") {
                    let cond = self.parse_expr()?;
                    self.expect_kw("THEN")?;
                    let val = self.parse_expr()?;
                    branches.push((cond, val));
                }
                let else_expr = if self.eat_kw("ELSE") {
                    Some(Box::new(self.parse_expr()?))
                } else {
                    None
                };
                self.expect_kw("END")?;
                Ok(Expr::Case {
                    operand,
                    branches,
                    else_expr,
                })
            }
            "CAST" => {
                self.advance();
                self.expect(&Token::LParen)?;
                let e = self.parse_expr()?;
                self.expect_kw("AS")?;
                let dt = self.parse_data_type()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(e),
                    to: dt,
                })
            }
            "EXTRACT" => {
                self.advance();
                self.expect(&Token::LParen)?;
                let field_name = self.parse_ident()?;
                let field = match field_name.as_str() {
                    "year" => DateField::Year,
                    "quarter" => DateField::Quarter,
                    "month" => DateField::Month,
                    "day" => DateField::Day,
                    "dow" | "dayofweek" => DateField::DayOfWeek,
                    "hour" => DateField::Hour,
                    "minute" => DateField::Minute,
                    "second" => DateField::Second,
                    other => {
                        return Err(HiveError::Parse(format!("unknown EXTRACT field '{other}'")))
                    }
                };
                self.expect_kw("FROM")?;
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Extract {
                    field,
                    expr: Box::new(e),
                })
            }
            _ => {
                // Function call or column reference.
                if self.peek_at(1) == &Token::LParen {
                    let name = self.parse_ident()?;
                    self.advance(); // (
                    let distinct = self.eat_kw("DISTINCT");
                    let mut args = Vec::new();
                    if self.peek() == &Token::Star {
                        // COUNT(*)
                        self.advance();
                    } else if self.peek() != &Token::RParen {
                        loop {
                            args.push(self.parse_expr()?);
                            if !self.eat(&Token::Comma) {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    if self.at_kw("OVER") {
                        self.advance();
                        return self.parse_over(name, args);
                    }
                    return Ok(Expr::Function {
                        name,
                        args,
                        distinct,
                    });
                }
                let name = self.parse_ident()?;
                self.parse_column_tail(name)
            }
        }
    }

    fn parse_column_tail(&mut self, first: String) -> Result<Expr> {
        if self.peek() == &Token::Dot
            && matches!(self.peek_at(1), Token::Word(_) | Token::QuotedIdent(_))
        {
            self.advance();
            let name = self.parse_ident()?;
            Ok(Expr::Column {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(Expr::Column {
                qualifier: None,
                name: first,
            })
        }
    }

    fn parse_over(&mut self, func: String, args: Vec<Expr>) -> Result<Expr> {
        self.expect(&Token::LParen)?;
        let mut partition_by = Vec::new();
        let mut order_by = Vec::new();
        let mut frame = None;
        if self.at_kw("PARTITION") {
            self.advance();
            self.expect_kw("BY")?;
            loop {
                partition_by.push(self.parse_expr()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.at_kw("ORDER") {
            self.advance();
            self.expect_kw("BY")?;
            loop {
                order_by.push(self.parse_order_item()?);
                if !self.eat(&Token::Comma) {
                    break;
                }
            }
        }
        if self.at_kw("ROWS") {
            self.advance();
            self.expect_kw("BETWEEN")?;
            let start = self.parse_frame_bound()?;
            self.expect_kw("AND")?;
            let end = self.parse_frame_bound()?;
            frame = Some(WindowFrame { start, end });
        }
        self.expect(&Token::RParen)?;
        Ok(Expr::Window {
            func,
            args,
            partition_by,
            order_by,
            frame,
        })
    }

    fn parse_frame_bound(&mut self) -> Result<FrameBound> {
        if self.eat_kw("UNBOUNDED") {
            if self.eat_kw("PRECEDING") {
                return Ok(FrameBound::UnboundedPreceding);
            }
            self.expect_kw("FOLLOWING")?;
            return Ok(FrameBound::UnboundedFollowing);
        }
        if self.eat_kw("CURRENT") {
            self.expect_kw("ROW")?;
            return Ok(FrameBound::CurrentRow);
        }
        match self.advance() {
            Token::Integer(v) => {
                if self.eat_kw("PRECEDING") {
                    Ok(FrameBound::Preceding(v as u64))
                } else {
                    self.expect_kw("FOLLOWING")?;
                    Ok(FrameBound::Following(v as u64))
                }
            }
            other => Err(HiveError::Parse(format!(
                "expected frame bound, found '{other}'"
            ))),
        }
    }
}

/// Keywords that terminate an implicit alias position.
fn is_structural_keyword(w: &str) -> bool {
    const KW: &[&str] = &[
        "SELECT",
        "FROM",
        "WHERE",
        "GROUP",
        "HAVING",
        "ORDER",
        "LIMIT",
        "UNION",
        "INTERSECT",
        "EXCEPT",
        "MINUS",
        "JOIN",
        "INNER",
        "LEFT",
        "RIGHT",
        "FULL",
        "CROSS",
        "ON",
        "AND",
        "OR",
        "NOT",
        "AS",
        "WHEN",
        "THEN",
        "ELSE",
        "END",
        "USING",
        "SET",
        "VALUES",
        "INSERT",
        "UPDATE",
        "DELETE",
        "MERGE",
        "INTO",
        "BY",
        "ASC",
        "DESC",
        "NULLS",
        "BETWEEN",
        "IN",
        "LIKE",
        "IS",
        "EXISTS",
        "CASE",
        "DISTINCT",
        "ALL",
        "PARTITION",
        "OVER",
        "ROWS",
        "WITH",
        "SEMI",
        "GROUPING",
        "STORED",
        "TBLPROPERTIES",
        "PARTITIONED",
    ];
    KW.iter().any(|k| w.eq_ignore_ascii_case(k))
}
