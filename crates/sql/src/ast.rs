//! The abstract syntax tree produced by the parser.

use hive_common::{DataType, Value};
use std::fmt;

/// A top-level SQL statement.
///
/// The `Merge` payload is much larger than the other variants; statements are
/// parsed once and never stored in bulk, so the size skew is harmless.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A SELECT query (possibly with set operations).
    Query(Query),
    CreateDatabase {
        name: String,
        if_not_exists: bool,
    },
    DropDatabase {
        name: String,
        if_exists: bool,
    },
    Use(String),
    CreateTable(CreateTable),
    DropTable {
        name: ObjectName,
        if_exists: bool,
    },
    CreateMaterializedView(CreateMaterializedView),
    DropMaterializedView {
        name: ObjectName,
        if_exists: bool,
    },
    /// `ALTER MATERIALIZED VIEW name REBUILD`
    AlterMaterializedViewRebuild {
        name: ObjectName,
    },
    Insert(Insert),
    MultiInsert(MultiInsert),
    Update(Update),
    Delete(Delete),
    Merge(Merge),
    /// `EXPLAIN <statement>`
    Explain(Box<Statement>),
    /// `ANALYZE TABLE name COMPUTE STATISTICS`
    AnalyzeTable {
        name: ObjectName,
    },
    /// `ALTER TABLE name COMPACT 'minor'|'major'`
    AlterTableCompact {
        name: ObjectName,
        major: bool,
    },
    ShowTables,
    ShowCompactions,
    ShowTransactions,
    /// `SHOW PARTITIONS t`
    ShowPartitions {
        name: ObjectName,
    },
    /// `DESCRIBE [EXTENDED] t`
    Describe {
        name: ObjectName,
        extended: bool,
    },
}

/// A possibly-qualified object name (`db.table` or `table`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ObjectName {
    pub db: Option<String>,
    pub name: String,
}

impl ObjectName {
    /// Unqualified name.
    pub fn bare(name: impl Into<String>) -> Self {
        ObjectName {
            db: None,
            name: name.into().to_ascii_lowercase(),
        }
    }

    /// Qualified name.
    pub fn qualified(db: impl Into<String>, name: impl Into<String>) -> Self {
        ObjectName {
            db: Some(db.into().to_ascii_lowercase()),
            name: name.into().to_ascii_lowercase(),
        }
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.db {
            Some(d) => write!(f, "{d}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A column definition in DDL.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub not_null: bool,
}

/// Table-level constraints in DDL.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraintDef {
    PrimaryKey(Vec<String>),
    ForeignKey {
        columns: Vec<String>,
        ref_table: ObjectName,
        ref_columns: Vec<String>,
    },
    Unique(Vec<String>),
}

/// `CREATE [EXTERNAL] TABLE ...`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: ObjectName,
    pub if_not_exists: bool,
    pub external: bool,
    pub columns: Vec<ColumnDef>,
    pub constraints: Vec<TableConstraintDef>,
    /// `PARTITIONED BY (col type, ...)`
    pub partitioned_by: Vec<ColumnDef>,
    /// `STORED BY 'handler'`
    pub stored_by: Option<String>,
    /// `TBLPROPERTIES ('k' = 'v', ...)`
    pub properties: Vec<(String, String)>,
    /// `AS SELECT ...` (CTAS)
    pub as_query: Option<Query>,
}

/// `CREATE MATERIALIZED VIEW ... AS SELECT ...`
#[derive(Debug, Clone, PartialEq)]
pub struct CreateMaterializedView {
    pub name: ObjectName,
    pub if_not_exists: bool,
    pub stored_by: Option<String>,
    pub properties: Vec<(String, String)>,
    pub query: Query,
}

/// `INSERT INTO t [(cols)] VALUES ... | SELECT ...`
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: ObjectName,
    pub columns: Option<Vec<String>>,
    pub source: InsertSource,
    pub overwrite: bool,
}

/// The data source of an INSERT.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Query),
}

/// Hive's multi-insert statement (paper §3.2: "it is possible to write
/// to multiple tables within a single transaction using Hive
/// multi-insert statements"):
///
/// ```sql
/// FROM src
/// INSERT INTO t1 SELECT a, b WHERE a > 0
/// INSERT INTO t2 SELECT a, c WHERE a <= 0
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiInsert {
    /// The shared source relation.
    pub source: TableRef,
    /// The insert legs, applied within one transaction.
    pub inserts: Vec<MultiInsertLeg>,
}

/// One leg of a multi-insert.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiInsertLeg {
    pub table: ObjectName,
    pub columns: Option<Vec<String>>,
    pub projection: Vec<SelectItem>,
    pub filter: Option<Expr>,
}

/// `UPDATE t SET c = e, ... [WHERE p]`
#[derive(Debug, Clone, PartialEq)]
pub struct Update {
    pub table: ObjectName,
    pub assignments: Vec<(String, Expr)>,
    pub filter: Option<Expr>,
}

/// `DELETE FROM t [WHERE p]`
#[derive(Debug, Clone, PartialEq)]
pub struct Delete {
    pub table: ObjectName,
    pub filter: Option<Expr>,
}

/// `MERGE INTO target USING source ON cond WHEN ...`
#[derive(Debug, Clone, PartialEq)]
pub struct Merge {
    pub target: ObjectName,
    pub target_alias: Option<String>,
    pub source: TableRef,
    pub on: Expr,
    /// `WHEN MATCHED [AND p] THEN UPDATE SET ...`
    pub when_matched_update: Option<MergeUpdate>,
    /// `WHEN MATCHED [AND p] THEN DELETE`
    pub when_matched_delete: Option<Option<Expr>>,
    /// `WHEN NOT MATCHED THEN INSERT [cols] VALUES (...)`
    pub when_not_matched_insert: Option<MergeInsert>,
}

/// The UPDATE arm of a MERGE.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeUpdate {
    pub condition: Option<Expr>,
    pub assignments: Vec<(String, Expr)>,
}

/// The INSERT arm of a MERGE.
#[derive(Debug, Clone, PartialEq)]
pub struct MergeInsert {
    pub columns: Option<Vec<String>>,
    pub values: Vec<Expr>,
}

/// A full query: optional CTEs, body, ORDER BY / LIMIT.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `WITH name AS (query), ...` — inlined by the analyzer.
    pub ctes: Vec<(String, Query)>,
    pub body: QueryBody,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<u64>,
}

impl Query {
    /// A bare query around a body.
    pub fn simple(body: QueryBody) -> Self {
        Query {
            ctes: Vec::new(),
            body,
            order_by: Vec::new(),
            limit: None,
        }
    }
}

/// Query body: a SELECT or a set operation tree.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryBody {
    Select(Box<Select>),
    SetOp {
        op: SetOperator,
        all: bool,
        left: Box<QueryBody>,
        right: Box<QueryBody>,
    },
}

/// UNION / INTERSECT / EXCEPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOperator {
    Union,
    Intersect,
    Except,
}

/// The SELECT core.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    /// Explicit grouping sets (each set lists indexes into `group_by`).
    /// `None` means plain GROUP BY over all `group_by` expressions.
    pub grouping_sets: Option<Vec<Vec<usize>>>,
    pub having: Option<Expr>,
}

/// One SELECT-list item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// Expression with optional alias.
    Expr { expr: Expr, alias: Option<String> },
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
}

/// A FROM-clause table reference.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    Table {
        name: ObjectName,
        alias: Option<String>,
    },
    Subquery {
        query: Box<Query>,
        alias: String,
    },
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
    },
}

/// Join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Right,
    Full,
    Cross,
    LeftSemi,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub asc: bool,
    /// `None` = dialect default (NULLS LAST for ASC, FIRST for DESC).
    pub nulls_first: Option<bool>,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Plus,
    Minus,
    Multiply,
    Divide,
    Modulo,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl BinaryOp {
    /// Is this a comparison operator?
    pub fn is_comparison(&self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Plus => "+",
            BinaryOp::Minus => "-",
            BinaryOp::Multiply => "*",
            BinaryOp::Divide => "/",
            BinaryOp::Modulo => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
        };
        write!(f, "{s}")
    }
}

/// Window frame bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameBound {
    UnboundedPreceding,
    Preceding(u64),
    CurrentRow,
    Following(u64),
    UnboundedFollowing,
}

/// A `ROWS BETWEEN ... AND ...` frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowFrame {
    pub start: FrameBound,
    pub end: FrameBound,
}

/// Scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Literal(Value),
    /// Column reference, optionally qualified by table alias.
    Column {
        qualifier: Option<String>,
        name: String,
    },
    BinaryOp {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
    },
    Not(Box<Expr>),
    Negate(Box<Expr>),
    IsNull {
        expr: Box<Expr>,
        negated: bool,
    },
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
    },
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
    },
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
    },
    Exists {
        query: Box<Query>,
        negated: bool,
    },
    ScalarSubquery(Box<Query>),
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
    },
    Cast {
        expr: Box<Expr>,
        to: DataType,
    },
    /// `EXTRACT(field FROM e)`
    Extract {
        field: hive_common::dates::DateField,
        expr: Box<Expr>,
    },
    /// Ordinary or aggregate function call; the analyzer decides which.
    Function {
        name: String,
        args: Vec<Expr>,
        distinct: bool,
    },
    /// `func(args) OVER (PARTITION BY ... ORDER BY ... [frame])`
    Window {
        func: String,
        args: Vec<Expr>,
        partition_by: Vec<Expr>,
        order_by: Vec<OrderItem>,
        frame: Option<WindowFrame>,
    },
}

impl Expr {
    /// Shorthand column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.to_ascii_lowercase(),
        }
    }

    /// Shorthand qualified column reference.
    pub fn qcol(q: &str, name: &str) -> Expr {
        Expr::Column {
            qualifier: Some(q.to_ascii_lowercase()),
            name: name.to_ascii_lowercase(),
        }
    }

    /// Shorthand literal.
    pub fn lit(v: Value) -> Expr {
        Expr::Literal(v)
    }

    /// Build `self AND other` (or pass-through when one side is empty).
    pub fn and(self, other: Expr) -> Expr {
        Expr::BinaryOp {
            left: Box::new(self),
            op: BinaryOp::And,
            right: Box::new(other),
        }
    }

    /// Combine optional predicates with AND.
    pub fn and_opt(a: Option<Expr>, b: Option<Expr>) -> Option<Expr> {
        match (a, b) {
            (Some(a), Some(b)) => Some(a.and(b)),
            (x, None) | (None, x) => x,
        }
    }

    /// Walk the expression tree, visiting every node.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::BinaryOp { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            Expr::Not(e) | Expr::Negate(e) => e.visit(f),
            Expr::IsNull { expr, .. } => expr.visit(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.visit(f);
                low.visit(f);
                high.visit(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            Expr::InSubquery { expr, .. } => expr.visit(f),
            Expr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.visit(f);
                }
                for (c, r) in branches {
                    c.visit(f);
                    r.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            Expr::Cast { expr, .. } | Expr::Extract { expr, .. } => expr.visit(f),
            Expr::Function { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            Expr::Window {
                args,
                partition_by,
                order_by,
                ..
            } => {
                for a in args {
                    a.visit(f);
                }
                for p in partition_by {
                    p.visit(f);
                }
                for o in order_by {
                    o.expr.visit(f);
                }
            }
            Expr::Literal(_)
            | Expr::Column { .. }
            | Expr::Exists { .. }
            | Expr::ScalarSubquery(_) => {}
        }
    }

    /// Does the tree contain any subquery expression?
    pub fn contains_subquery(&self) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if matches!(
                e,
                Expr::InSubquery { .. } | Expr::Exists { .. } | Expr::ScalarSubquery(_)
            ) {
                found = true;
            }
        });
        found
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => match v {
                Value::String(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            Expr::Column { qualifier, name } => match qualifier {
                Some(q) => write!(f, "{q}.{name}"),
                None => write!(f, "{name}"),
            },
            Expr::BinaryOp { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::Negate(e) => write!(f, "-({e})"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => write!(
                f,
                "{expr} {}BETWEEN {low} AND {high}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery { expr, negated, .. } => write!(
                f,
                "{expr} {}IN (<subquery>)",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Exists { negated, .. } => {
                write!(
                    f,
                    "{}EXISTS (<subquery>)",
                    if *negated { "NOT " } else { "" }
                )
            }
            Expr::ScalarSubquery(_) => write!(f, "(<scalar subquery>)"),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE {pattern}",
                if *negated { "NOT " } else { "" }
            ),
            Expr::Case { .. } => write!(f, "CASE ... END"),
            Expr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            Expr::Extract { field, expr } => write!(f, "EXTRACT({field:?} FROM {expr})"),
            Expr::Function {
                name,
                args,
                distinct,
            } => {
                write!(f, "{name}(")?;
                if *distinct {
                    write!(f, "DISTINCT ")?;
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Window { func, args, .. } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ") OVER (...)")
            }
        }
    }
}
