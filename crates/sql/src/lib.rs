//! # hive-sql
//!
//! The SQL frontend: a hand-written lexer and recursive-descent parser
//! producing the [`ast`] the driver compiles (paper Figure 2: "parser →
//! AST").
//!
//! The grammar covers the SQL surface the paper describes (§3.1):
//! SELECT with all join kinds, correlated subqueries (IN / EXISTS /
//! scalar), set operations (UNION [ALL] / INTERSECT / EXCEPT), GROUP BY
//! with GROUPING SETS / ROLLUP / CUBE, window functions with frames,
//! ORDER BY (including unselected columns) and LIMIT; DDL with
//! `PARTITIONED BY`, constraints, `STORED BY` storage handlers,
//! `TBLPROPERTIES`, and materialized views; DML with INSERT / UPDATE /
//! DELETE / MERGE; plus EXPLAIN and ALTER ... REBUILD.
//!
//! [`features::required_features`] reports which post-1.2 SQL features a
//! statement uses, so the driver can emulate Hive 1.2's reduced surface
//! for the Figure 7 baseline.

pub mod ast;
pub mod features;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use features::{required_features, SqlFeature};
pub use parser::parse_sql;
