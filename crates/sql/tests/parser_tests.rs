//! Parser coverage tests over the SQL surface the paper describes.

use hive_common::{DataType, Value};
use hive_sql::*;

fn parse(sql: &str) -> Statement {
    parse_sql(sql).unwrap_or_else(|e| panic!("failed to parse {sql:?}: {e}"))
}

fn parse_query(sql: &str) -> Query {
    match parse(sql) {
        Statement::Query(q) => q,
        other => panic!("expected query, got {other:?}"),
    }
}

fn select_of(q: &Query) -> &Select {
    match &q.body {
        QueryBody::Select(s) => s,
        other => panic!("expected select, got {other:?}"),
    }
}

#[test]
fn simple_select() {
    let q = parse_query("SELECT a, b AS bee, t.c FROM t WHERE a > 1 LIMIT 10");
    let s = select_of(&q);
    assert_eq!(s.projection.len(), 3);
    assert!(matches!(
        &s.projection[1],
        SelectItem::Expr { alias: Some(a), .. } if a == "bee"
    ));
    assert_eq!(q.limit, Some(10));
    assert!(s.selection.is_some());
}

#[test]
fn paper_store_sales_ddl() {
    // The CREATE TABLE from Section 3.1 of the paper.
    let stmt = parse(
        "CREATE TABLE store_sales (
            sold_date_sk INT, item_sk INT, customer_sk INT, store_sk INT,
            quantity INT, list_price DECIMAL(7,2), sales_price DECIMAL(7,2)
         ) PARTITIONED BY (sold_date_sk INT)",
    );
    match stmt {
        Statement::CreateTable(ct) => {
            assert_eq!(ct.name, ObjectName::bare("store_sales"));
            assert_eq!(ct.columns.len(), 7);
            assert_eq!(ct.columns[5].data_type, DataType::Decimal(7, 2));
            assert_eq!(ct.partitioned_by.len(), 1);
            assert_eq!(ct.partitioned_by[0].name, "sold_date_sk");
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn ddl_with_constraints_properties_handler() {
    let stmt = parse(
        "CREATE EXTERNAL TABLE druid_table_1 (
            __time TIMESTAMP, dim1 VARCHAR(20), m1 FLOAT,
            PRIMARY KEY (dim1),
            FOREIGN KEY (m1) REFERENCES other(m2),
            UNIQUE (dim1, m1)
         )
         STORED BY 'druid'
         TBLPROPERTIES ('druid.datasource' = 'my_druid_source')",
    );
    match stmt {
        Statement::CreateTable(ct) => {
            assert!(ct.external);
            assert_eq!(ct.stored_by.as_deref(), Some("druid"));
            assert_eq!(ct.constraints.len(), 3);
            assert_eq!(
                ct.properties,
                vec![("druid.datasource".into(), "my_druid_source".into())]
            );
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn materialized_view_from_paper() {
    // Figure 4(a).
    let stmt = parse(
        "CREATE MATERIALIZED VIEW mat_view AS
         SELECT d_year, d_moy, d_dom, SUM(ss_sales_price) AS sum_sales
         FROM store_sales, date_dim
         WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017
         GROUP BY d_year, d_moy, d_dom",
    );
    match stmt {
        Statement::CreateMaterializedView(mv) => {
            assert_eq!(mv.name, ObjectName::bare("mat_view"));
            let s = select_of(&mv.query);
            assert_eq!(s.group_by.len(), 3);
            assert_eq!(s.from.len(), 2, "comma join");
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn join_kinds() {
    let q = parse_query(
        "SELECT * FROM a JOIN b ON a.x = b.x
         LEFT OUTER JOIN c ON b.y = c.y
         RIGHT JOIN d ON c.z = d.z
         FULL OUTER JOIN e ON d.w = e.w
         CROSS JOIN f
         LEFT SEMI JOIN g ON f.v = g.v",
    );
    let s = select_of(&q);
    let mut kinds = Vec::new();
    fn walk(t: &TableRef, kinds: &mut Vec<JoinKind>) {
        if let TableRef::Join { left, kind, .. } = t {
            walk(left, kinds);
            kinds.push(*kind);
        }
    }
    walk(&s.from[0], &mut kinds);
    assert_eq!(
        kinds,
        vec![
            JoinKind::Inner,
            JoinKind::Left,
            JoinKind::Right,
            JoinKind::Full,
            JoinKind::Cross,
            JoinKind::LeftSemi
        ]
    );
}

#[test]
fn set_operations_and_precedence() {
    // INTERSECT binds tighter than UNION.
    let q = parse_query("SELECT a FROM t UNION SELECT a FROM u INTERSECT SELECT a FROM v");
    match &q.body {
        QueryBody::SetOp { op, right, .. } => {
            assert_eq!(*op, SetOperator::Union);
            assert!(matches!(
                right.as_ref(),
                QueryBody::SetOp {
                    op: SetOperator::Intersect,
                    ..
                }
            ));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn correlated_subqueries() {
    let q = parse_query(
        "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.k = t.k)
           AND a IN (SELECT b FROM v)
           AND a > (SELECT AVG(c) FROM w WHERE w.k = t.k)",
    );
    let s = select_of(&q);
    assert!(s.selection.as_ref().unwrap().contains_subquery());
}

#[test]
fn grouping_sets_rollup_cube() {
    let q = parse_query("SELECT a, b, SUM(c) FROM t GROUP BY ROLLUP(a, b)");
    let s = select_of(&q);
    assert_eq!(s.grouping_sets, Some(vec![vec![0, 1], vec![0], vec![]]));
    let q = parse_query("SELECT a, b, SUM(c) FROM t GROUP BY CUBE(a, b)");
    assert_eq!(select_of(&q).grouping_sets.as_ref().unwrap().len(), 4);
    let q = parse_query("SELECT a, b, SUM(c) FROM t GROUP BY a, b GROUPING SETS ((a, b), (a), ())");
    assert_eq!(
        select_of(&q).grouping_sets,
        Some(vec![vec![0, 1], vec![0], vec![]])
    );
}

#[test]
fn window_functions() {
    let q = parse_query(
        "SELECT RANK() OVER (PARTITION BY d ORDER BY s DESC),
                SUM(x) OVER (PARTITION BY d ORDER BY s ROWS BETWEEN 2 PRECEDING AND CURRENT ROW)
         FROM t",
    );
    let s = select_of(&q);
    match &s.projection[1] {
        SelectItem::Expr {
            expr: Expr::Window { func, frame, .. },
            ..
        } => {
            assert_eq!(func, "sum");
            assert_eq!(
                frame,
                &Some(WindowFrame {
                    start: FrameBound::Preceding(2),
                    end: FrameBound::CurrentRow
                })
            );
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn ctes() {
    let q = parse_query(
        "WITH base AS (SELECT a FROM t), top AS (SELECT a FROM base LIMIT 5)
         SELECT * FROM top",
    );
    assert_eq!(q.ctes.len(), 2);
    assert_eq!(q.ctes[1].0, "top");
}

#[test]
fn dml_statements() {
    match parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')") {
        Statement::Insert(i) => {
            assert_eq!(i.columns, Some(vec!["a".into(), "b".into()]));
            match i.source {
                InsertSource::Values(rows) => assert_eq!(rows.len(), 2),
                other => panic!("unexpected: {other:?}"),
            }
        }
        other => panic!("unexpected: {other:?}"),
    }
    match parse("UPDATE t SET a = a + 1, b = 'z' WHERE c < 5") {
        Statement::Update(u) => {
            assert_eq!(u.assignments.len(), 2);
            assert!(u.filter.is_some());
        }
        other => panic!("unexpected: {other:?}"),
    }
    match parse("DELETE FROM t WHERE a IS NULL") {
        Statement::Delete(d) => assert!(d.filter.is_some()),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn merge_statement() {
    let stmt = parse(
        "MERGE INTO target t USING source s ON t.k = s.k
         WHEN MATCHED AND s.flag = 1 THEN UPDATE SET v = s.v
         WHEN NOT MATCHED THEN INSERT VALUES (s.k, s.v)",
    );
    match stmt {
        Statement::Merge(m) => {
            assert_eq!(m.target_alias.as_deref(), Some("t"));
            assert!(m.when_matched_update.is_some());
            assert!(m.when_matched_delete.is_none());
            assert!(m.when_not_matched_insert.is_some());
            assert!(m.when_matched_update.as_ref().unwrap().condition.is_some());
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn expressions() {
    let q = parse_query(
        "SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END,
                CAST(a AS BIGINT),
                EXTRACT(year FROM d),
                a NOT BETWEEN 1 AND 10,
                s LIKE 'Sport%',
                -a + 2 * 3
         FROM t",
    );
    let s = select_of(&q);
    assert_eq!(s.projection.len(), 6);
    // Precedence: -a + (2*3)
    match &s.projection[5] {
        SelectItem::Expr {
            expr:
                Expr::BinaryOp {
                    op: BinaryOp::Plus,
                    right,
                    ..
                },
            ..
        } => {
            assert!(matches!(
                right.as_ref(),
                Expr::BinaryOp {
                    op: BinaryOp::Multiply,
                    ..
                }
            ));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn date_and_interval_literals() {
    let q = parse_query(
        "SELECT * FROM t WHERE d BETWEEN DATE '2000-01-27' AND DATE '2000-01-27' + INTERVAL 30 DAYS",
    );
    let s = select_of(&q);
    let mut found_date = false;
    let mut found_interval = false;
    s.selection.as_ref().unwrap().visit(&mut |e| match e {
        Expr::Literal(Value::Date(_)) => found_date = true,
        Expr::Function { name, .. } if name == "__interval_day" => found_interval = true,
        _ => {}
    });
    assert!(found_date && found_interval);
}

#[test]
fn order_by_variants() {
    let q = parse_query("SELECT a, b FROM t ORDER BY a DESC NULLS LAST, b ASC");
    assert_eq!(q.order_by.len(), 2);
    assert!(!q.order_by[0].asc);
    assert_eq!(q.order_by[0].nulls_first, Some(false));
    assert!(q.order_by[1].asc);
}

#[test]
fn misc_statements() {
    assert!(matches!(parse("USE tpcds"), Statement::Use(d) if d == "tpcds"));
    assert!(matches!(parse("SHOW TABLES"), Statement::ShowTables));
    assert!(matches!(
        parse("SHOW COMPACTIONS"),
        Statement::ShowCompactions
    ));
    assert!(matches!(
        parse("ANALYZE TABLE t COMPUTE STATISTICS"),
        Statement::AnalyzeTable { .. }
    ));
    assert!(matches!(
        parse("ALTER TABLE t COMPACT 'major'"),
        Statement::AlterTableCompact { major: true, .. }
    ));
    assert!(matches!(
        parse("ALTER MATERIALIZED VIEW mv REBUILD"),
        Statement::AlterMaterializedViewRebuild { .. }
    ));
    assert!(matches!(parse("EXPLAIN SELECT 1"), Statement::Explain(_)));
    assert!(matches!(
        parse("DROP TABLE IF EXISTS t"),
        Statement::DropTable {
            if_exists: true,
            ..
        }
    ));
}

#[test]
fn subquery_in_from() {
    let q = parse_query("SELECT x FROM (SELECT a AS x FROM t) sub WHERE x > 1");
    let s = select_of(&q);
    assert!(matches!(
        &s.from[0],
        TableRef::Subquery { alias, .. } if alias == "sub"
    ));
}

#[test]
fn multi_statement_script() {
    let stmts =
        hive_sql::parser::parse_statements("CREATE TABLE a (x INT); INSERT INTO a VALUES (1);")
            .unwrap();
    assert_eq!(stmts.len(), 2);
}

#[test]
fn parse_errors_are_reported() {
    assert!(parse_sql("SELECT FROM WHERE").is_err());
    assert!(parse_sql("SELEC 1").is_err());
    assert!(parse_sql("SELECT a FROM t WHERE").is_err());
    assert!(parse_sql("").is_err());
    assert!(parse_sql("SELECT 1; SELECT 2").is_err(), "two statements");
}

#[test]
fn count_star_and_distinct() {
    let q = parse_query("SELECT COUNT(*), COUNT(DISTINCT a), SUM(b) FROM t");
    let s = select_of(&q);
    match &s.projection[0] {
        SelectItem::Expr {
            expr: Expr::Function { name, args, .. },
            ..
        } => {
            assert_eq!(name, "count");
            assert!(args.is_empty());
        }
        other => panic!("unexpected: {other:?}"),
    }
    match &s.projection[1] {
        SelectItem::Expr {
            expr: Expr::Function { distinct, .. },
            ..
        } => assert!(distinct),
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn multi_insert_statement() {
    let stmt = parse(
        "FROM src
         INSERT INTO t1 SELECT a, b WHERE a > 0
         INSERT INTO t2 (x) SELECT a WHERE a <= 0",
    );
    match stmt {
        Statement::MultiInsert(mi) => {
            assert_eq!(mi.inserts.len(), 2);
            assert_eq!(mi.inserts[0].table, ObjectName::bare("t1"));
            assert!(mi.inserts[0].filter.is_some());
            assert_eq!(mi.inserts[1].columns, Some(vec!["x".into()]));
        }
        other => panic!("unexpected: {other:?}"),
    }
}

#[test]
fn describe_and_show_partitions_parse() {
    assert!(matches!(
        parse("DESCRIBE t"),
        Statement::Describe {
            extended: false,
            ..
        }
    ));
    assert!(matches!(
        parse("DESC EXTENDED db.t"),
        Statement::Describe { extended: true, .. }
    ));
    assert!(matches!(
        parse("SHOW PARTITIONS store_sales"),
        Statement::ShowPartitions { .. }
    ));
}

#[test]
fn show_transactions_parses() {
    assert!(matches!(
        parse("SHOW TRANSACTIONS"),
        Statement::ShowTransactions
    ));
    assert!(matches!(
        parse("SHOW COMPACTIONS"),
        Statement::ShowCompactions
    ));
    assert!(hive_sql::parse_sql("SHOW NONSENSE").is_err());
}
