//! Sessions and query results.

use crate::server::HiveServer;
use hive_common::{Result, Row, Schema, VectorBatch};
use parking_lot::RwLock;

/// The result of one statement.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub(crate) batch: VectorBatch,
    /// Simulated cluster response time in milliseconds (see
    /// `hive_exec::simtime`). Zero for pure-metadata statements.
    pub sim_ms: f64,
    /// Served from the query results cache (§4.3).
    pub from_cache: bool,
    /// A materialized-view rewrite answered (part of) the query (§4.4).
    pub used_mv: bool,
    /// The query failed retryably and was re-optimized + re-executed
    /// (§4.2).
    pub reexecuted: bool,
    /// Rows written by DML.
    pub affected_rows: u64,
    /// Bytes read from the DFS during execution.
    pub bytes_disk: u64,
    /// Bytes served by the LLAP cache during execution.
    pub bytes_cache: u64,
    /// Fragment/task attempts retried after injected faults (see
    /// `hive_common::fault`).
    pub fragment_retries: u64,
    /// Fragments re-dispatched onto a surviving LLAP daemon after their
    /// node died mid-query (§5.1 failover).
    pub failovers: u64,
    /// Bytes written to spill files by blocking operators that exceeded
    /// their memory grant (see `hive_exec::membroker`).
    pub bytes_spilled: u64,
    /// Peak memory tracked by the per-query broker (0 when the query ran
    /// without a budget).
    pub peak_memory_bytes: u64,
    /// The widest stage of the plan in scheduler tasks, capped at the
    /// cluster's executor slots — the query's slot demand while running
    /// (1 for cache hits and metadata statements). The serving layer's
    /// fair-share model allocates cluster capacity against this.
    pub parallel_width: u64,
    /// Operator stages that executed fully compiled under the physical
    /// IR (`hive.exec.pir.enabled`): filter/project pipelines, aggregate
    /// accumulator banks, join residual conjunctions. Zero with PIR off.
    pub pir_compiled_stages: u64,
    /// Rows (or join candidate pairs) that fell back to the interpreter
    /// while PIR was on — non-compilable expression shapes, spilled
    /// aggregates, grace joins.
    pub pir_fallback_rows: u64,
    /// Human-readable notice (DDL acknowledgements, EXPLAIN text, …).
    pub message: Option<String>,
}

impl QueryResult {
    pub(crate) fn empty() -> QueryResult {
        QueryResult {
            batch: VectorBatch::empty(&Schema::empty()).expect("empty batch"),
            sim_ms: 0.0,
            from_cache: false,
            used_mv: false,
            reexecuted: false,
            affected_rows: 0,
            bytes_disk: 0,
            bytes_cache: 0,
            fragment_retries: 0,
            failovers: 0,
            bytes_spilled: 0,
            peak_memory_bytes: 0,
            parallel_width: 1,
            pir_compiled_stages: 0,
            pir_fallback_rows: 0,
            message: None,
        }
    }

    pub(crate) fn message(msg: impl Into<String>) -> QueryResult {
        QueryResult {
            message: Some(msg.into()),
            ..QueryResult::empty()
        }
    }

    /// The result schema.
    pub fn schema(&self) -> &Schema {
        self.batch.schema()
    }

    /// The result as a columnar batch.
    pub fn batch(&self) -> &VectorBatch {
        &self.batch
    }

    /// The result rows (materialized).
    pub fn rows(&self) -> Vec<Row> {
        self.batch.to_rows()
    }

    /// Number of result rows.
    pub fn num_rows(&self) -> usize {
        self.batch.num_rows()
    }

    /// Rows rendered as tab-separated strings (tests/CLI).
    pub fn display_rows(&self) -> Vec<String> {
        self.batch.to_rows().iter().map(|r| r.to_string()).collect()
    }
}

/// One client session: current database plus user identity — user,
/// groups, and application name, which the workload manager's mappings
/// route on (precedence: user, then group, then application).
pub struct Session {
    pub(crate) server: HiveServer,
    pub(crate) db: RwLock<String>,
    pub(crate) user: String,
    pub(crate) application: Option<String>,
    pub(crate) groups: Vec<String>,
}

impl Session {
    pub(crate) fn new(
        server: HiveServer,
        db: &str,
        user: &str,
        application: Option<&str>,
    ) -> Session {
        Session::with_groups(server, db, user, application, &[])
    }

    pub(crate) fn with_groups(
        server: HiveServer,
        db: &str,
        user: &str,
        application: Option<&str>,
        groups: &[String],
    ) -> Session {
        Session {
            server,
            db: RwLock::new(db.to_string()),
            user: user.to_string(),
            application: application.map(String::from),
            groups: groups.to_vec(),
        }
    }

    /// The session's current database.
    pub fn current_db(&self) -> String {
        self.db.read().clone()
    }

    /// Execute one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<QueryResult> {
        let stmt = hive_sql::parse_sql(sql)?;
        self.execute_statement(stmt)
    }

    /// Execute a script of `;`-separated statements, returning the last
    /// result.
    pub fn execute_script(&self, sql: &str) -> Result<QueryResult> {
        let stmts = hive_sql::parser::parse_statements(sql)?;
        let mut last = QueryResult::empty();
        for s in stmts {
            last = self.execute_statement(s)?;
        }
        Ok(last)
    }

    /// The owning server.
    pub fn server(&self) -> &HiveServer {
        &self.server
    }
}
