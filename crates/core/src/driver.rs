//! The driver pipeline (paper Figure 2): statement dispatch, the SELECT
//! path with results cache / MV rewriting / federation pushdown /
//! re-optimization, and the DML/DDL implementations.

use crate::mv;
use crate::results_cache::CacheOutcome;
use crate::session::{QueryResult, Session};
use hive_acid::{resolve_snapshot, AcidScan, AcidWriter, Compactor};
use hive_common::{
    EngineVersion, HiveConf, HiveError, Result, Row, Schema, TxnId, Value, VectorBatch,
};
use hive_corc::SearchArgument;
use hive_dfs::DfsPath;
use hive_exec::{execute_sel as exec_plan_sel, ExecContext, NodeTrace, SnapshotProvider};
use hive_llap::TriggerVerdict;
use hive_metastore::{
    CompactionKind, CompactionState, LockKey, LockMode, Metastore, Table, TableBuilder, TableStats,
    TableType, ValidTxnList, ValidWriteIdList,
};
use hive_optimizer::eval::eval_scalar;
use hive_optimizer::fingerprint::fingerprint;
use hive_optimizer::plan::LogicalPlan;
use hive_optimizer::{Analyzer, MetastoreCatalog, Optimizer, OptimizerContext, ScalarExpr};
use hive_sql as ast;
use parking_lot::Mutex;
use std::collections::HashMap;

/// Per-query snapshot provider: one ValidTxnList captured at query
/// start, narrowed per table on demand and memoized (the paper's
/// "each scan operation in the plan is bound to a WriteId list during
/// compilation").
pub(crate) struct QuerySnapshots<'a> {
    ms: &'a Metastore,
    txn_list: ValidTxnList,
    reader: Option<TxnId>,
    cache: Mutex<HashMap<String, ValidWriteIdList>>,
}

impl<'a> QuerySnapshots<'a> {
    pub(crate) fn new(ms: &'a Metastore, reader: Option<TxnId>) -> Self {
        QuerySnapshots {
            ms,
            txn_list: ms.valid_txn_list(),
            reader,
            cache: Mutex::new(HashMap::new()),
        }
    }
}

impl SnapshotProvider for QuerySnapshots<'_> {
    fn write_ids(&self, table: &str) -> ValidWriteIdList {
        let mut g = self.cache.lock();
        g.entry(table.to_string())
            .or_insert_with(|| self.ms.valid_write_ids(table, &self.txn_list, self.reader))
            .clone()
    }
}

/// A planned query plus the feedback context it was planned under —
/// what the §4.2 misestimate ladder needs to persist an observation and
/// re-plan the same query with it substituted.
pub(crate) struct Planned {
    pub plan: LogicalPlan,
    pub used_mv: bool,
    /// Fingerprint of the *analyzed* (pre-optimization) plan: the
    /// runtime-stats key for feedback, stable across plan choices.
    pub analyzed_fp: String,
    /// Feedback the optimizer saw (persisted + in-flight), so the
    /// cardinality guard's estimates match the planner's.
    pub feedback: HashMap<String, u64>,
}

impl Session {
    pub(crate) fn execute_statement(&self, stmt: ast::Statement) -> Result<QueryResult> {
        // Engine-version SQL surface gate (the Figure 7 "could not be
        // executed in Hive 1.2" mechanism).
        let conf = self.server.conf();
        if conf.version == EngineVersion::V1_2 {
            let missing: Vec<_> = ast::required_features(&stmt)
                .into_iter()
                .filter(|f| !f.available_in_v1_2())
                .collect();
            if !missing.is_empty() {
                return Err(HiveError::Unsupported(format!(
                    "Hive 1.2 does not support {missing:?}"
                )));
            }
        }
        match stmt {
            ast::Statement::Query(q) => self.run_select(&q, &conf),
            ast::Statement::Explain(inner) => self.run_explain(*inner, &conf),
            ast::Statement::Use(db) => {
                if self.server.metastore().list_tables(&db).is_err() {
                    return Err(HiveError::Catalog(format!("database not found: {db}")));
                }
                *self.db.write() = db.clone();
                Ok(QueryResult::message(format!("using {db}")))
            }
            ast::Statement::CreateDatabase {
                name,
                if_not_exists,
            } => {
                match self.server.metastore().create_database(&name) {
                    Ok(()) => {}
                    Err(_) if if_not_exists => {}
                    Err(e) => return Err(e),
                }
                Ok(QueryResult::message(format!("created database {name}")))
            }
            ast::Statement::DropDatabase { name, if_exists } => {
                match self.server.metastore().drop_database(&name) {
                    Ok(()) => {}
                    Err(_) if if_exists => {}
                    Err(e) => return Err(e),
                }
                Ok(QueryResult::message(format!("dropped database {name}")))
            }
            ast::Statement::CreateTable(ct) => self.run_create_table(ct),
            ast::Statement::DropTable { name, if_exists }
            | ast::Statement::DropMaterializedView { name, if_exists } => {
                self.run_drop_table(name, if_exists)
            }
            ast::Statement::CreateMaterializedView(cmv) => mv::create_view(self, cmv),
            ast::Statement::AlterMaterializedViewRebuild { name } => mv::rebuild(self, &name),
            ast::Statement::Insert(ins) => self.run_insert(ins),
            ast::Statement::MultiInsert(mi) => self.run_multi_insert(mi),
            ast::Statement::Update(upd) => self.run_update(upd),
            ast::Statement::Delete(del) => self.run_delete(del),
            ast::Statement::Merge(m) => self.run_merge(m),
            ast::Statement::AnalyzeTable { name } => self.run_analyze(name),
            ast::Statement::AlterTableCompact { name, major } => {
                let (db, tname) = self.resolve(&name);
                let qname = format!("{db}.{tname}");
                self.server.metastore().submit_compaction(
                    &qname,
                    None,
                    if major {
                        CompactionKind::Major
                    } else {
                        CompactionKind::Minor
                    },
                );
                let done = self.run_maintenance()?;
                Ok(QueryResult::message(format!(
                    "compaction requested for {qname}; {done} request(s) processed"
                )))
            }
            ast::Statement::ShowTables => {
                let tables = self.server.metastore().list_tables(&self.current_db())?;
                let schema = Schema::new(vec![hive_common::Field::new(
                    "tab_name",
                    hive_common::DataType::String,
                )]);
                let rows: Vec<Row> = tables
                    .into_iter()
                    .map(|t| Row::new(vec![Value::String(t)]))
                    .collect();
                Ok(QueryResult {
                    batch: VectorBatch::from_rows(&schema, &rows)?,
                    ..QueryResult::empty()
                })
            }
            ast::Statement::ShowPartitions { name } => {
                let (db, tname) = self.resolve(&name);
                let table = self.server.metastore().get_table(&db, &tname)?;
                let schema = Schema::new(vec![hive_common::Field::new(
                    "partition",
                    hive_common::DataType::String,
                )]);
                let rows: Vec<Row> = table
                    .partitions
                    .keys()
                    .map(|p| Row::new(vec![Value::String(p.clone())]))
                    .collect();
                Ok(QueryResult {
                    batch: VectorBatch::from_rows(&schema, &rows)?,
                    ..QueryResult::empty()
                })
            }
            ast::Statement::Describe { name, extended } => {
                let (db, tname) = self.resolve(&name);
                let table = self.server.metastore().get_table(&db, &tname)?;
                let schema = Schema::new(vec![
                    hive_common::Field::new("col_name", hive_common::DataType::String),
                    hive_common::Field::new("data_type", hive_common::DataType::String),
                    hive_common::Field::new("comment", hive_common::DataType::String),
                ]);
                let mut rows: Vec<Row> = Vec::new();
                for f in table.schema.fields() {
                    rows.push(Row::new(vec![
                        Value::String(f.name.clone()),
                        Value::String(f.data_type.to_string()),
                        Value::String(if f.nullable { "" } else { "NOT NULL" }.into()),
                    ]));
                }
                for f in &table.partition_keys {
                    rows.push(Row::new(vec![
                        Value::String(f.name.clone()),
                        Value::String(f.data_type.to_string()),
                        Value::String("partition column".into()),
                    ]));
                }
                if extended {
                    rows.push(Row::new(vec![
                        Value::String("#type".into()),
                        Value::String(format!("{:?}", table.table_type)),
                        Value::String(table.storage_handler.clone().unwrap_or_default()),
                    ]));
                    rows.push(Row::new(vec![
                        Value::String("#location".into()),
                        Value::String(table.location.clone()),
                        Value::String(format!("{} partitions", table.partitions.len())),
                    ]));
                    let stats = self.server.metastore().table_stats(&table.qualified_name());
                    rows.push(Row::new(vec![
                        Value::String("#rows".into()),
                        Value::String(stats.row_count.to_string()),
                        Value::String(String::new()),
                    ]));
                }
                Ok(QueryResult {
                    batch: VectorBatch::from_rows(&schema, &rows)?,
                    ..QueryResult::empty()
                })
            }
            ast::Statement::ShowCompactions => {
                let schema = Schema::new(vec![
                    hive_common::Field::new("table", hive_common::DataType::String),
                    hive_common::Field::new("partition", hive_common::DataType::String),
                    hive_common::Field::new("kind", hive_common::DataType::String),
                    hive_common::Field::new("state", hive_common::DataType::String),
                ]);
                let rows: Vec<Row> = self
                    .server
                    .metastore()
                    .show_compactions()
                    .into_iter()
                    .map(|r| {
                        Row::new(vec![
                            Value::String(r.table),
                            r.partition.map(Value::String).unwrap_or(Value::Null),
                            Value::String(format!("{:?}", r.kind)),
                            Value::String(format!("{:?}", r.state)),
                        ])
                    })
                    .collect();
                Ok(QueryResult {
                    batch: VectorBatch::from_rows(&schema, &rows)?,
                    ..QueryResult::empty()
                })
            }
            ast::Statement::ShowTransactions => {
                let schema = Schema::new(vec![
                    hive_common::Field::new("txn_id", hive_common::DataType::BigInt),
                    hive_common::Field::new("state", hive_common::DataType::String),
                    hive_common::Field::new("tables", hive_common::DataType::String),
                ]);
                let rows: Vec<Row> = self
                    .server
                    .metastore()
                    .show_transactions()
                    .into_iter()
                    .map(|(id, state, tables)| {
                        Row::new(vec![
                            Value::BigInt(id.0 as i64),
                            Value::String(format!("{state:?}")),
                            Value::String(tables.join(",")),
                        ])
                    })
                    .collect();
                Ok(QueryResult {
                    batch: VectorBatch::from_rows(&schema, &rows)?,
                    ..QueryResult::empty()
                })
            }
        }
    }

    fn resolve(&self, name: &ast::ObjectName) -> (String, String) {
        (
            name.db.clone().unwrap_or_else(|| self.current_db()),
            name.name.clone(),
        )
    }

    // ---- SELECT ------------------------------------------------------------

    /// Analyze + optimize a query under the session catalog.
    pub(crate) fn plan_query(
        &self,
        q: &ast::Query,
        conf: &HiveConf,
    ) -> Result<(LogicalPlan, bool)> {
        let p = self.plan_query_fb(q, conf, &HashMap::new())?;
        Ok((p.plan, p.used_mv))
    }

    /// Like [`Session::plan_query`], but carrying the cardinality-
    /// feedback context: persisted `tables:`-keyed observations for this
    /// query (keyed by the *analyzed* plan fingerprint, which is stable
    /// across optimizer decisions) merged with `extra` — the in-flight
    /// observation a misestimate re-plan substitutes (§4.2).
    pub(crate) fn plan_query_fb(
        &self,
        q: &ast::Query,
        conf: &HiveConf,
        extra: &HashMap<String, u64>,
    ) -> Result<Planned> {
        let cat = MetastoreCatalog::new(self.server.metastore().clone(), self.current_db());
        let analyzer = Analyzer::new(&cat);
        let analyzed = analyzer.analyze_query(q)?;
        let usable_views = if conf.mv_rewriting {
            mv::usable_views(self)?
        } else {
            vec![]
        };
        let before_fp = fingerprint(&analyzed);
        let analyzed_fp = hive_optimizer::fingerprint::fingerprint_hex(&analyzed);
        let mut feedback: HashMap<String, u64> = self
            .server
            .metastore()
            .runtime_stats(&analyzed_fp)
            .unwrap_or_default()
            .into_iter()
            .filter_map(|(k, v)| Some((k.strip_prefix("tables:")?.to_string(), v)))
            .collect();
        feedback.extend(extra.iter().map(|(k, v)| (k.clone(), *v)));
        let ctx = OptimizerContext {
            metastore: self.server.metastore(),
            conf,
            usable_views,
            feedback: feedback.clone(),
        };
        let mut plan = Optimizer::optimize(analyzed, &ctx)?;
        let used_mv = plan
            .referenced_tables()
            .iter()
            .any(|t| is_mv_table(self.server.metastore(), t))
            && fingerprint(&plan) != before_fp;
        // Federation pushdown when external tables participate.
        let has_external = {
            let mut found = false;
            plan.visit(&mut |p| {
                if let LogicalPlan::Scan { table, .. } = p {
                    if table.handler.is_some() {
                        found = true;
                    }
                }
            });
            found
        };
        if has_external {
            plan = hive_federation::pushdown::push_to_external(&plan);
        }
        Ok(Planned {
            plan,
            used_mv,
            analyzed_fp,
            feedback,
        })
    }

    fn run_select(&self, q: &ast::Query, conf: &HiveConf) -> Result<QueryResult> {
        // Workload-manager admission (§5.2). The slot is RAII: every
        // path out of this function — success, error, trigger kill —
        // releases exactly this query's accounting when `slot` drops.
        let slot = self
            .server
            .workload(|w| w.admit(&self.user, self.application.as_deref(), &self.groups))?;

        let result = self.run_select_admitted(q, conf, slot.guaranteed_fraction());

        // Walk the trigger timeline over the recorded (simulated)
        // runtime: moves transfer the slot at their threshold
        // (capacity-validated), a kill ends the query *at* its
        // threshold rather than after the fact.
        match result {
            Ok(r) => match slot.resolve_triggers(r.sim_ms as u64) {
                TriggerVerdict::Completed { .. } => Ok(r),
                TriggerVerdict::Killed { at_ms, trigger } => Err(HiveError::Workload(format!(
                    "query killed by trigger {trigger} in pool {} after {at_ms} ms",
                    slot.pool()
                ))),
            },
            Err(e) => Err(e),
        }
    }

    /// The post-admission SELECT path (results cache → execute with
    /// re-optimization). `pool_fraction` scales the per-query memory
    /// budget; the serving layer calls this directly with a slot it
    /// manages on its own timeline.
    pub(crate) fn run_select_admitted(
        &self,
        q: &ast::Query,
        conf: &HiveConf,
        pool_fraction: f64,
    ) -> Result<QueryResult> {
        let planned = self.plan_query_fb(q, conf, &HashMap::new())?;
        let (plan, used_mv) = (&planned.plan, planned.used_mv);
        // Results cache probe (§4.3): deterministic queries only.
        let cacheable = conf.results_cache && plan_is_deterministic(plan);
        let key = fingerprint(plan);
        let mut claimed = false;
        if cacheable {
            match self
                .server
                .results_cache()
                .probe(key, |t| self.server.metastore().table_write_hwm(t))
            {
                CacheOutcome::Hit(batch) | CacheOutcome::HitAfterWait(batch) => {
                    return Ok(QueryResult {
                        batch,
                        sim_ms: 2.0, // single fetch task (§4.3)
                        from_cache: true,
                        used_mv,
                        ..QueryResult::empty()
                    });
                }
                CacheOutcome::MissClaimed => claimed = true,
            }
        }
        let outcome = self.execute_plan_with_retry(q, &planned, conf, pool_fraction);
        match outcome {
            Ok((batch, trace, reexecuted, peak_memory_bytes)) => {
                if claimed {
                    let snapshot = plan
                        .referenced_tables()
                        .iter()
                        .map(|t| (t.clone(), self.server.metastore().table_write_hwm(t)))
                        .collect();
                    self.server
                        .results_cache()
                        .fill(key, batch.clone(), snapshot);
                }
                let sim_ms = hive_exec::simulate_ms(&trace, conf, &self.server.inner.sim_model);
                let parallel_width = trace
                    .max_parallel_tasks(conf.rows_per_task as u64, conf.total_slots() as u64)
                    .max(1);
                Ok(QueryResult {
                    batch,
                    sim_ms,
                    from_cache: false,
                    used_mv,
                    reexecuted,
                    affected_rows: 0,
                    bytes_disk: trace.total(|n| n.bytes_disk),
                    bytes_cache: trace.total(|n| n.bytes_cache),
                    fragment_retries: trace.total(|n| n.fragment_retries),
                    failovers: trace.total(|n| n.failovers),
                    bytes_spilled: trace.total(|n| n.bytes_spilled),
                    peak_memory_bytes,
                    parallel_width,
                    pir_compiled_stages: trace.total(|n| n.pir_compiled_stages),
                    pir_fallback_rows: trace.total(|n| n.pir_fallback_rows),
                    message: None,
                })
            }
            Err(e) => {
                if claimed {
                    self.server.results_cache().abandon(key);
                }
                Err(e)
            }
        }
    }

    /// Execute with the §4.2 re-optimization ladder. Two rungs, each
    /// used at most once per query:
    ///
    /// 1. **Cardinality misestimate** — the armed guard observed a join
    ///    producing >10× its estimate. Persist the observation under
    ///    the analyzed-plan fingerprint (so future plannings of this
    ///    query start from it), re-optimize with it substituted for the
    ///    estimate, and re-execute the new plan with the guard
    ///    disarmed. Results are identical; only the plan changes.
    /// 2. **Other retryable failures** — persist a marker and retry the
    ///    same plan under the overlay configuration.
    fn execute_plan_with_retry(
        &self,
        q: &ast::Query,
        planned: &Planned,
        conf: &HiveConf,
        pool_fraction: f64,
    ) -> Result<(VectorBatch, NodeTrace, bool, u64)> {
        match self.execute_plan_budgeted(&planned.plan, conf, pool_fraction, Some(planned)) {
            Ok((b, t, peak)) => Ok((b, t, false, peak)),
            Err(HiveError::CardinalityMisestimate {
                tables, observed, ..
            }) if conf.reoptimization => {
                let key = format!("tables:{tables}");
                let mut entries = self
                    .server
                    .metastore()
                    .runtime_stats(&planned.analyzed_fp)
                    .unwrap_or_default();
                entries.retain(|(k, _)| k != &key);
                entries.push((key, observed));
                self.server
                    .metastore()
                    .save_runtime_stats(&planned.analyzed_fp, entries);
                let mut extra = planned.feedback.clone();
                extra.insert(tables, observed);
                let replanned = self.plan_query_fb(q, conf, &extra)?;
                let (b, t, peak) =
                    self.execute_plan_budgeted(&replanned.plan, conf, pool_fraction, None)?;
                Ok((b, t, true, peak))
            }
            Err(e) if e.is_retryable() && conf.reoptimization => {
                // Persist what we know for future planning, then retry
                // under the overlay configuration.
                self.server.metastore().save_runtime_stats(
                    &hive_optimizer::fingerprint::fingerprint_hex(&planned.plan),
                    vec![("retryable_failure".to_string(), 1)],
                );
                let overlay = hive_exec::engine::overlay_conf(conf);
                let (b, t, peak) =
                    self.execute_plan_budgeted(&planned.plan, &overlay, pool_fraction, None)?;
                Ok((b, t, true, peak))
            }
            Err(e) => Err(e),
        }
    }

    pub(crate) fn execute_plan(
        &self,
        plan: &LogicalPlan,
        conf: &HiveConf,
    ) -> Result<(VectorBatch, NodeTrace)> {
        // Non-admitted paths (DML sources, MV rebuilds) run under the
        // full per-query budget: they hold no workload-manager slot.
        let (b, t, _) = self.execute_plan_budgeted(plan, conf, 1.0, None)?;
        Ok((b, t))
    }

    /// `guard`: when `Some`, arm the executor's cardinality guard with
    /// per-join estimates computed under the same feedback the planner
    /// saw — the first execution attempt of a retry-capable path.
    fn execute_plan_budgeted(
        &self,
        plan: &LogicalPlan,
        conf: &HiveConf,
        pool_fraction: f64,
        guard: Option<&Planned>,
    ) -> Result<(VectorBatch, NodeTrace, u64)> {
        let snaps = QuerySnapshots::new(self.server.metastore(), None);
        let scanner = self.server.federation_scanner();
        let mut ctx = ExecContext::new(
            self.server.fs(),
            self.server.metastore(),
            conf,
            Some(self.server.llap()),
            &snaps,
            Some(&scanner),
        );
        // Per-query memory broker: the configured budget scaled by the
        // admission pool's guaranteed fraction (§5.2). Budget 0 keeps
        // the legacy unbudgeted path byte-for-byte.
        let budget =
            hive_exec::scaled_budget(conf.effective_memory_per_query_bytes(), pool_fraction);
        if budget > 0 {
            let q = self.server.next_spill_seq();
            ctx.enable_spill(hive_exec::SpillConfig {
                dir: DfsPath::new(format!("/tmp/hive/spill/q{q}")),
                broker: hive_exec::MemoryBroker::with_budget(budget),
                enabled: conf.effective_spill_enabled(),
            });
        }
        if let Some(planned) = guard {
            if conf.reoptimization && conf.effective_histograms_enabled() {
                let gated = hive_optimizer::stats::GatedStats {
                    inner: self.server.metastore(),
                    use_histograms: true,
                    feedback: planned.feedback.clone(),
                };
                let mut estimates: HashMap<u64, (u64, String)> = HashMap::new();
                plan.visit(&mut |p| {
                    if matches!(p, LogicalPlan::Join { .. }) {
                        let est = hive_optimizer::stats::estimate_rows(p, &gated).max(0.0) as u64;
                        let key = hive_optimizer::stats::join_feedback_key(p);
                        estimates.insert(fingerprint(p), (est, key));
                    }
                });
                if !estimates.is_empty() {
                    ctx.arm_card_guard(hive_exec::CardGuard::new(estimates));
                }
            }
        }
        ctx.prepare_shared_work(plan);
        let (sel_batch, trace) = exec_plan_sel(plan, &ctx)?;
        // Output boundary — the plan's final pipeline breaker: gather
        // the surviving selection into a compact batch and materialize
        // any dictionary-encoded columns that rode through the
        // operators. Everything downstream (final results, the results
        // cache, INSERT..SELECT sources) sees plain, compact columns.
        let batch = sel_batch.compact().decode();
        // Persist runtime operator statistics (§4.2/§9), carrying any
        // `tables:` feedback entries forward — the store overwrites per
        // fingerprint, and for plans the optimizer left unchanged the
        // analyzed and optimized fingerprints coincide.
        let fp_hex = hive_optimizer::fingerprint::fingerprint_hex(plan);
        let mut entries: Vec<(String, u64)> = self
            .server
            .metastore()
            .runtime_stats(&fp_hex)
            .unwrap_or_default()
            .into_iter()
            .filter(|(k, _)| k.starts_with("tables:"))
            .collect();
        entries.extend(trace.operator_rows());
        self.server.metastore().save_runtime_stats(&fp_hex, entries);
        Ok((batch, trace, ctx.spill_peak_bytes()))
    }

    fn run_explain(&self, stmt: ast::Statement, conf: &HiveConf) -> Result<QueryResult> {
        let text = match stmt {
            ast::Statement::Query(q) => {
                let (plan, used_mv) = self.plan_query(&q, conf)?;
                let mut t = plan.explain();
                if used_mv {
                    t.push_str("(query rewritten over materialized view)\n");
                }
                t
            }
            other => format!("{other:#?}"),
        };
        let schema = Schema::new(vec![hive_common::Field::new(
            "plan",
            hive_common::DataType::String,
        )]);
        let rows: Vec<Row> = text
            .lines()
            .map(|l| Row::new(vec![Value::String(l.to_string())]))
            .collect();
        Ok(QueryResult {
            batch: VectorBatch::from_rows(&schema, &rows)?,
            message: Some(text),
            ..QueryResult::empty()
        })
    }

    // ---- DDL ---------------------------------------------------------------

    fn run_create_table(&self, ct: ast::CreateTable) -> Result<QueryResult> {
        let (db, name) = self.resolve(&ct.name);
        if self.server.metastore().table_exists(&db, &name) {
            if ct.if_not_exists {
                return Ok(QueryResult::message(format!("{db}.{name} exists")));
            }
            return Err(HiveError::Catalog(format!("table exists: {db}.{name}")));
        }
        let data_fields: Vec<hive_common::Field> = if ct.columns.is_empty() {
            // CTAS without a column list: derive the schema from the
            // query. (Handler-backed tables with `()` infer via the
            // metastore hook below instead.)
            match &ct.as_query {
                Some(q) => {
                    let conf = self.server.conf();
                    let (plan, _) = self.plan_query(q, &conf)?;
                    plan.schema().fields().to_vec()
                }
                None => Vec::new(),
            }
        } else {
            ct.columns
                .iter()
                .map(|c| {
                    if c.not_null {
                        hive_common::Field::not_null(c.name.clone(), c.data_type.clone())
                    } else {
                        hive_common::Field::new(c.name.clone(), c.data_type.clone())
                    }
                })
                .collect()
        };
        let part_fields: Vec<hive_common::Field> = ct
            .partitioned_by
            .iter()
            .map(|c| hive_common::Field::new(c.name.clone(), c.data_type.clone()))
            .collect();
        let mut builder =
            TableBuilder::new(&db, &name, Schema::new(data_fields)).partitioned_by(part_fields);
        for c in &ct.constraints {
            builder = builder.constraint(convert_constraint(c));
        }
        for (k, v) in &ct.properties {
            builder = builder.property(k, v);
        }
        if let Some(h) = &ct.stored_by {
            builder = builder.stored_by(h);
        } else if ct.external {
            builder = builder.table_type(TableType::External);
        }
        let mut table = builder.build();
        // Metastore hook for storage handlers (§6.1): may infer schema.
        if let Some(h) = &ct.stored_by {
            let handler = self.server.inner.registry.get(h)?;
            handler.on_table_created(&mut table)?;
        }
        let qname = table.qualified_name();
        self.server.metastore().create_table(table)?;
        self.server
            .fs()
            .mkdirs(&DfsPath::new(format!("/warehouse/{db}/{name}")));
        // CTAS.
        if let Some(q) = ct.as_query {
            let insert = ast::Insert {
                table: ct.name.clone(),
                columns: None,
                source: ast::InsertSource::Query(q),
                overwrite: false,
            };
            let r = self.run_insert(insert)?;
            return Ok(QueryResult {
                message: Some(format!("created {qname} as select")),
                ..r
            });
        }
        Ok(QueryResult::message(format!("created table {qname}")))
    }

    fn run_drop_table(&self, name: ast::ObjectName, if_exists: bool) -> Result<QueryResult> {
        let (db, tname) = self.resolve(&name);
        if !self.server.metastore().table_exists(&db, &tname) {
            if if_exists {
                return Ok(QueryResult::message("nothing to drop"));
            }
            return Err(HiveError::Catalog(format!("table not found: {db}.{tname}")));
        }
        let qname = format!("{db}.{tname}");
        // DROP takes an exclusive lock (§3.2).
        let txn = self.server.metastore().open_txn();
        self.server
            .metastore()
            .acquire_lock(txn, LockKey::table(&qname), LockMode::Exclusive)?;
        let table = self.server.metastore().drop_table(&db, &tname)?;
        let _ = self.server.fs().delete_dir(&DfsPath::new(&table.location));
        if let Some(h) = &table.storage_handler {
            if let Ok(handler) = self.server.inner.registry.get(h) {
                let _ = handler.on_table_dropped(&table);
            }
        }
        self.server.metastore().commit_txn(txn)?;
        Ok(QueryResult::message(format!("dropped {qname}")))
    }

    // ---- DML ---------------------------------------------------------------

    pub(crate) fn run_insert(&self, ins: ast::Insert) -> Result<QueryResult> {
        let (db, name) = self.resolve(&ins.table);
        let table = self.server.metastore().get_table(&db, &name)?;
        let conf = self.server.conf();

        // Evaluate the source into rows over the full insert schema
        // (data columns then partition columns).
        let full = table.full_schema();
        let rows: Vec<Row> = match &ins.source {
            ast::InsertSource::Values(rows) => {
                let mut out = Vec::with_capacity(rows.len());
                for r in rows {
                    let mut vals = Vec::with_capacity(r.len());
                    for e in r {
                        vals.push(eval_const_ast(e)?);
                    }
                    out.push(Row::new(vals));
                }
                out
            }
            ast::InsertSource::Query(q) => {
                let planned = self.plan_query_fb(q, &conf, &HashMap::new())?;
                let (batch, _) = self
                    .execute_plan_with_retry(q, &planned, &conf, 1.0)
                    .map(|(b, t, _, _)| (b, t))?;
                batch.to_rows()
            }
        };
        // Column mapping.
        let targets: Vec<usize> = match &ins.columns {
            Some(cols) => cols
                .iter()
                .map(|c| full.index_of_required(c))
                .collect::<Result<Vec<_>>>()?,
            None => (0..full.len()).collect(),
        };
        let mut full_rows: Vec<Row> = Vec::with_capacity(rows.len());
        for r in rows {
            if r.len() != targets.len() {
                return Err(HiveError::Analysis(format!(
                    "INSERT arity mismatch: {} values for {} columns",
                    r.len(),
                    targets.len()
                )));
            }
            let mut vals = vec![Value::Null; full.len()];
            for (v, &t) in r.into_values().into_iter().zip(&targets) {
                vals[t] = v.cast_to(&full.field(t).data_type)?;
            }
            // NOT NULL enforcement.
            for (i, f) in full.fields().iter().enumerate() {
                if !f.nullable && vals[i].is_null() {
                    return Err(HiveError::Execution(format!(
                        "NULL for NOT NULL column {}",
                        f.name
                    )));
                }
            }
            full_rows.push(Row::new(vals));
        }
        self.insert_full_rows(&db, &name, &table, full_rows)
    }

    /// Bulk-load pre-built rows into a table (the benchmark loaders'
    /// fast path; equivalent to one big INSERT...VALUES transaction).
    /// Rows use the full schema: data columns then partition columns.
    pub fn bulk_insert(&self, table_name: &str, rows: Vec<Row>) -> Result<QueryResult> {
        let (db, name) = match table_name.split_once('.') {
            Some((d, n)) => (d.to_string(), n.to_string()),
            None => (self.current_db(), table_name.to_string()),
        };
        let table = self.server.metastore().get_table(&db, &name)?;
        let full = table.full_schema();
        for r in &rows {
            if r.len() != full.len() {
                return Err(HiveError::Analysis(format!(
                    "bulk_insert arity mismatch: {} values for {} columns",
                    r.len(),
                    full.len()
                )));
            }
        }
        self.insert_full_rows(&db, &name, &table, rows)
    }

    fn insert_full_rows(
        &self,
        db: &str,
        name: &str,
        table: &Table,
        full_rows: Vec<Row>,
    ) -> Result<QueryResult> {
        self.insert_full_rows_txn(db, name, table, full_rows, None)
    }

    /// Insert rows, either inside `in_txn` (multi-insert: several tables
    /// share one transaction, §3.2) or in a fresh auto-committed one.
    fn insert_full_rows_txn(
        &self,
        db: &str,
        name: &str,
        table: &Table,
        full_rows: Vec<Row>,
        in_txn: Option<TxnId>,
    ) -> Result<QueryResult> {
        let conf = self.server.conf();
        let affected = full_rows.len() as u64;

        if table.storage_handler.is_some() {
            // Federated write through the output format (§6.1).
            let handler = self
                .server
                .inner
                .registry
                .get(table.storage_handler.as_deref().unwrap())?;
            let batch = VectorBatch::from_rows(&table.schema, &full_rows)?;
            handler.write(table, &batch)?;
            return Ok(QueryResult {
                affected_rows: affected,
                message: Some(format!("wrote {affected} rows via storage handler")),
                ..QueryResult::empty()
            });
        }

        let qname = table.qualified_name();
        let (txn, auto_commit) = match in_txn {
            Some(t) => (t, false),
            None => (self.server.metastore().open_txn(), true),
        };
        let wid = self.server.metastore().allocate_write_id(txn, &qname)?;
        let data_cols = table.schema.len();

        // Route rows to partitions (dynamic partitioning).
        let mut by_partition: HashMap<Vec<String>, (Vec<Value>, Vec<Row>)> = HashMap::new();
        for r in full_rows {
            let vals = r.into_values();
            let part_values: Vec<Value> = vals[data_cols..].to_vec();
            let part_key: Vec<String> = part_values.iter().map(|v| v.to_string()).collect();
            let data_row = Row::new(vals[..data_cols].to_vec());
            by_partition
                .entry(part_key)
                .or_insert_with(|| (part_values, Vec::new()))
                .1
                .push(data_row);
        }
        let mut stats_delta = TableStats::new(data_cols);
        for (_, (part_values, rows)) in by_partition {
            let dir = if table.is_partitioned() {
                let info = self
                    .server
                    .metastore()
                    .add_partition(db, name, part_values.clone())?;
                // Shared lock at partition granularity (§3.2).
                self.server.metastore().acquire_lock(
                    txn,
                    LockKey::partition(&qname, table.partition_dir_name(&part_values)),
                    LockMode::Shared,
                )?;
                DfsPath::new(&info.location)
            } else {
                self.server.metastore().acquire_lock(
                    txn,
                    LockKey::table(&qname),
                    LockMode::Shared,
                )?;
                DfsPath::new(&table.location)
            };
            let batch = VectorBatch::from_rows(&table.schema, &rows)?;
            let writer = AcidWriter::new(self.server.fs(), &dir, table.schema.clone());
            writer.write_insert_delta(wid, &batch)?;
            stats_delta.update_batch(&batch);
        }
        if auto_commit {
            self.server.metastore().commit_txn(txn)?;
        }
        self.server
            .metastore()
            .merge_table_stats(&qname, &stats_delta);
        let maintenance = if auto_commit && conf.auto_compaction {
            self.auto_compact_check(table)?
        } else {
            0
        };
        Ok(QueryResult {
            affected_rows: affected,
            message: Some(format!(
                "inserted {affected} rows{}",
                if maintenance > 0 {
                    format!(" ({maintenance} compaction(s) ran)")
                } else {
                    String::new()
                }
            )),
            ..QueryResult::empty()
        })
    }

    /// `FROM src INSERT INTO t1 ... INSERT INTO t2 ...` — every leg
    /// evaluates against the shared source and commits atomically in
    /// ONE transaction (§3.2: multi-insert is the way to write several
    /// tables transactionally).
    fn run_multi_insert(&self, mi: ast::MultiInsert) -> Result<QueryResult> {
        let conf = self.server.conf();
        let txn = self.server.metastore().open_txn();
        let mut total = 0u64;
        let mut tables: Vec<Table> = Vec::new();
        let result = (|| -> Result<()> {
            for leg in &mi.inserts {
                // Each leg is SELECT <projection> FROM <source> WHERE <filter>.
                let q = ast::Query::simple(ast::QueryBody::Select(Box::new(ast::Select {
                    distinct: false,
                    projection: leg.projection.clone(),
                    from: vec![mi.source.clone()],
                    selection: leg.filter.clone(),
                    group_by: vec![],
                    grouping_sets: None,
                    having: None,
                })));
                let (plan, _) = self.plan_query(&q, &conf)?;
                let (batch, _) = self.execute_plan(&plan, &conf)?;
                let (db, name) = self.resolve(&leg.table);
                let table = self.server.metastore().get_table(&db, &name)?;
                let full = table.full_schema();
                let targets: Vec<usize> = match &leg.columns {
                    Some(cols) => cols
                        .iter()
                        .map(|c| full.index_of_required(c))
                        .collect::<Result<Vec<_>>>()?,
                    None => (0..full.len()).collect(),
                };
                let mut full_rows = Vec::with_capacity(batch.num_rows());
                for r in batch.to_rows() {
                    if r.len() != targets.len() {
                        return Err(HiveError::Analysis(format!(
                            "multi-insert arity mismatch for {}: {} values for {} columns",
                            table.qualified_name(),
                            r.len(),
                            targets.len()
                        )));
                    }
                    let mut vals = vec![Value::Null; full.len()];
                    for (v, &t) in r.into_values().into_iter().zip(&targets) {
                        vals[t] = v.cast_to(&full.field(t).data_type)?;
                    }
                    full_rows.push(Row::new(vals));
                }
                let r = self.insert_full_rows_txn(&db, &name, &table, full_rows, Some(txn))?;
                total += r.affected_rows;
                tables.push(table);
            }
            Ok(())
        })();
        match result {
            Ok(()) => {
                self.server.metastore().commit_txn(txn)?;
                if conf.auto_compaction {
                    for t in &tables {
                        self.auto_compact_check(t)?;
                    }
                }
                Ok(QueryResult {
                    affected_rows: total,
                    message: Some(format!(
                        "multi-insert wrote {total} rows across {} tables in one transaction",
                        mi.inserts.len()
                    )),
                    ..QueryResult::empty()
                })
            }
            Err(e) => {
                let _ = self.server.metastore().abort_txn(txn);
                Err(e)
            }
        }
    }

    fn run_update(&self, upd: ast::Update) -> Result<QueryResult> {
        let (db, name) = self.resolve(&upd.table);
        let table = self.server.metastore().get_table(&db, &name)?;
        require_acid(&table, "UPDATE")?;
        let full = table.full_schema();
        // Partition columns cannot be updated.
        for (col, _) in &upd.assignments {
            if table.partition_key_index(col).is_some() {
                return Err(HiveError::Unsupported(format!(
                    "cannot update partition column {col}"
                )));
            }
        }
        let filter = upd
            .filter
            .as_ref()
            .map(|f| lower_table_expr(f, &full))
            .transpose()?;
        let assignments: Vec<(usize, ScalarExpr)> = upd
            .assignments
            .iter()
            .map(|(c, e)| Ok((full.index_of_required(c)?, lower_table_expr(e, &full)?)))
            .collect::<Result<Vec<_>>>()?;

        self.mutate_rows(&table, filter.as_ref(), |old_row| {
            // UPDATE = delete + insert with assignments applied.
            let mut new_vals = old_row.values().to_vec();
            for (col, e) in &assignments {
                new_vals[*col] =
                    eval_scalar(e, old_row.values())?.cast_to(&full.field(*col).data_type)?;
            }
            Ok(Some(Row::new(new_vals)))
        })
    }

    fn run_delete(&self, del: ast::Delete) -> Result<QueryResult> {
        let (db, name) = self.resolve(&del.table);
        let table = self.server.metastore().get_table(&db, &name)?;
        require_acid(&table, "DELETE")?;
        let full = table.full_schema();
        let filter = del
            .filter
            .as_ref()
            .map(|f| lower_table_expr(f, &full))
            .transpose()?;
        self.mutate_rows(&table, filter.as_ref(), |_old| Ok(None))
    }

    /// Shared UPDATE/DELETE machinery: scan matching rows with their
    /// identities, write delete deltas (+ replacement inserts), commit
    /// with first-commit-wins conflict detection.
    fn mutate_rows(
        &self,
        table: &Table,
        filter: Option<&ScalarExpr>,
        mut replace: impl FnMut(&Row) -> Result<Option<Row>>,
    ) -> Result<QueryResult> {
        let qname = table.qualified_name();
        let conf = self.server.conf();
        let txn = self.server.metastore().open_txn();
        let snaps = QuerySnapshots::new(self.server.metastore(), Some(txn));
        let wlist = snaps.write_ids(&qname);
        let wid = self.server.metastore().allocate_write_id(txn, &qname)?;

        let dirs: Vec<(DfsPath, Vec<Value>, Option<String>)> = if table.is_partitioned() {
            table
                .partitions
                .iter()
                .map(|(d, info)| {
                    (
                        DfsPath::new(&info.location),
                        info.values.clone(),
                        Some(d.clone()),
                    )
                })
                .collect()
        } else {
            vec![(DfsPath::new(&table.location), vec![], None)]
        };
        let data_cols = table.schema.len();
        let mut affected = 0u64;
        let mut commit_err: Option<HiveError> = None;
        for (dir, part_values, part_name) in dirs {
            let scan = AcidScan::new(self.server.fs(), &dir, table.schema.clone(), wlist.clone())?;
            let proj: Vec<usize> = (0..data_cols).collect();
            let with_ids = scan.read(&proj, &SearchArgument::new(), true)?;
            let mut victims = Vec::new();
            let mut replacements: Vec<Row> = Vec::new();
            for i in 0..with_ids.num_rows() {
                let row = with_ids.row(i);
                // Full row = data columns + partition constants.
                let mut full_vals = row.values()[hive_acid::ACID_COLS..].to_vec();
                full_vals.extend(part_values.iter().cloned());
                let full_row = Row::new(full_vals);
                let matched = match filter {
                    Some(f) => eval_scalar(f, full_row.values())? == Value::Boolean(true),
                    None => true,
                };
                if !matched {
                    continue;
                }
                affected += 1;
                victims.push(hive_acid::writer::record_id_at(&with_ids, i));
                if let Some(new_row) = replace(&full_row)? {
                    replacements.push(Row::new(new_row.values()[..data_cols].to_vec()));
                }
            }
            if victims.is_empty() {
                continue;
            }
            // Optimistic conflict tracking at partition granularity.
            self.server
                .metastore()
                .add_write_set(txn, &qname, part_name.clone())?;
            let writer = AcidWriter::new(self.server.fs(), &dir, table.schema.clone());
            writer.write_delete_delta(wid, &victims)?;
            if !replacements.is_empty() {
                let batch = VectorBatch::from_rows(&table.schema, &replacements)?;
                writer.write_insert_delta(wid, &batch)?;
            }
        }
        match self.server.metastore().commit_txn(txn) {
            Ok(()) => {}
            Err(e) => commit_err = Some(e),
        }
        if let Some(e) = commit_err {
            return Err(e);
        }
        let maintenance = if conf.auto_compaction {
            self.auto_compact_check(table)?
        } else {
            0
        };
        let _ = maintenance;
        Ok(QueryResult {
            affected_rows: affected,
            message: Some(format!("{affected} rows affected")),
            ..QueryResult::empty()
        })
    }

    fn run_merge(&self, m: ast::Merge) -> Result<QueryResult> {
        let (db, name) = self.resolve(&m.target);
        let table = self.server.metastore().get_table(&db, &name)?;
        require_acid(&table, "MERGE")?;
        let conf = self.server.conf();
        let full = table.full_schema();
        let target_alias = m.target_alias.clone().unwrap_or_else(|| table.name.clone());

        // Evaluate the source as SELECT * FROM <source>.
        let src_query = ast::Query::simple(ast::QueryBody::Select(Box::new(ast::Select {
            distinct: false,
            projection: vec![ast::SelectItem::Wildcard],
            from: vec![m.source.clone()],
            selection: None,
            group_by: vec![],
            grouping_sets: None,
            having: None,
        })));
        let (src_plan, _) = self.plan_query(&src_query, &conf)?;
        let src_schema = src_plan.schema();
        let (src_batch, _) = self.execute_plan(&src_plan, &conf)?;
        let source_alias = match &m.source {
            ast::TableRef::Table { alias, name, .. } => {
                alias.clone().unwrap_or_else(|| name.name.clone())
            }
            ast::TableRef::Subquery { alias, .. } => alias.clone(),
            _ => "src".to_string(),
        };

        // Combined scope: target full schema then source schema.
        let scope = MergeScope {
            target_alias: &target_alias,
            target: &full,
            source_alias: &source_alias,
            source: &src_schema,
        };
        let on = scope.lower(&m.on)?;
        let upd_arm = m
            .when_matched_update
            .as_ref()
            .map(|u| {
                Ok::<_, HiveError>((
                    u.condition.as_ref().map(|c| scope.lower(c)).transpose()?,
                    u.assignments
                        .iter()
                        .map(|(c, e)| Ok((full.index_of_required(c)?, scope.lower(e)?)))
                        .collect::<Result<Vec<_>>>()?,
                ))
            })
            .transpose()?;
        let del_arm = m
            .when_matched_delete
            .as_ref()
            .map(|c| c.as_ref().map(|c| scope.lower(c)).transpose())
            .transpose()?;
        let ins_arm = m
            .when_not_matched_insert
            .as_ref()
            .map(|ins| {
                let cols: Vec<usize> = match &ins.columns {
                    Some(cs) => cs
                        .iter()
                        .map(|c| full.index_of_required(c))
                        .collect::<Result<Vec<_>>>()?,
                    None => (0..full.len()).collect(),
                };
                let exprs = ins
                    .values
                    .iter()
                    .map(|e| scope.lower_source_only(e))
                    .collect::<Result<Vec<_>>>()?;
                Ok::<_, HiveError>((cols, exprs))
            })
            .transpose()?;

        // Scan the target with identities, per partition.
        let qname = table.qualified_name();
        let txn = self.server.metastore().open_txn();
        let snaps = QuerySnapshots::new(self.server.metastore(), Some(txn));
        let wlist = snaps.write_ids(&qname);
        let wid = self.server.metastore().allocate_write_id(txn, &qname)?;
        let data_cols = table.schema.len();
        let dirs: Vec<(DfsPath, Vec<Value>, Option<String>)> = if table.is_partitioned() {
            table
                .partitions
                .iter()
                .map(|(d, i)| (DfsPath::new(&i.location), i.values.clone(), Some(d.clone())))
                .collect()
        } else {
            vec![(DfsPath::new(&table.location), vec![], None)]
        };
        let mut matched_sources = vec![false; src_batch.num_rows()];
        let mut affected = 0u64;
        for (dir, part_values, part_name) in dirs {
            let scan = AcidScan::new(self.server.fs(), &dir, table.schema.clone(), wlist.clone())?;
            let proj: Vec<usize> = (0..data_cols).collect();
            let with_ids = scan.read(&proj, &SearchArgument::new(), true)?;
            let mut victims = Vec::new();
            let mut replacements: Vec<Row> = Vec::new();
            for i in 0..with_ids.num_rows() {
                let row = with_ids.row(i);
                let mut target_vals = row.values()[hive_acid::ACID_COLS..].to_vec();
                target_vals.extend(part_values.iter().cloned());
                // Find matching source rows (nested loop; MERGE sources
                // are small dimension deltas in our workloads).
                let mut any = false;
                #[allow(clippy::needless_range_loop)] // `s` also indexes `src_batch`
                for s in 0..src_batch.num_rows() {
                    let mut combined = target_vals.clone();
                    combined.extend(src_batch.row(s).into_values());
                    if eval_scalar(&on, &combined)? != Value::Boolean(true) {
                        continue;
                    }
                    matched_sources[s] = true;
                    if any {
                        continue; // first source match drives the action
                    }
                    any = true;
                    // WHEN MATCHED arms (update first, then delete).
                    if let Some((cond, assignments)) = &upd_arm {
                        let applies = match cond {
                            Some(c) => eval_scalar(c, &combined)? == Value::Boolean(true),
                            None => true,
                        };
                        if applies {
                            affected += 1;
                            victims.push(hive_acid::writer::record_id_at(&with_ids, i));
                            let mut new_vals = target_vals.clone();
                            for (col, e) in assignments {
                                new_vals[*col] = eval_scalar(e, &combined)?
                                    .cast_to(&full.field(*col).data_type)?;
                            }
                            replacements.push(Row::new(new_vals[..data_cols].to_vec()));
                            continue;
                        }
                    }
                    if let Some(cond) = &del_arm {
                        let applies = match cond {
                            Some(c) => eval_scalar(c, &combined)? == Value::Boolean(true),
                            None => true,
                        };
                        if applies {
                            affected += 1;
                            victims.push(hive_acid::writer::record_id_at(&with_ids, i));
                        }
                    }
                }
            }
            if !victims.is_empty() {
                self.server
                    .metastore()
                    .add_write_set(txn, &qname, part_name.clone())?;
                let writer = AcidWriter::new(self.server.fs(), &dir, table.schema.clone());
                writer.write_delete_delta(wid, &victims)?;
                if !replacements.is_empty() {
                    let batch = VectorBatch::from_rows(&table.schema, &replacements)?;
                    writer.write_insert_delta(wid, &batch)?;
                }
            }
        }
        // WHEN NOT MATCHED THEN INSERT.
        if let Some((cols, exprs)) = &ins_arm {
            let mut new_rows: Vec<Row> = Vec::new();
            #[allow(clippy::needless_range_loop)] // `s` also indexes `src_batch`
            for s in 0..src_batch.num_rows() {
                if matched_sources[s] {
                    continue;
                }
                let src_vals = src_batch.row(s).into_values();
                let mut vals = vec![Value::Null; full.len()];
                for (e, &c) in exprs.iter().zip(cols) {
                    vals[c] = eval_scalar(e, &src_vals)?.cast_to(&full.field(c).data_type)?;
                }
                new_rows.push(Row::new(vals));
                affected += 1;
            }
            if !new_rows.is_empty() {
                // Route through the same partition logic as INSERT.
                let mut by_partition: HashMap<Vec<String>, (Vec<Value>, Vec<Row>)> = HashMap::new();
                for r in new_rows {
                    let vals = r.into_values();
                    let part_values: Vec<Value> = vals[data_cols..].to_vec();
                    let key: Vec<String> = part_values.iter().map(|v| v.to_string()).collect();
                    by_partition
                        .entry(key)
                        .or_insert_with(|| (part_values, Vec::new()))
                        .1
                        .push(Row::new(vals[..data_cols].to_vec()));
                }
                for (_, (part_values, rows)) in by_partition {
                    let dir = if table.is_partitioned() {
                        let info =
                            self.server
                                .metastore()
                                .add_partition(&db, &name, part_values)?;
                        DfsPath::new(&info.location)
                    } else {
                        DfsPath::new(&table.location)
                    };
                    let writer = AcidWriter::new(self.server.fs(), &dir, table.schema.clone());
                    let batch = VectorBatch::from_rows(&table.schema, &rows)?;
                    writer.write_insert_delta(wid, &batch)?;
                }
            }
        }
        self.server.metastore().commit_txn(txn)?;
        if conf.auto_compaction {
            self.auto_compact_check(&table)?;
        }
        Ok(QueryResult {
            affected_rows: affected,
            message: Some(format!("MERGE affected {affected} rows")),
            ..QueryResult::empty()
        })
    }

    fn run_analyze(&self, name: ast::ObjectName) -> Result<QueryResult> {
        let (db, tname) = self.resolve(&name);
        let table = self.server.metastore().get_table(&db, &tname)?;
        let qname = table.qualified_name();
        let snaps = QuerySnapshots::new(self.server.metastore(), None);
        let wlist = snaps.write_ids(&qname);
        let mut stats = TableStats::new(table.schema.len());
        let dirs: Vec<DfsPath> = if table.is_partitioned() {
            table
                .partitions
                .values()
                .map(|i| DfsPath::new(&i.location))
                .collect()
        } else {
            vec![DfsPath::new(&table.location)]
        };
        let proj: Vec<usize> = (0..table.schema.len()).collect();
        for dir in dirs {
            let scan = AcidScan::new(self.server.fs(), &dir, table.schema.clone(), wlist.clone())?;
            let batch = scan.read(&proj, &SearchArgument::new(), false)?;
            stats.update_batch(&batch);
        }
        let rows = stats.row_count;
        self.server.metastore().set_table_stats(&qname, stats);
        Ok(QueryResult::message(format!(
            "computed statistics for {qname}: {rows} rows"
        )))
    }

    // ---- compaction service -------------------------------------------------

    /// Check thresholds (§3.2: "compaction is triggered automatically by
    /// HS2 when certain thresholds are surpassed") and run any queued
    /// work.
    pub(crate) fn auto_compact_check(&self, table: &Table) -> Result<usize> {
        let conf = self.server.conf();
        let qname = table.qualified_name();
        let snaps = QuerySnapshots::new(self.server.metastore(), None);
        let wlist = snaps.write_ids(&qname);
        let dirs: Vec<(Option<String>, DfsPath)> = if table.is_partitioned() {
            table
                .partitions
                .iter()
                .map(|(d, i)| (Some(d.clone()), DfsPath::new(&i.location)))
                .collect()
        } else {
            vec![(None, DfsPath::new(&table.location))]
        };
        for (part, dir) in dirs {
            let snap = resolve_snapshot(self.server.fs(), &dir, &wlist);
            if snap.delta_count() >= conf.compaction_delta_threshold {
                let kind = if snap.base.is_none()
                    || snap.delta_count() >= 2 * conf.compaction_delta_threshold
                {
                    CompactionKind::Major
                } else {
                    CompactionKind::Minor
                };
                self.server
                    .metastore()
                    .submit_compaction(&qname, part, kind);
            }
        }
        self.run_maintenance()
    }

    /// Drain the compaction queue (the HS2 background workers' role).
    pub(crate) fn run_maintenance(&self) -> Result<usize> {
        let mut done = 0;
        while let Some(req) = self.server.metastore().next_compaction() {
            let Some((db, tname)) = req.table.split_once('.') else {
                self.server
                    .metastore()
                    .set_compaction_state(req.id, CompactionState::Failed);
                continue;
            };
            let Ok(table) = self.server.metastore().get_table(db, tname) else {
                self.server
                    .metastore()
                    .set_compaction_state(req.id, CompactionState::Failed);
                continue;
            };
            let dir = match &req.partition {
                Some(p) => match table.partitions.get(p) {
                    Some(i) => DfsPath::new(&i.location),
                    None => {
                        self.server
                            .metastore()
                            .set_compaction_state(req.id, CompactionState::Failed);
                        continue;
                    }
                },
                None => DfsPath::new(&table.location),
            };
            let snaps = QuerySnapshots::new(self.server.metastore(), None);
            let wlist = snaps.write_ids(&req.table);
            let compactor = Compactor::new(self.server.fs(), &dir, table.schema.clone());
            let outcome = match req.kind {
                CompactionKind::Minor => compactor.minor(&wlist),
                CompactionKind::Major => compactor.major(&wlist),
            };
            match outcome {
                Ok(Some(o)) => {
                    self.server
                        .metastore()
                        .set_compaction_state(req.id, CompactionState::ReadyForCleaning);
                    // The cleaner runs once in-flight readers drain; our
                    // queries are synchronous, so immediately.
                    compactor.clean(&o)?;
                    if let Some(base) = o.new_base_wid {
                        self.server
                            .metastore()
                            .truncate_aborted_history(&req.table, base);
                    }
                    self.server
                        .metastore()
                        .set_compaction_state(req.id, CompactionState::Succeeded);
                    done += 1;
                }
                Ok(None) => {
                    self.server
                        .metastore()
                        .set_compaction_state(req.id, CompactionState::Succeeded);
                }
                Err(_) => {
                    self.server
                        .metastore()
                        .set_compaction_state(req.id, CompactionState::Failed);
                }
            }
        }
        Ok(done)
    }
}

fn require_acid(table: &Table, op: &str) -> Result<()> {
    if table.is_acid() {
        Ok(())
    } else {
        Err(HiveError::Unsupported(format!(
            "{op} requires a full-ACID managed table; {} is not",
            table.qualified_name()
        )))
    }
}

fn is_mv_table(ms: &Metastore, qualified: &str) -> bool {
    qualified
        .split_once('.')
        .and_then(|(db, t)| ms.get_table(db, t).ok())
        .map(|t| t.table_type == TableType::MaterializedView)
        .unwrap_or(false)
}

fn convert_constraint(c: &ast::TableConstraintDef) -> hive_metastore::Constraint {
    match c {
        ast::TableConstraintDef::PrimaryKey(cols) => {
            hive_metastore::Constraint::PrimaryKey(cols.clone())
        }
        ast::TableConstraintDef::ForeignKey {
            columns,
            ref_table,
            ref_columns,
        } => hive_metastore::Constraint::ForeignKey {
            columns: columns.clone(),
            ref_table: ref_table.to_string(),
            ref_columns: ref_columns.clone(),
        },
        ast::TableConstraintDef::Unique(cols) => hive_metastore::Constraint::Unique(cols.clone()),
    }
}

/// Is every expression in the plan deterministic (cacheable)?
fn plan_is_deterministic(plan: &LogicalPlan) -> bool {
    let mut det = true;
    plan.visit(&mut |p| {
        let mut check = |e: &ScalarExpr| {
            if !e.is_deterministic() {
                det = false;
            }
        };
        match p {
            LogicalPlan::Filter { predicate, .. } => check(predicate),
            LogicalPlan::Project { exprs, .. } => exprs.iter().for_each(&mut check),
            LogicalPlan::Scan { filters, .. } => filters.iter().for_each(&mut check),
            LogicalPlan::Aggregate {
                group_exprs, aggs, ..
            } => {
                group_exprs.iter().for_each(&mut check);
                for a in aggs {
                    if let Some(arg) = &a.arg {
                        check(arg);
                    }
                }
            }
            _ => {}
        }
    });
    det
}

/// Evaluate a constant AST expression (INSERT VALUES payloads).
fn eval_const_ast(e: &ast::Expr) -> Result<Value> {
    match e {
        ast::Expr::Literal(v) => Ok(v.clone()),
        ast::Expr::Negate(inner) => eval_const_ast(inner)?.neg(),
        ast::Expr::Cast { expr, to } => eval_const_ast(expr)?.cast_to(to),
        ast::Expr::BinaryOp { left, op, right } => {
            hive_optimizer::eval::eval_binary(*op, &eval_const_ast(left)?, &eval_const_ast(right)?)
        }
        other => Err(HiveError::Unsupported(format!(
            "INSERT VALUES requires constant expressions, got {other}"
        ))),
    }
}

/// Lower an AST expression against one table's full schema (UPDATE and
/// DELETE predicates: single table, no subqueries).
pub(crate) fn lower_table_expr(e: &ast::Expr, schema: &Schema) -> Result<ScalarExpr> {
    lower_with(e, &mut |qualifier, name| {
        let _ = qualifier;
        schema.index_of_required(name)
    })
}

/// MERGE name resolution over (target ++ source).
struct MergeScope<'a> {
    target_alias: &'a str,
    target: &'a Schema,
    source_alias: &'a str,
    source: &'a Schema,
}

impl MergeScope<'_> {
    fn lower(&self, e: &ast::Expr) -> Result<ScalarExpr> {
        lower_with(e, &mut |qualifier, name| match qualifier {
            Some(q) if q == self.target_alias => self.target.index_of_required(name),
            Some(q) if q == self.source_alias => self
                .source
                .index_of_required(name)
                .map(|i| i + self.target.len()),
            Some(q) => Err(HiveError::Analysis(format!("unknown alias {q}"))),
            None => match self.target.index_of(name) {
                Some(i) => Ok(i),
                None => self
                    .source
                    .index_of_required(name)
                    .map(|i| i + self.target.len()),
            },
        })
    }

    /// For INSERT arm values: only source columns are in scope, and the
    /// produced expression evaluates against a source row alone.
    fn lower_source_only(&self, e: &ast::Expr) -> Result<ScalarExpr> {
        lower_with(e, &mut |qualifier, name| match qualifier {
            Some(q) if q == self.source_alias => self.source.index_of_required(name),
            None => self.source.index_of_required(name),
            Some(q) => Err(HiveError::Analysis(format!(
                "MERGE insert values may only reference the source ({q} given)"
            ))),
        })
    }
}

/// Generic single-scope AST lowering used by DML paths.
fn lower_with(
    e: &ast::Expr,
    resolve: &mut impl FnMut(Option<&str>, &str) -> Result<usize>,
) -> Result<ScalarExpr> {
    Ok(match e {
        ast::Expr::Literal(v) => ScalarExpr::Literal(v.clone()),
        ast::Expr::Column { qualifier, name } => {
            ScalarExpr::Column(resolve(qualifier.as_deref(), name)?)
        }
        ast::Expr::BinaryOp { left, op, right } => ScalarExpr::Binary {
            op: *op,
            left: Box::new(lower_with(left, resolve)?),
            right: Box::new(lower_with(right, resolve)?),
        },
        ast::Expr::Not(i) => ScalarExpr::Not(Box::new(lower_with(i, resolve)?)),
        ast::Expr::Negate(i) => ScalarExpr::Negate(Box::new(lower_with(i, resolve)?)),
        ast::Expr::IsNull { expr, negated } => ScalarExpr::IsNull {
            expr: Box::new(lower_with(expr, resolve)?),
            negated: *negated,
        },
        ast::Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let e = lower_with(expr, resolve)?;
            let ge = ScalarExpr::Binary {
                op: ast::BinaryOp::GtEq,
                left: Box::new(e.clone()),
                right: Box::new(lower_with(low, resolve)?),
            };
            let le = ScalarExpr::Binary {
                op: ast::BinaryOp::LtEq,
                left: Box::new(e),
                right: Box::new(lower_with(high, resolve)?),
            };
            let both = ScalarExpr::Binary {
                op: ast::BinaryOp::And,
                left: Box::new(ge),
                right: Box::new(le),
            };
            if *negated {
                ScalarExpr::Not(Box::new(both))
            } else {
                both
            }
        }
        ast::Expr::InList {
            expr,
            list,
            negated,
        } => ScalarExpr::InList {
            expr: Box::new(lower_with(expr, resolve)?),
            list: list
                .iter()
                .map(|i| lower_with(i, resolve))
                .collect::<Result<Vec<_>>>()?,
            negated: *negated,
        },
        ast::Expr::Like {
            expr,
            pattern,
            negated,
        } => ScalarExpr::Like {
            expr: Box::new(lower_with(expr, resolve)?),
            pattern: Box::new(lower_with(pattern, resolve)?),
            negated: *negated,
        },
        ast::Expr::Case {
            operand,
            branches,
            else_expr,
        } => ScalarExpr::Case {
            operand: operand
                .as_ref()
                .map(|o| lower_with(o, resolve).map(Box::new))
                .transpose()?,
            branches: branches
                .iter()
                .map(|(c, r)| Ok((lower_with(c, resolve)?, lower_with(r, resolve)?)))
                .collect::<Result<Vec<_>>>()?,
            else_expr: else_expr
                .as_ref()
                .map(|x| lower_with(x, resolve).map(Box::new))
                .transpose()?,
        },
        ast::Expr::Cast { expr, to } => ScalarExpr::Cast {
            expr: Box::new(lower_with(expr, resolve)?),
            to: to.clone(),
        },
        ast::Expr::Extract { field, expr } => ScalarExpr::Extract {
            field: *field,
            expr: Box::new(lower_with(expr, resolve)?),
        },
        ast::Expr::Function { name, args, .. } => {
            match hive_optimizer::expr::BuiltinFunc::from_name(name) {
                Some(func) => ScalarExpr::Func {
                    func,
                    args: args
                        .iter()
                        .map(|a| lower_with(a, resolve))
                        .collect::<Result<Vec<_>>>()?,
                },
                None => {
                    return Err(HiveError::Unsupported(format!(
                        "function {name} not allowed in DML expressions"
                    )))
                }
            }
        }
        other => {
            return Err(HiveError::Unsupported(format!(
                "unsupported expression in DML: {other}"
            )))
        }
    })
}
