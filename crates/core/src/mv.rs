//! Materialized-view lifecycle (paper §4.4): creation, rebuild, and
//! the freshness/staleness rules deciding which views are usable for
//! rewriting under the current snapshot.

use crate::driver::QuerySnapshots;
use crate::session::{QueryResult, Session};
use hive_common::{HiveError, Result, VectorBatch};
use hive_dfs::DfsPath;
use hive_metastore::{MaterializedViewInfo, TableBuilder, TableType};
use hive_optimizer::mv_rewrite::UsableView;
use hive_optimizer::plan::LogicalPlan;
use hive_optimizer::{Analyzer, MetastoreCatalog};
use hive_sql as ast;
use std::collections::BTreeMap;

/// Wall-clock millis (staleness windows).
fn now_millis() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Table property defining the allowed staleness window, e.g.
/// `'rewriting.time.window' = '600000'` (milliseconds) — the paper's
/// "define a window for data staleness allowed in the materialized view
/// definition using a table property".
pub const STALENESS_PROP: &str = "rewriting.time.window";

/// `CREATE MATERIALIZED VIEW ... AS SELECT ...`
pub(crate) fn create_view(
    session: &Session,
    cmv: ast::CreateMaterializedView,
) -> Result<QueryResult> {
    let db = cmv.name.db.clone().unwrap_or_else(|| session.current_db());
    let name = cmv.name.name.clone();
    let ms = session.server.metastore();
    if ms.table_exists(&db, &name) {
        if cmv.if_not_exists {
            return Ok(QueryResult::message(format!("{db}.{name} exists")));
        }
        return Err(HiveError::Catalog(format!(
            "materialized view exists: {db}.{name}"
        )));
    }
    let conf = session.server.conf();
    // Plan + execute the definition.
    let (plan, _) = session.plan_query(&cmv.query, &conf)?;
    let (batch, _) = session.execute_plan(&plan, &conf)?;
    let sources = plan.referenced_tables();
    let snapshots: BTreeMap<String, u64> = sources
        .iter()
        .map(|t| (t.clone(), ms.table_write_hwm(t).raw()))
        .collect();
    let staleness = cmv
        .properties
        .iter()
        .find(|(k, _)| k == STALENESS_PROP)
        .and_then(|(_, v)| v.parse::<u64>().ok());
    let info = MaterializedViewInfo {
        definition: render_query(&cmv.query),
        source_tables: sources.clone(),
        source_snapshots: snapshots,
        last_rebuild_millis: now_millis(),
        staleness_window_millis: staleness,
        rewrite_enabled: true,
    };
    let mut builder = TableBuilder::new(&db, &name, batch.schema().clone()).mv_info(info);
    for (k, v) in &cmv.properties {
        builder = builder.property(k, v);
    }
    if let Some(h) = &cmv.stored_by {
        // MV stored in an external system (§4.4: "they can be stored …
        // in other supported systems").
        builder = builder.stored_by(h);
    }
    let mut table = builder.build();
    // `stored_by` resets the table type; restore MV identity.
    table.table_type = TableType::MaterializedView;
    if let Some(h) = &cmv.stored_by {
        let handler = session.server.inner.registry.get(h)?;
        handler.on_table_created(&mut table)?;
    }
    let qname = table.qualified_name();
    let rows = batch.num_rows() as u64;
    ms.create_table(table.clone())?;
    write_contents(session, &table, &batch)?;
    let mut stats = hive_metastore::TableStats::new(batch.num_columns());
    stats.update_batch(&batch);
    ms.set_table_stats(&qname, stats);
    Ok(QueryResult {
        affected_rows: rows,
        message: Some(format!("created materialized view {qname} ({rows} rows)")),
        ..QueryResult::empty()
    })
}

/// Write MV contents (native base write or storage-handler write).
fn write_contents(
    session: &Session,
    table: &hive_metastore::Table,
    batch: &VectorBatch,
) -> Result<()> {
    let ms = session.server.metastore();
    if let Some(h) = &table.storage_handler {
        let handler = session.server.inner.registry.get(h)?;
        return handler.write(table, batch);
    }
    let qname = table.qualified_name();
    let txn = ms.open_txn();
    let wid = ms.allocate_write_id(txn, &qname)?;
    let writer = hive_acid::AcidWriter::new(
        session.server.fs(),
        &DfsPath::new(&table.location),
        table.schema.clone(),
    );
    writer.write_insert_delta(wid, batch)?;
    ms.commit_txn(txn)
}

/// `ALTER MATERIALIZED VIEW name REBUILD`.
///
/// Per §4.4, Hive attempts an incremental rebuild and falls back to full
/// rebuild. Here: SPJ views over insert-only sources rebuild
/// incrementally (an INSERT of just the new records); SPJA views and
/// views whose sources saw updates/deletes rebuild fully.
pub(crate) fn rebuild(session: &Session, name: &ast::ObjectName) -> Result<QueryResult> {
    let db = name.db.clone().unwrap_or_else(|| session.current_db());
    let ms = session.server.metastore();
    let table = ms.get_table(&db, &name.name)?;
    let info = table.mv_info.clone().ok_or_else(|| {
        HiveError::Catalog(format!("{db}.{} is not a materialized view", name.name))
    })?;
    let conf = session.server.conf();
    let query = hive_sql::parse_sql(&info.definition)?;
    let ast::Statement::Query(q) = query else {
        return Err(HiveError::Catalog("corrupt MV definition".into()));
    };
    let (plan, _) = session.plan_query(&q, &conf)?;

    // Incremental eligibility: SPJ definition + insert-only source
    // changes (no delete deltas past the recorded snapshot).
    let is_spj = !plan_has_aggregate(&plan);
    let insert_only = sources_insert_only(session, &info)?;
    let incremental = is_spj && insert_only && table.storage_handler.is_none();

    let mode;
    if incremental {
        // Read only records newer than the recorded snapshot: a snapshot
        // list that hides everything at or below the old high watermark.
        let (batch, _) = execute_with_floor(session, &plan, &conf, &info)?;
        mode = format!("incremental (+{} rows)", batch.num_rows());
        if batch.num_rows() > 0 {
            write_contents(session, &table, &batch)?;
            let mut delta = hive_metastore::TableStats::new(batch.num_columns());
            delta.update_batch(&batch);
            ms.merge_table_stats(&table.qualified_name(), &delta);
        }
    } else {
        // Full rebuild: recompute and replace.
        let (batch, _) = session.execute_plan(&plan, &conf)?;
        mode = format!("full ({} rows)", batch.num_rows());
        if table.storage_handler.is_none() {
            // Drop old contents, write fresh.
            let _ = session
                .server
                .fs()
                .delete_dir(&DfsPath::new(&table.location));
            write_contents(session, &table, &batch)?;
        } else {
            write_contents(session, &table, &batch)?;
        }
        let mut stats = hive_metastore::TableStats::new(batch.num_columns());
        stats.update_batch(&batch);
        ms.set_table_stats(&table.qualified_name(), stats);
    }
    // Refresh the snapshot metadata.
    let snapshots: BTreeMap<String, u64> = info
        .source_tables
        .iter()
        .map(|t| (t.clone(), ms.table_write_hwm(t).raw()))
        .collect();
    ms.update_mv_info(
        &db,
        &name.name,
        MaterializedViewInfo {
            source_snapshots: snapshots,
            last_rebuild_millis: now_millis(),
            ..info
        },
    )?;
    Ok(QueryResult::message(format!(
        "rebuilt {db}.{} — {mode}",
        name.name
    )))
}

/// Execute the MV definition over only the records above the recorded
/// snapshot (the incremental-maintenance read, §4.4: "the materialized
/// view definition is enriched with filter conditions on the WriteId
/// column value of each table scanned").
fn execute_with_floor(
    session: &Session,
    plan: &LogicalPlan,
    conf: &hive_common::HiveConf,
    info: &MaterializedViewInfo,
) -> Result<(VectorBatch, hive_exec::NodeTrace)> {
    struct FloorSnapshots<'a> {
        base: QuerySnapshots<'a>,
        floors: &'a BTreeMap<String, u64>,
    }
    impl hive_exec::SnapshotProvider for FloorSnapshots<'_> {
        fn write_ids(&self, table: &str) -> hive_metastore::ValidWriteIdList {
            let mut w = self.base.write_ids(table);
            if let Some(&floor) = self.floors.get(table) {
                // Mark everything at or below the floor invalid-for-read
                // by treating it as aborted history (read-side only).
                for wid in 1..=floor {
                    w.aborted.insert(hive_common::WriteId(wid));
                }
            }
            w
        }
    }
    let snaps = FloorSnapshots {
        base: QuerySnapshots::new(session.server.metastore(), None),
        floors: &info.source_snapshots,
    };
    let scanner = session.server.federation_scanner();
    let mut ctx = hive_exec::ExecContext::new(
        session.server.fs(),
        session.server.metastore(),
        conf,
        Some(session.server.llap()),
        &snaps,
        Some(&scanner),
    );
    ctx.prepare_shared_work(plan);
    hive_exec::execute(plan, &ctx)
}

fn plan_has_aggregate(plan: &LogicalPlan) -> bool {
    let mut found = false;
    plan.visit(&mut |p| {
        if matches!(p, LogicalPlan::Aggregate { .. }) {
            found = true;
        }
    });
    found
}

/// Have the MV's sources only gained inserts since the snapshot? (Any
/// delete delta above the recorded floor forces a full rebuild.)
fn sources_insert_only(session: &Session, info: &MaterializedViewInfo) -> Result<bool> {
    for source in &info.source_tables {
        let Some((db, tname)) = source.split_once('.') else {
            continue;
        };
        let table = session.server.metastore().get_table(db, tname)?;
        let floor = info.source_snapshots.get(source).copied().unwrap_or(0);
        let dirs: Vec<DfsPath> = if table.is_partitioned() {
            table
                .partitions
                .values()
                .map(|i| DfsPath::new(&i.location))
                .collect()
        } else {
            vec![DfsPath::new(&table.location)]
        };
        for dir in dirs {
            for entry in session.server.fs().list(&dir) {
                if let Some(d) = hive_acid::AcidDir::parse(&entry.path) {
                    if d.kind == hive_acid::DirKind::DeleteDelta && d.max_wid.raw() > floor {
                        return Ok(false);
                    }
                }
            }
        }
    }
    Ok(true)
}

/// Views usable for rewriting under the current state: fresh views, plus
/// stale views still inside their declared staleness window.
pub(crate) fn usable_views(session: &Session) -> Result<Vec<UsableView>> {
    let ms = session.server.metastore();
    let mut out = Vec::new();
    for table in ms.rewrite_enabled_views() {
        let Some(info) = &table.mv_info else {
            continue;
        };
        let fresh = info.source_tables.iter().all(|t| {
            ms.table_write_hwm(t).raw() == info.source_snapshots.get(t).copied().unwrap_or(0)
        });
        let within_window = info
            .staleness_window_millis
            .is_some_and(|w| now_millis().saturating_sub(info.last_rebuild_millis) <= w);
        if !(fresh || within_window) {
            continue;
        }
        // Analyze the definition for the rewriter.
        let Ok(ast::Statement::Query(q)) = hive_sql::parse_sql(&info.definition) else {
            continue;
        };
        let cat = MetastoreCatalog::new(ms.clone(), table.db.clone());
        let Ok(plan) = Analyzer::new(&cat).analyze_query(&q) else {
            continue;
        };
        // Normalize like the query side will be (pushdown etc.).
        let Ok(plan) = hive_optimizer::Optimizer::exhaustive(plan) else {
            continue;
        };
        out.push(UsableView {
            table: table.clone(),
            plan,
        });
    }
    Ok(out)
}

/// Render a query AST back to SQL-ish text for storage. The parser
/// accepts everything we emit via Debug round-trip storage; we keep the
/// original text when available instead.
fn render_query(q: &ast::Query) -> String {
    // The AST has no pretty-printer; store a canonical debug form that
    // `parse_sql` cannot read — so instead re-render from the minimal
    // subset we need. To stay faithful and simple, we store the original
    // text captured at parse time when the caller provides it; as a
    // fallback we re-render SELECT bodies.
    crate::mv::render::query_sql(q)
}

pub(crate) mod render {
    //! Minimal AST → SQL rendering (enough to round-trip MV definitions
    //! through the parser).

    use hive_sql as ast;

    pub fn query_sql(q: &ast::Query) -> String {
        let mut s = String::new();
        if !q.ctes.is_empty() {
            s.push_str("WITH ");
            for (i, (name, cq)) in q.ctes.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{name} AS ({})", query_sql(cq)));
            }
            s.push(' ');
        }
        s.push_str(&body_sql(&q.body));
        if !q.order_by.is_empty() {
            s.push_str(" ORDER BY ");
            let parts: Vec<String> = q
                .order_by
                .iter()
                .map(|o| format!("{}{}", expr_sql(&o.expr), if o.asc { "" } else { " DESC" }))
                .collect();
            s.push_str(&parts.join(", "));
        }
        if let Some(n) = q.limit {
            s.push_str(&format!(" LIMIT {n}"));
        }
        s
    }

    fn body_sql(b: &ast::QueryBody) -> String {
        match b {
            ast::QueryBody::Select(sel) => select_sql(sel),
            ast::QueryBody::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let kw = match op {
                    ast::SetOperator::Union => "UNION",
                    ast::SetOperator::Intersect => "INTERSECT",
                    ast::SetOperator::Except => "EXCEPT",
                };
                format!(
                    "{} {kw}{} {}",
                    body_sql(left),
                    if *all { " ALL" } else { "" },
                    body_sql(right)
                )
            }
        }
    }

    fn select_sql(sel: &ast::Select) -> String {
        let mut s = String::from("SELECT ");
        if sel.distinct {
            s.push_str("DISTINCT ");
        }
        let items: Vec<String> = sel
            .projection
            .iter()
            .map(|i| match i {
                ast::SelectItem::Wildcard => "*".to_string(),
                ast::SelectItem::QualifiedWildcard(q) => format!("{q}.*"),
                ast::SelectItem::Expr { expr, alias } => match alias {
                    Some(a) => format!("{} AS {a}", expr_sql(expr)),
                    None => expr_sql(expr),
                },
            })
            .collect();
        s.push_str(&items.join(", "));
        if !sel.from.is_empty() {
            s.push_str(" FROM ");
            let froms: Vec<String> = sel.from.iter().map(table_ref_sql).collect();
            s.push_str(&froms.join(", "));
        }
        if let Some(w) = &sel.selection {
            s.push_str(&format!(" WHERE {}", expr_sql(w)));
        }
        if !sel.group_by.is_empty() {
            s.push_str(" GROUP BY ");
            let keys: Vec<String> = sel.group_by.iter().map(expr_sql).collect();
            s.push_str(&keys.join(", "));
        }
        if let Some(h) = &sel.having {
            s.push_str(&format!(" HAVING {}", expr_sql(h)));
        }
        s
    }

    fn table_ref_sql(t: &ast::TableRef) -> String {
        match t {
            ast::TableRef::Table { name, alias } => match alias {
                Some(a) => format!("{name} {a}"),
                None => name.to_string(),
            },
            ast::TableRef::Subquery { query, alias } => {
                format!("({}) {alias}", query_sql(query))
            }
            ast::TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let kw = match kind {
                    ast::JoinKind::Inner => "JOIN",
                    ast::JoinKind::Left => "LEFT JOIN",
                    ast::JoinKind::Right => "RIGHT JOIN",
                    ast::JoinKind::Full => "FULL JOIN",
                    ast::JoinKind::Cross => "CROSS JOIN",
                    ast::JoinKind::LeftSemi => "LEFT SEMI JOIN",
                };
                let mut s = format!("{} {kw} {}", table_ref_sql(left), table_ref_sql(right));
                if let Some(cond) = on {
                    s.push_str(&format!(" ON {}", expr_sql(cond)));
                }
                s
            }
        }
    }

    pub fn expr_sql(e: &ast::Expr) -> String {
        use hive_common::Value;
        match e {
            ast::Expr::Literal(Value::String(s)) => format!("'{}'", s.replace('\'', "''")),
            ast::Expr::Literal(Value::Date(_)) => format!("DATE '{}'", literal_text(e)),
            ast::Expr::Literal(Value::Timestamp(_)) => {
                format!("TIMESTAMP '{}'", literal_text(e))
            }
            ast::Expr::Literal(v) => v.to_string(),
            ast::Expr::Column { qualifier, name } => match qualifier {
                Some(q) => format!("{q}.{name}"),
                None => name.clone(),
            },
            ast::Expr::BinaryOp { left, op, right } => {
                format!("({} {op} {})", expr_sql(left), expr_sql(right))
            }
            ast::Expr::Not(i) => format!("NOT ({})", expr_sql(i)),
            ast::Expr::Negate(i) => format!("-({})", expr_sql(i)),
            ast::Expr::IsNull { expr, negated } => format!(
                "{} IS {}NULL",
                expr_sql(expr),
                if *negated { "NOT " } else { "" }
            ),
            ast::Expr::Between {
                expr,
                low,
                high,
                negated,
            } => format!(
                "{} {}BETWEEN {} AND {}",
                expr_sql(expr),
                if *negated { "NOT " } else { "" },
                expr_sql(low),
                expr_sql(high)
            ),
            ast::Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(expr_sql).collect();
                format!(
                    "{} {}IN ({})",
                    expr_sql(expr),
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            ast::Expr::Like {
                expr,
                pattern,
                negated,
            } => format!(
                "{} {}LIKE {}",
                expr_sql(expr),
                if *negated { "NOT " } else { "" },
                expr_sql(pattern)
            ),
            ast::Expr::Case {
                operand,
                branches,
                else_expr,
            } => {
                let mut s = String::from("CASE");
                if let Some(o) = operand {
                    s.push_str(&format!(" {}", expr_sql(o)));
                }
                for (c, r) in branches {
                    s.push_str(&format!(" WHEN {} THEN {}", expr_sql(c), expr_sql(r)));
                }
                if let Some(x) = else_expr {
                    s.push_str(&format!(" ELSE {}", expr_sql(x)));
                }
                s.push_str(" END");
                s
            }
            ast::Expr::Cast { expr, to } => format!("CAST({} AS {to})", expr_sql(expr)),
            ast::Expr::Extract { field, expr } => {
                format!("EXTRACT({} FROM {})", field_name(field), expr_sql(expr))
            }
            ast::Expr::Function {
                name,
                args,
                distinct,
            } => {
                let a: Vec<String> = args.iter().map(expr_sql).collect();
                format!(
                    "{name}({}{})",
                    if *distinct { "DISTINCT " } else { "" },
                    a.join(", ")
                )
            }
            ast::Expr::Window { .. }
            | ast::Expr::InSubquery { .. }
            | ast::Expr::Exists { .. }
            | ast::Expr::ScalarSubquery(_) => {
                // MV definitions with these shapes are rejected earlier
                // by the rewriter; render a placeholder for diagnostics.
                "/*unrenderable*/ NULL".to_string()
            }
        }
    }

    fn literal_text(e: &ast::Expr) -> String {
        match e {
            ast::Expr::Literal(v) => v.to_string(),
            _ => String::new(),
        }
    }

    fn field_name(f: &hive_common::dates::DateField) -> &'static str {
        use hive_common::dates::DateField::*;
        match f {
            Year => "year",
            Quarter => "quarter",
            Month => "month",
            Day => "day",
            DayOfWeek => "dow",
            Hour => "hour",
            Minute => "minute",
            Second => "second",
        }
    }
}
