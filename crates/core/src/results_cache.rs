//! The query results cache (paper §4.3).
//!
//! Each HS2 instance keeps a cache mapping the resolved query (we key by
//! the analyzed plan's fingerprint, which subsumes the paper's
//! "unqualified table references … resolved before the AST is used to
//! probe the cache") to the result plus the transactional snapshot it
//! was computed under. An entry answers a probe only when none of the
//! participating tables gained new WriteIds since — "if the tables used
//! by the query do not contain new or modified data".
//!
//! The **pending entry** mode protects against a thundering herd of
//! identical queries after a data change: the first miss claims the key,
//! concurrent probers wait for it to fill instead of recomputing.

use hive_common::{VectorBatch, WriteId};
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::Arc;

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum CacheOutcome {
    /// A valid entry; serve these rows.
    Hit(VectorBatch),
    /// No valid entry; the caller must execute and then call
    /// [`QueryResultsCache::fill`] (or [`QueryResultsCache::abandon`]
    /// on failure). The caller holds the pending claim.
    MissClaimed,
    /// Another identical query is computing; this call waited and the
    /// entry arrived.
    HitAfterWait(VectorBatch),
}

#[derive(Debug, Clone)]
struct Entry {
    batch: VectorBatch,
    /// (table, WriteId high watermark) at computation time.
    snapshot: Vec<(String, WriteId)>,
    /// Logical clock for LRU eviction.
    last_used: u64,
}

#[derive(Debug, Default)]
struct Inner {
    entries: HashMap<u64, Entry>,
    pending: HashMap<u64, usize>, // key → waiter epoch marker
    tick: u64,
}

/// The per-server results cache.
#[derive(Debug)]
pub struct QueryResultsCache {
    inner: Mutex<Inner>,
    filled: Condvar,
    capacity: usize,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl QueryResultsCache {
    /// A cache bounded to `capacity` entries.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(QueryResultsCache {
            inner: Mutex::new(Inner::default()),
            filled: Condvar::new(),
            capacity: capacity.max(1),
            hits: Default::default(),
            misses: Default::default(),
        })
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Probe for `key`. `current_hwm(table)` reports the table's current
    /// WriteId high watermark for validity checking.
    pub fn probe(&self, key: u64, current_hwm: impl Fn(&str) -> WriteId) -> CacheOutcome {
        let mut g = self.inner.lock();
        loop {
            g.tick += 1;
            let tick = g.tick;
            if let Some(e) = g.entries.get_mut(&key) {
                let valid = e.snapshot.iter().all(|(t, hwm)| current_hwm(t) == *hwm);
                if valid {
                    e.last_used = tick;
                    let out = e.batch.clone();
                    self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    return CacheOutcome::Hit(out);
                }
                // Stale: expunge.
                g.entries.remove(&key);
            }
            if g.pending.contains_key(&key) {
                // Thundering-herd protection: wait for the first query
                // to fill the entry, then re-probe.
                self.filled.wait(&mut g);
                continue;
            }
            g.pending.insert(key, 1);
            self.misses
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return CacheOutcome::MissClaimed;
        }
    }

    /// Fill a previously claimed key.
    pub fn fill(&self, key: u64, batch: VectorBatch, snapshot: Vec<(String, WriteId)>) {
        let mut g = self.inner.lock();
        g.pending.remove(&key);
        g.tick += 1;
        let tick = g.tick;
        // LRU eviction.
        while g.entries.len() >= self.capacity {
            if let Some((&victim, _)) = g.entries.iter().min_by_key(|(_, e)| e.last_used) {
                g.entries.remove(&victim);
            } else {
                break;
            }
        }
        g.entries.insert(
            key,
            Entry {
                batch,
                snapshot,
                last_used: tick,
            },
        );
        drop(g);
        self.filled.notify_all();
    }

    /// Release a claim without filling (execution failed or the query is
    /// uncacheable).
    pub fn abandon(&self, key: u64) {
        let mut g = self.inner.lock();
        g.pending.remove(&key);
        drop(g);
        self.filled.notify_all();
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Row, Schema, Value};

    fn batch(v: i64) -> VectorBatch {
        VectorBatch::from_rows(
            &Schema::new(vec![Field::new("x", DataType::BigInt)]),
            &[Row::new(vec![Value::BigInt(v)])],
        )
        .unwrap()
    }

    #[test]
    fn miss_fill_hit() {
        let c = QueryResultsCache::new(8);
        let hwm = |_: &str| WriteId(5);
        assert!(matches!(c.probe(1, hwm), CacheOutcome::MissClaimed));
        c.fill(1, batch(42), vec![("default.t".into(), WriteId(5))]);
        match c.probe(1, hwm) {
            CacheOutcome::Hit(b) => assert_eq!(b.row(0).get(0), &Value::BigInt(42)),
            other => panic!("{other:?}"),
        }
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn invalidated_by_new_writes() {
        let c = QueryResultsCache::new(8);
        assert!(matches!(
            c.probe(1, |_| WriteId(5)),
            CacheOutcome::MissClaimed
        ));
        c.fill(1, batch(1), vec![("default.t".into(), WriteId(5))]);
        // Table advanced to WriteId 6: entry is stale, new claim issued.
        assert!(matches!(
            c.probe(1, |_| WriteId(6)),
            CacheOutcome::MissClaimed
        ));
        assert_eq!(c.len(), 0, "stale entry expunged");
        c.abandon(1);
    }

    #[test]
    fn lru_eviction_bounds_entries() {
        let c = QueryResultsCache::new(2);
        for k in 0..5u64 {
            assert!(matches!(
                c.probe(k, |_| WriteId(0)),
                CacheOutcome::MissClaimed
            ));
            c.fill(k, batch(k as i64), vec![]);
        }
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn pending_entry_blocks_identical_queries() {
        let c = QueryResultsCache::new(8);
        assert!(matches!(
            c.probe(7, |_| WriteId(1)),
            CacheOutcome::MissClaimed
        ));
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || match c2.probe(7, |_: &str| WriteId(1)) {
            CacheOutcome::Hit(b) => b.row(0).get(0).as_i64().unwrap(),
            other => panic!("expected hit after wait, got {other:?}"),
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        c.fill(7, batch(99), vec![("default.t".into(), WriteId(1))]);
        assert_eq!(waiter.join().unwrap(), 99);
        // Only one miss was recorded: the herd was absorbed.
        assert_eq!(c.stats().1, 1);
    }

    #[test]
    fn abandon_releases_waiters() {
        let c = QueryResultsCache::new(8);
        assert!(matches!(
            c.probe(9, |_| WriteId(1)),
            CacheOutcome::MissClaimed
        ));
        let c2 = c.clone();
        let waiter = std::thread::spawn(move || {
            matches!(c2.probe(9, |_: &str| WriteId(1)), CacheOutcome::MissClaimed)
        });
        std::thread::sleep(std::time::Duration::from_millis(50));
        c.abandon(9);
        assert!(waiter.join().unwrap(), "waiter takes over the claim");
        c.abandon(9);
    }
}
