//! The [`HiveServer`]: one process embedding the whole warehouse.

use crate::results_cache::QueryResultsCache;
use crate::session::Session;
use hive_common::HiveConf;
use hive_dfs::DistFs;
use hive_exec::SimCostModel;
use hive_federation::{
    DruidStorageHandler, DruidStore, FederationScanner, HandlerRegistry, JdbcBackend,
    JdbcStorageHandler,
};
use hive_llap::{LlapDaemons, WorkloadManager};
use hive_metastore::Metastore;
use parking_lot::RwLock;
use std::sync::Arc;

/// The embedded warehouse server (HiveServer2 + HMS + LLAP + federated
/// systems, wired together). Cheap to clone; clones share state.
#[derive(Clone)]
pub struct HiveServer {
    pub(crate) inner: Arc<ServerInner>,
}

pub(crate) struct ServerInner {
    pub fs: DistFs,
    pub ms: Metastore,
    pub conf: RwLock<HiveConf>,
    pub llap: LlapDaemons,
    pub druid: DruidStore,
    pub jdbc: JdbcBackend,
    pub registry: HandlerRegistry,
    pub results_cache: Arc<QueryResultsCache>,
    /// Internally synchronized and cheap to clone — admission slots
    /// hold a clone so releases stay exact across plan swaps.
    pub workload: WorkloadManager,
    pub sim_model: SimCostModel,
    /// Monotonic counter giving each budgeted query its own spill
    /// directory under `/tmp/hive/spill/`.
    pub spill_seq: std::sync::atomic::AtomicU64,
}

impl HiveServer {
    /// Boot a server with the given configuration.
    pub fn new(conf: HiveConf) -> Self {
        let fs = DistFs::new();
        // One fault injector for the whole stack (DFS reads, LLAP
        // daemons, executor fragments), programmed from the conf's plan.
        fs.fault().set_plan(conf.fault.clone());
        let ms = Metastore::new();
        let llap = LlapDaemons::new(
            conf.cluster_nodes,
            conf.slots_per_node,
            conf.llap_cache_bytes,
            conf.lrfu_lambda,
        );
        llap.attach_fault(fs.fault().clone());
        let druid = DruidStore::new();
        let jdbc = JdbcBackend::new();
        let mut registry = HandlerRegistry::new();
        registry.register(Arc::new(DruidStorageHandler::new(druid.clone())));
        registry.register(Arc::new(JdbcStorageHandler::new(jdbc.clone())));
        let results_cache = QueryResultsCache::new(conf.results_cache_entries);
        HiveServer {
            inner: Arc::new(ServerInner {
                fs,
                ms,
                conf: RwLock::new(conf),
                llap,
                druid,
                jdbc,
                registry,
                results_cache,
                workload: WorkloadManager::new(),
                sim_model: SimCostModel::default(),
                spill_seq: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    /// Open a session (the JDBC/ODBC connection analogue).
    pub fn session(&self) -> Session {
        Session::new(self.clone(), "default", "anonymous", None)
    }

    /// Open a session for a specific user/application (workload-manager
    /// mappings route on these).
    pub fn session_for(&self, user: &str, application: Option<&str>) -> Session {
        Session::new(self.clone(), "default", user, application)
    }

    /// Open a session carrying group membership — the workload
    /// manager's `Mapping::Group` entries route on these, between user
    /// and application mappings in precedence.
    pub fn session_with_groups(
        &self,
        user: &str,
        application: Option<&str>,
        groups: &[String],
    ) -> Session {
        Session::with_groups(self.clone(), "default", user, application, groups)
    }

    /// The simulated file system.
    pub fn fs(&self) -> &DistFs {
        &self.inner.fs
    }

    /// The metastore.
    pub fn metastore(&self) -> &Metastore {
        &self.inner.ms
    }

    /// The LLAP daemon fleet.
    pub fn llap(&self) -> &LlapDaemons {
        &self.inner.llap
    }

    /// The Druid service (benchmark/bootstrap access).
    pub fn druid(&self) -> &DruidStore {
        &self.inner.druid
    }

    /// The JDBC backend (benchmark/bootstrap access).
    pub fn jdbc(&self) -> &JdbcBackend {
        &self.inner.jdbc
    }

    /// The results cache.
    pub fn results_cache(&self) -> &QueryResultsCache {
        &self.inner.results_cache
    }

    /// The next spill-directory sequence number.
    pub(crate) fn next_spill_seq(&self) -> u64 {
        self.inner
            .spill_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }

    /// A snapshot of the current configuration.
    pub fn conf(&self) -> HiveConf {
        self.inner.conf.read().clone()
    }

    /// Update the configuration (takes effect for subsequent queries).
    pub fn set_conf(&self, f: impl FnOnce(&mut HiveConf)) {
        let fault_plan = {
            let mut conf = self.inner.conf.write();
            f(&mut conf);
            conf.fault.clone()
        };
        // Keep the stack-wide injector in sync with the conf's plan
        // (a changed plan resets attempt counters for a fresh replay).
        if self.inner.fs.fault().plan() != fault_plan {
            self.inner.fs.fault().set_plan(fault_plan);
        }
    }

    /// Activate a workload-management resource plan (§5.2). The plan is
    /// validated first (unknown pools in mappings, triggers, move
    /// targets, or the default pool are rejected); queries already
    /// admitted keep their slots.
    pub fn activate_resource_plan(&self, plan: hive_llap::ResourcePlan) -> hive_common::Result<()> {
        self.inner.workload.activate(plan)
    }

    /// Workload-manager access.
    pub fn workload<T>(&self, f: impl FnOnce(&WorkloadManager) -> T) -> T {
        f(&self.inner.workload)
    }

    /// The federation scanner used during execution.
    pub(crate) fn federation_scanner(&self) -> FederationScanner {
        FederationScanner::new(self.inner.registry.clone())
    }
}
