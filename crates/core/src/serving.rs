//! Concurrent multi-tenant serving (§5.2 under traffic): N query
//! streams driven through workload-manager admission on one simulated
//! timeline.
//!
//! BigBench-style throughput runs need concurrency, but real thread
//! concurrency would destroy the determinism every test in this repo
//! leans on (LLAP cache state, results-cache probes, and fault-plan
//! rolls are all order-sensitive). The serving layer is therefore a
//! **discrete-event simulator over sim-time**: queries *execute for
//! real* — serialized in deterministic event order, at their virtual
//! admission instant — while everything concurrent about them is
//! computed on the virtual timeline:
//!
//! * **admission queues** — a saturated pool no longer hard-rejects;
//!   the query waits (FIFO per pool) up to
//!   [`ServingOptions::admission_max_wait_ms`], woken when a slot
//!   frees, rejected at its deadline;
//! * **fair sharing** — in-flight queries divide the cluster's executor
//!   slots max-min fairly against their traced
//!   [`parallel width`](crate::QueryResult::parallel_width): a query
//!   needing 30 of 80 slots runs at full speed alone, and at 80/3 slots
//!   ≈ a third of its solo rate when three such queries overlap. Each
//!   in-flight query also holds a real [`hive_llap::ExecutorLease`]
//!   sized to its width for its virtual lifetime, so the morsel
//!   executor of a query admitted *now* genuinely sees a busier fleet;
//! * **triggers on the timeline** — kill/move triggers fire AT
//!   `admission + threshold` as events, not post-hoc: a kill ends the
//!   query at the threshold (its remaining work is discarded and its
//!   slots free immediately), a move transfers pool accounting
//!   mid-flight (capacity-validated), re-arming the target pool's
//!   trigger chain.
//!
//! Because event order is a pure function of the inputs, results and
//! the whole sim-time schedule replay exactly for a fixed
//! `HIVE_FAULT_SEED`, regardless of how many streams run.

use crate::server::HiveServer;
use crate::session::{QueryResult, Session};
use hive_common::{EngineVersion, HiveError};
use hive_llap::{AdmissionSlot, AdmitOutcome, ExecutorLease, Trigger, TriggerAction};
use hive_sql as ast;
use std::collections::{BinaryHeap, VecDeque};

/// One tenant's scripted query stream.
#[derive(Debug, Clone)]
pub struct QueryStream {
    /// Display name (reports/debugging).
    pub name: String,
    pub user: String,
    pub application: Option<String>,
    pub groups: Vec<String>,
    /// Statements submitted back-to-back: each is submitted the instant
    /// the previous one resolves (the BigBench throughput-run shape).
    pub statements: Vec<String>,
}

/// Serving-layer knobs.
#[derive(Debug, Clone)]
pub struct ServingOptions {
    /// How long a query may wait in its pool's admission queue before
    /// being rejected (sim-time ms).
    pub admission_max_wait_ms: f64,
}

impl Default for ServingOptions {
    fn default() -> Self {
        ServingOptions {
            admission_max_wait_ms: 60_000.0,
        }
    }
}

/// How one submitted statement resolved.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryVerdict {
    Completed,
    /// A kill trigger fired `at_ms` after admission.
    Killed {
        at_ms: f64,
        trigger: String,
    },
    /// The admission-queue deadline passed before a slot freed.
    Rejected {
        waited_ms: f64,
    },
    /// The statement itself failed (parse/analysis/execution error).
    Failed {
        error: String,
    },
}

/// Full accounting for one submitted statement.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Index into the `streams` slice passed to [`run_streams`].
    pub stream: usize,
    /// Statement index within the stream.
    pub index: usize,
    /// Pool the query was admitted into (`None`: never admitted, or a
    /// non-SELECT statement that bypasses admission).
    pub pool: Option<String>,
    /// Admitted via borrowed idle capacity from a foreign pool.
    pub borrowed: bool,
    pub submitted_ms: f64,
    pub admitted_ms: Option<f64>,
    pub finished_ms: f64,
    /// Time spent queued for admission.
    pub wait_ms: f64,
    /// The query's solo simulated runtime (what `sim_ms` reports from a
    /// serial run).
    pub solo_sim_ms: f64,
    /// Slot demand used by the fair-share model.
    pub width: u64,
    /// Pool moves fired by triggers: `(ms after admission, target)`.
    pub moves: Vec<(f64, String)>,
    pub verdict: QueryVerdict,
    /// The real result (completed statements only).
    pub result: Option<QueryResult>,
}

/// Aggregate report for one serving run.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Per-statement outcomes, sorted by (stream, index).
    pub outcomes: Vec<QueryOutcome>,
    /// Timeline span: last resolution instant (sim-time ms).
    pub span_ms: f64,
    pub completed: usize,
    pub killed: usize,
    pub rejected: usize,
    pub failed: usize,
    /// Total trigger-driven pool moves.
    pub moves: usize,
    pub total_wait_ms: f64,
    pub max_wait_ms: f64,
    /// Completed queries per hour of sim-time.
    pub queries_per_hour: f64,
}

impl ServingReport {
    /// Outcomes of one stream, in submission order.
    pub fn stream(&self, idx: usize) -> Vec<&QueryOutcome> {
        self.outcomes.iter().filter(|o| o.stream == idx).collect()
    }
}

// ---------------------------------------------------------------------
// Event loop internals
// ---------------------------------------------------------------------

/// Completion-detection slack for f64 remaining-work arithmetic.
const EPS_MS: f64 = 1e-6;

#[derive(Debug)]
enum EventKind {
    /// Submit the next statement of a stream.
    Submit { stream: usize },
    /// A queued waiter's admission deadline.
    WaitDeadline { token: u64 },
    /// A trigger threshold on an in-flight query.
    Trigger { query: u64, trigger: Trigger },
}

#[derive(Debug)]
struct Event {
    time: f64,
    /// Creation order: the deterministic tie-breaker.
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time.total_cmp(&other.time).is_eq() && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

struct InFlight {
    qid: u64,
    stream: usize,
    index: usize,
    submitted: f64,
    admitted: f64,
    wait_ms: f64,
    slot: AdmissionSlot,
    /// Held for the query's virtual lifetime so concurrently-admitted
    /// queries' morsel executors see a busier fleet.
    _lease: ExecutorLease,
    /// Slot demand (traced parallel width, ≥ 1, ≤ cluster slots).
    demand: f64,
    /// Solo sim-time work left, in ms-at-full-rate.
    remaining: f64,
    /// Current fair-share rate in (0, 1].
    rate: f64,
    result: QueryResult,
    moves: Vec<(f64, String)>,
}

struct Waiter {
    token: u64,
    stream: usize,
    index: usize,
    submitted: f64,
}

/// Drive `streams` through the server's workload manager on one shared
/// simulated timeline (see the module docs for the model). Each stream
/// gets its own session; statements run back-to-back per stream.
pub fn run_streams(
    server: &HiveServer,
    streams: &[QueryStream],
    opts: &ServingOptions,
) -> ServingReport {
    let sessions: Vec<Session> = streams
        .iter()
        .map(|s| {
            Session::with_groups(
                server.clone(),
                "default",
                &s.user,
                s.application.as_deref(),
                &s.groups,
            )
        })
        .collect();
    let capacity = server.conf().total_slots().max(1) as f64;

    let mut heap: BinaryHeap<Event> = BinaryHeap::new();
    let mut seq: u64 = 0;
    let mut next_qid: u64 = 0;
    let mut now: f64 = 0.0;
    let mut next_stmt: Vec<usize> = vec![0; streams.len()];
    let mut inflight: Vec<InFlight> = Vec::new();
    // Per-pool FIFO admission queues, in plan-pool order.
    let pool_order: Vec<String> = server
        .workload(|w| w.active_plan())
        .map(|p| p.pools.iter().map(|pl| pl.name.clone()).collect())
        .unwrap_or_default();
    let mut waiting: Vec<(String, VecDeque<Waiter>)> = pool_order
        .iter()
        .map(|p| (p.clone(), VecDeque::new()))
        .collect();
    let mut next_token: u64 = 0;
    let mut outcomes: Vec<QueryOutcome> = Vec::new();

    macro_rules! push_event {
        ($time:expr, $kind:expr) => {{
            heap.push(Event {
                time: $time,
                seq,
                kind: $kind,
            });
            seq += 1;
        }};
    }

    for s in 0..streams.len() {
        push_event!(0.0, EventKind::Submit { stream: s });
    }

    // Max-min fair (waterfilling) rates: allocate `capacity` slots
    // against each in-flight query's demand; rate = alloc / demand.
    let recompute_rates = |inflight: &mut Vec<InFlight>| {
        let total: f64 = inflight.iter().map(|f| f.demand).sum();
        if total <= capacity {
            for f in inflight.iter_mut() {
                f.rate = 1.0;
            }
            return;
        }
        // Ascending by demand (stable: admission order breaks ties).
        let mut order: Vec<usize> = (0..inflight.len()).collect();
        order.sort_by(|&a, &b| inflight[a].demand.total_cmp(&inflight[b].demand));
        let mut cap_left = capacity;
        let mut users_left = order.len();
        for &i in &order {
            let fair = cap_left / users_left as f64;
            let alloc = inflight[i].demand.min(fair);
            inflight[i].rate = alloc / inflight[i].demand;
            cap_left -= alloc;
            users_left -= 1;
        }
    };

    // Advance every in-flight query's remaining work to time `t`.
    let advance = |inflight: &mut Vec<InFlight>, now: &mut f64, t: f64| {
        let dt = t - *now;
        if dt > 0.0 {
            for f in inflight.iter_mut() {
                f.remaining -= dt * f.rate;
            }
        }
        *now = t;
    };

    // One macro-free closure would borrow too much of the state at
    // once; the loop below therefore inlines the handlers.
    loop {
        let next_done: Option<f64> = inflight
            .iter()
            .map(|f| now + f.remaining.max(0.0) / f.rate)
            .min_by(|a, b| a.total_cmp(b));
        let next_evt: Option<f64> = heap.peek().map(|e| e.time);
        let (t, is_completion) = match (next_done, next_evt) {
            (None, None) => break,
            (Some(d), None) => (d, true),
            (None, Some(e)) => (e, false),
            // Completions at the same instant as events run first, so a
            // freed slot is visible to a Submit at the same timestamp.
            (Some(d), Some(e)) => {
                if d <= e {
                    (d, true)
                } else {
                    (e, false)
                }
            }
        };
        advance(&mut inflight, &mut now, t);

        if is_completion {
            // Resolve every query that just ran dry, in admission order.
            let mut i = 0;
            while i < inflight.len() {
                if inflight[i].remaining <= EPS_MS {
                    let f = inflight.remove(i);
                    outcomes.push(QueryOutcome {
                        stream: f.stream,
                        index: f.index,
                        pool: Some(f.slot.pool()),
                        borrowed: f.slot.borrowed(),
                        submitted_ms: f.submitted,
                        admitted_ms: Some(f.admitted),
                        finished_ms: now,
                        wait_ms: f.wait_ms,
                        solo_sim_ms: f.result.sim_ms,
                        width: f.demand as u64,
                        moves: f.moves,
                        verdict: QueryVerdict::Completed,
                        result: Some(f.result),
                    });
                    // f.slot / f._lease drop here: pool + executors free.
                    push_event!(now, EventKind::Submit { stream: f.stream });
                } else {
                    i += 1;
                }
            }
            recompute_rates(&mut inflight);
            // Freed slots wake admission queues (FIFO, pool order).
            service_queues(
                server,
                streams,
                &sessions,
                &mut waiting,
                &mut inflight,
                &mut outcomes,
                &mut heap,
                &mut seq,
                &mut next_qid,
                now,
                capacity,
            );
            continue;
        }

        let ev = heap.pop().expect("peeked");
        match ev.kind {
            EventKind::Submit { stream } => {
                let idx = next_stmt[stream];
                if idx >= streams[stream].statements.len() {
                    continue; // stream drained
                }
                next_stmt[stream] += 1;
                let sql = &streams[stream].statements[idx];
                match classify(&sessions[stream], sql) {
                    Classified::Query(q) => {
                        let sess = &sessions[stream];
                        let admit = server.workload(|w| {
                            w.try_admit(&sess.user, sess.application.as_deref(), &sess.groups)
                        });
                        match admit {
                            Ok(AdmitOutcome::Admitted(slot)) => {
                                start_query(
                                    server,
                                    &sessions[stream],
                                    stream,
                                    idx,
                                    q,
                                    slot,
                                    now,
                                    now,
                                    capacity,
                                    &mut inflight,
                                    &mut outcomes,
                                    &mut heap,
                                    &mut seq,
                                    &mut next_qid,
                                );
                                recompute_rates(&mut inflight);
                                // An immediately-failed query freed its
                                // slot again — let waiters have it.
                                service_queues(
                                    server,
                                    streams,
                                    &sessions,
                                    &mut waiting,
                                    &mut inflight,
                                    &mut outcomes,
                                    &mut heap,
                                    &mut seq,
                                    &mut next_qid,
                                    now,
                                    capacity,
                                );
                            }
                            Ok(AdmitOutcome::Saturated { pool }) => {
                                // Queue on the routed pool with a
                                // deadline instead of hard-rejecting.
                                let token = next_token;
                                next_token += 1;
                                let q_slot = waiting.iter_mut().find(|(p, _)| *p == pool);
                                match q_slot {
                                    Some((_, queue)) => {
                                        queue.push_back(Waiter {
                                            token,
                                            stream,
                                            index: idx,
                                            submitted: now,
                                        });
                                        push_event!(
                                            now + opts.admission_max_wait_ms,
                                            EventKind::WaitDeadline { token }
                                        );
                                    }
                                    None => {
                                        // Unknown pool (no plan?): treat
                                        // as an immediate rejection.
                                        outcomes.push(rejected_outcome(stream, idx, now, 0.0));
                                        push_event!(now, EventKind::Submit { stream });
                                    }
                                }
                            }
                            Err(e) => {
                                outcomes.push(failed_outcome(stream, idx, now, now, &e));
                                push_event!(now, EventKind::Submit { stream });
                            }
                        }
                    }
                    Classified::Other(stmt) => {
                        // Non-SELECT statements (DDL/DML) bypass
                        // admission — they hold no pool slot, exactly
                        // like the standalone driver path.
                        match sessions[stream].execute_statement(*stmt) {
                            Ok(r) => {
                                let dur = r.sim_ms.max(0.0);
                                outcomes.push(QueryOutcome {
                                    stream,
                                    index: idx,
                                    pool: None,
                                    borrowed: false,
                                    submitted_ms: now,
                                    admitted_ms: Some(now),
                                    finished_ms: now + dur,
                                    wait_ms: 0.0,
                                    solo_sim_ms: r.sim_ms,
                                    width: 1,
                                    moves: vec![],
                                    verdict: QueryVerdict::Completed,
                                    result: Some(r),
                                });
                                push_event!(now + dur, EventKind::Submit { stream });
                            }
                            Err(e) => {
                                outcomes.push(failed_outcome(stream, idx, now, now, &e));
                                push_event!(now, EventKind::Submit { stream });
                            }
                        }
                    }
                    Classified::ParseError(e) => {
                        outcomes.push(failed_outcome(stream, idx, now, now, &e));
                        push_event!(now, EventKind::Submit { stream });
                    }
                }
            }
            EventKind::WaitDeadline { token } => {
                // Still queued → reject; already admitted → stale event.
                for (_, queue) in waiting.iter_mut() {
                    if let Some(pos) = queue.iter().position(|w| w.token == token) {
                        let w = queue.remove(pos).expect("position just found");
                        outcomes.push(rejected_outcome(
                            w.stream,
                            w.index,
                            w.submitted,
                            now - w.submitted,
                        ));
                        push_event!(now, EventKind::Submit { stream: w.stream });
                        break;
                    }
                }
            }
            EventKind::Trigger { query, trigger } => {
                let Some(pos) = inflight.iter().position(|f| f.qid == query) else {
                    continue; // finished (or killed) before the threshold
                };
                // Stale chain: the query moved pools after this event
                // was armed; the move re-armed the right chain.
                if inflight[pos].slot.pool() != trigger.pool {
                    continue;
                }
                match &trigger.action {
                    TriggerAction::Kill => {
                        let InFlight {
                            stream,
                            index,
                            submitted,
                            admitted,
                            wait_ms,
                            slot,
                            _lease: lease,
                            demand,
                            result,
                            moves,
                            ..
                        } = inflight.remove(pos);
                        outcomes.push(QueryOutcome {
                            stream,
                            index,
                            pool: Some(slot.pool()),
                            borrowed: slot.borrowed(),
                            submitted_ms: submitted,
                            admitted_ms: Some(admitted),
                            finished_ms: now,
                            wait_ms,
                            solo_sim_ms: result.sim_ms,
                            width: demand as u64,
                            moves,
                            verdict: QueryVerdict::Killed {
                                at_ms: now - admitted,
                                trigger: trigger.name.clone(),
                            },
                            result: None,
                        });
                        // Free the pool slot and the executors AT the
                        // threshold — the discarded remaining work
                        // releases capacity for waiters right now.
                        drop(slot);
                        drop(lease);
                        recompute_rates(&mut inflight);
                        service_queues(
                            server,
                            streams,
                            &sessions,
                            &mut waiting,
                            &mut inflight,
                            &mut outcomes,
                            &mut heap,
                            &mut seq,
                            &mut next_qid,
                            now,
                            capacity,
                        );
                        push_event!(now, EventKind::Submit { stream });
                    }
                    TriggerAction::MoveToPool(target) => {
                        let admitted = inflight[pos].admitted;
                        let qid = inflight[pos].qid;
                        match inflight[pos].slot.move_to(target) {
                            hive_llap::MoveOutcome::Moved => {
                                inflight[pos].moves.push((now - admitted, target.clone()));
                                // Arm the target pool's chain for the
                                // part of the timeline still ahead.
                                if let Some(nt) = server.workload(|w| {
                                    w.next_trigger(target, trigger.total_runtime_ms_threshold + 1)
                                }) {
                                    let at = admitted + nt.total_runtime_ms_threshold as f64;
                                    push_event!(
                                        at,
                                        EventKind::Trigger {
                                            query: qid,
                                            trigger: nt
                                        }
                                    );
                                }
                                // The source pool freed a slot.
                                service_queues(
                                    server,
                                    streams,
                                    &sessions,
                                    &mut waiting,
                                    &mut inflight,
                                    &mut outcomes,
                                    &mut heap,
                                    &mut seq,
                                    &mut next_qid,
                                    now,
                                    capacity,
                                );
                            }
                            hive_llap::MoveOutcome::Stayed { .. } => {
                                // Saturated/unknown target: stay, keep
                                // walking this pool's chain.
                                if let Some(nt) = server.workload(|w| {
                                    w.next_trigger(
                                        &trigger.pool,
                                        trigger.total_runtime_ms_threshold + 1,
                                    )
                                }) {
                                    let at = admitted + nt.total_runtime_ms_threshold as f64;
                                    push_event!(
                                        at,
                                        EventKind::Trigger {
                                            query: qid,
                                            trigger: nt
                                        }
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    outcomes.sort_by_key(|o| (o.stream, o.index));
    let span_ms = outcomes.iter().map(|o| o.finished_ms).fold(0.0, f64::max);
    let completed = outcomes
        .iter()
        .filter(|o| o.verdict == QueryVerdict::Completed)
        .count();
    let killed = outcomes
        .iter()
        .filter(|o| matches!(o.verdict, QueryVerdict::Killed { .. }))
        .count();
    let rejected = outcomes
        .iter()
        .filter(|o| matches!(o.verdict, QueryVerdict::Rejected { .. }))
        .count();
    let failed = outcomes
        .iter()
        .filter(|o| matches!(o.verdict, QueryVerdict::Failed { .. }))
        .count();
    let moves = outcomes.iter().map(|o| o.moves.len()).sum();
    let total_wait_ms = outcomes.iter().map(|o| o.wait_ms).sum();
    let max_wait_ms = outcomes.iter().map(|o| o.wait_ms).fold(0.0, f64::max);
    let queries_per_hour = if span_ms > 0.0 {
        completed as f64 * 3_600_000.0 / span_ms
    } else {
        0.0
    };
    ServingReport {
        outcomes,
        span_ms,
        completed,
        killed,
        rejected,
        failed,
        moves,
        total_wait_ms,
        max_wait_ms,
        queries_per_hour,
    }
}

enum Classified {
    Query(ast::Query),
    Other(Box<ast::Statement>),
    ParseError(HiveError),
}

fn classify(session: &Session, sql: &str) -> Classified {
    match hive_sql::parse_sql(sql) {
        Ok(stmt) => {
            // Engine-version SQL surface gate, as in the driver.
            let conf = session.server().conf();
            if conf.version == EngineVersion::V1_2 {
                let missing: Vec<_> = ast::required_features(&stmt)
                    .into_iter()
                    .filter(|f| !f.available_in_v1_2())
                    .collect();
                if !missing.is_empty() {
                    return Classified::ParseError(HiveError::Unsupported(format!(
                        "Hive 1.2 does not support {missing:?}"
                    )));
                }
            }
            match stmt {
                ast::Statement::Query(q) => Classified::Query(q),
                other => Classified::Other(Box::new(other)),
            }
        }
        Err(e) => Classified::ParseError(e),
    }
}

fn rejected_outcome(stream: usize, index: usize, submitted: f64, waited: f64) -> QueryOutcome {
    QueryOutcome {
        stream,
        index,
        pool: None,
        borrowed: false,
        submitted_ms: submitted,
        admitted_ms: None,
        finished_ms: submitted + waited,
        wait_ms: waited,
        solo_sim_ms: 0.0,
        width: 0,
        moves: vec![],
        verdict: QueryVerdict::Rejected { waited_ms: waited },
        result: None,
    }
}

fn failed_outcome(
    stream: usize,
    index: usize,
    submitted: f64,
    now: f64,
    e: &HiveError,
) -> QueryOutcome {
    QueryOutcome {
        stream,
        index,
        pool: None,
        borrowed: false,
        submitted_ms: submitted,
        admitted_ms: None,
        finished_ms: now,
        wait_ms: now - submitted,
        solo_sim_ms: 0.0,
        width: 0,
        moves: vec![],
        verdict: QueryVerdict::Failed {
            error: e.to_string(),
        },
        result: None,
    }
}

/// Execute an admitted query for real (at its virtual admission
/// instant) and register it as in-flight; on error the outcome is
/// `Failed` and the slot frees immediately.
#[allow(clippy::too_many_arguments)]
fn start_query(
    server: &HiveServer,
    session: &Session,
    stream: usize,
    index: usize,
    q: ast::Query,
    slot: AdmissionSlot,
    submitted: f64,
    now: f64,
    capacity: f64,
    inflight: &mut Vec<InFlight>,
    outcomes: &mut Vec<QueryOutcome>,
    heap: &mut BinaryHeap<Event>,
    seq: &mut u64,
    next_qid: &mut u64,
) {
    let conf = server.conf();
    match session.run_select_admitted(&q, &conf, slot.guaranteed_fraction()) {
        Ok(r) => {
            let demand = (r.parallel_width.max(1) as f64).min(capacity);
            // Hold real executors for the virtual lifetime: queries
            // admitted while this one is in flight lease their morsel
            // workers from what's left of the fleet.
            let lease = server.llap().lease_executors(demand as usize);
            let qid = *next_qid;
            *next_qid += 1;
            // Arm the admitted pool's trigger chain from elapsed 0.
            let pool = slot.pool();
            if let Some(t) = server.workload(|w| w.next_trigger(&pool, 0)) {
                heap.push(Event {
                    time: now + t.total_runtime_ms_threshold as f64,
                    seq: *seq,
                    kind: EventKind::Trigger {
                        query: qid,
                        trigger: t,
                    },
                });
                *seq += 1;
            }
            inflight.push(InFlight {
                qid,
                stream,
                index,
                submitted,
                admitted: now,
                wait_ms: now - submitted,
                slot,
                _lease: lease,
                demand,
                remaining: r.sim_ms.max(0.0),
                rate: 1.0,
                result: r,
                moves: vec![],
            });
        }
        Err(e) => {
            outcomes.push(failed_outcome(stream, index, submitted, now, &e));
            heap.push(Event {
                time: now,
                seq: *seq,
                kind: EventKind::Submit { stream },
            });
            *seq += 1;
            // `slot` drops here — the pool slot frees at `now`.
        }
    }
}

/// Wake admission queues after capacity freed: pools in plan order,
/// waiters FIFO, each admitted into exactly the pool it queued for.
#[allow(clippy::too_many_arguments)]
fn service_queues(
    server: &HiveServer,
    streams: &[QueryStream],
    sessions: &[Session],
    waiting: &mut [(String, VecDeque<Waiter>)],
    inflight: &mut Vec<InFlight>,
    outcomes: &mut Vec<QueryOutcome>,
    heap: &mut BinaryHeap<Event>,
    seq: &mut u64,
    next_qid: &mut u64,
    now: f64,
    capacity: f64,
) {
    let mut admitted_any = false;
    for (pool, queue) in waiting.iter_mut() {
        while !queue.is_empty() {
            let Some(slot) = server.workload(|wm| wm.admit_into(pool)) else {
                break; // pool still full; later waiters stay FIFO
            };
            let w = queue.pop_front().expect("emptiness checked");
            let sql = &streams[w.stream].statements[w.index];
            match classify(&sessions[w.stream], sql) {
                Classified::Query(q) => {
                    start_query(
                        server,
                        &sessions[w.stream],
                        w.stream,
                        w.index,
                        q,
                        slot,
                        w.submitted,
                        now,
                        capacity,
                        inflight,
                        outcomes,
                        heap,
                        seq,
                        next_qid,
                    );
                    admitted_any = true;
                }
                // Only SELECTs ever queue; anything else is a bug in
                // the submit path — resolve it as failed.
                Classified::Other(_) | Classified::ParseError(_) => {
                    drop(slot);
                    outcomes.push(failed_outcome(
                        w.stream,
                        w.index,
                        w.submitted,
                        now,
                        &HiveError::Workload("non-query statement in admission queue".into()),
                    ));
                    heap.push(Event {
                        time: now,
                        seq: *seq,
                        kind: EventKind::Submit { stream: w.stream },
                    });
                    *seq += 1;
                }
            }
        }
    }
    if admitted_any {
        // New in-flight queries share the cluster from this instant.
        let total: f64 = inflight.iter().map(|f| f.demand).sum();
        if total <= capacity {
            for f in inflight.iter_mut() {
                f.rate = 1.0;
            }
        } else {
            let mut order: Vec<usize> = (0..inflight.len()).collect();
            order.sort_by(|&a, &b| inflight[a].demand.total_cmp(&inflight[b].demand));
            let mut cap_left = capacity;
            let mut users_left = order.len();
            for &i in &order {
                let fair = cap_left / users_left as f64;
                let alloc = inflight[i].demand.min(fair);
                inflight[i].rate = alloc / inflight[i].demand;
                cap_left -= alloc;
                users_left -= 1;
            }
        }
    }
}
