//! # hive-core
//!
//! HiveServer2 (paper §2, Figure 2): the query server tying every
//! subsystem together. A [`HiveServer`] owns the simulated DFS, the
//! Metastore, the LLAP daemons, the federation registry, the workload
//! manager, and the query results cache; [`Session`]s execute SQL
//! through the driver pipeline:
//!
//! ```text
//! SQL → parser → (feature gate) → analyzer → results-cache probe →
//!   MV rewriting → optimizer → federation pushdown → DAG execution →
//!   (reoptimization on retryable failure) → results
//! ```

pub mod driver;
pub mod mv;
pub mod results_cache;
pub mod server;
pub mod serving;
pub mod session;

pub use results_cache::{CacheOutcome, QueryResultsCache};
pub use server::HiveServer;
pub use serving::{
    run_streams, QueryOutcome, QueryStream, QueryVerdict, ServingOptions, ServingReport,
};
pub use session::{QueryResult, Session};

/// The paper's §5.2 `daytime` resource-plan example (bi/etl pools, the
/// downgrade trigger, and the application mapping).
pub fn resource_plan_example() -> hive_llap::ResourcePlan {
    hive_llap::ResourcePlan::paper_example()
}
