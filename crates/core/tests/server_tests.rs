//! Full-system tests through the public SQL surface: DDL, ACID DML,
//! results cache, MV rewriting and rebuild, compaction, federation,
//! workload management, and engine-version gating.

use hive_common::{DataType, Field, HiveConf, Row, Schema, Value, VectorBatch};
use hive_core::HiveServer;

fn server() -> HiveServer {
    HiveServer::new(HiveConf::v3_1())
}

fn setup_sales(s: &HiveServer) {
    let sess = s.session();
    sess.execute(
        "CREATE TABLE store_sales (
            ss_item_sk INT, ss_sales_price DECIMAL(7,2), ss_quantity INT
         ) PARTITIONED BY (ss_sold_date_sk INT)",
    )
    .unwrap();
    sess.execute("CREATE TABLE item (i_item_sk INT, i_category STRING, PRIMARY KEY (i_item_sk))")
        .unwrap();
    for i in 0..12 {
        sess.execute(&format!("INSERT INTO item VALUES ({i}, 'cat{}')", i % 3))
            .unwrap();
    }
    // Two day-partitions of sales.
    for day in [1, 2] {
        let values: Vec<String> = (0..60)
            .map(|i| format!("({}, {}.50, {}, {day})", i % 12, (i % 9) + 1, i % 5 + 1))
            .collect();
        sess.execute(&format!(
            "INSERT INTO store_sales VALUES {}",
            values.join(", ")
        ))
        .unwrap();
    }
}

#[test]
fn create_insert_select_round_trip() {
    let s = server();
    setup_sales(&s);
    let sess = s.session();
    let r = sess.execute("SELECT COUNT(*) FROM store_sales").unwrap();
    assert_eq!(r.display_rows(), vec!["120"]);
    let r = sess
        .execute("SELECT COUNT(*) FROM store_sales WHERE ss_sold_date_sk = 1")
        .unwrap();
    assert_eq!(r.display_rows(), vec!["60"]);
    let r = sess
        .execute(
            "SELECT i_category, SUM(ss_sales_price) AS s
             FROM store_sales, item WHERE ss_item_sk = i_item_sk
             GROUP BY i_category ORDER BY i_category",
        )
        .unwrap();
    assert_eq!(r.num_rows(), 3);
}

#[test]
fn results_cache_serves_repeats_and_invalidates() {
    let s = server();
    setup_sales(&s);
    let sess = s.session();
    let q = "SELECT SUM(ss_quantity) FROM store_sales";
    let first = sess.execute(q).unwrap();
    assert!(!first.from_cache);
    let second = sess.execute(q).unwrap();
    assert!(second.from_cache, "identical query must hit the cache");
    assert_eq!(first.display_rows(), second.display_rows());
    assert!(second.sim_ms < first.sim_ms, "cached fetch is ~free");
    // New data invalidates.
    sess.execute("INSERT INTO store_sales VALUES (1, 9.99, 1, 3)")
        .unwrap();
    let third = sess.execute(q).unwrap();
    assert!(!third.from_cache);
    assert_ne!(first.display_rows(), third.display_rows());
}

#[test]
fn nondeterministic_queries_bypass_cache() {
    let s = server();
    setup_sales(&s);
    let sess = s.session();
    let q = "SELECT COUNT(*) FROM item WHERE rand() < 2.0";
    let a = sess.execute(q).unwrap();
    let b = sess.execute(q).unwrap();
    assert!(!a.from_cache && !b.from_cache);
}

#[test]
fn update_delete_through_sql() {
    let s = server();
    setup_sales(&s);
    let sess = s.session();
    let r = sess
        .execute("UPDATE item SET i_category = 'sports' WHERE i_item_sk < 3")
        .unwrap();
    assert_eq!(r.affected_rows, 3);
    let r = sess
        .execute("SELECT COUNT(*) FROM item WHERE i_category = 'sports'")
        .unwrap();
    assert_eq!(r.display_rows(), vec!["3"]);
    let r = sess
        .execute("DELETE FROM item WHERE i_item_sk >= 9")
        .unwrap();
    assert_eq!(r.affected_rows, 3);
    let r = sess.execute("SELECT COUNT(*) FROM item").unwrap();
    assert_eq!(r.display_rows(), vec!["9"]);
}

#[test]
fn merge_statement_updates_and_inserts() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE TABLE target (k INT, v STRING)")
        .unwrap();
    sess.execute("CREATE TABLE source (k INT, v STRING)")
        .unwrap();
    sess.execute("INSERT INTO target VALUES (1, 'old1'), (2, 'old2')")
        .unwrap();
    sess.execute("INSERT INTO source VALUES (2, 'new2'), (3, 'new3')")
        .unwrap();
    let r = sess
        .execute(
            "MERGE INTO target t USING source s ON t.k = s.k
             WHEN MATCHED THEN UPDATE SET v = s.v
             WHEN NOT MATCHED THEN INSERT VALUES (s.k, s.v)",
        )
        .unwrap();
    assert_eq!(r.affected_rows, 2);
    let r = sess.execute("SELECT k, v FROM target ORDER BY k").unwrap();
    assert_eq!(r.display_rows(), vec!["1\told1", "2\tnew2", "3\tnew3"]);
}

#[test]
fn merge_delete_arm() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE TABLE t2 (k INT, v INT)").unwrap();
    sess.execute("CREATE TABLE s2 (k INT, flag INT)").unwrap();
    sess.execute("INSERT INTO t2 VALUES (1, 10), (2, 20), (3, 30)")
        .unwrap();
    sess.execute("INSERT INTO s2 VALUES (1, 1), (2, 0)")
        .unwrap();
    sess.execute(
        "MERGE INTO t2 USING s2 ON t2.k = s2.k
         WHEN MATCHED AND s2.flag = 1 THEN DELETE",
    )
    .unwrap();
    let r = sess.execute("SELECT k FROM t2 ORDER BY k").unwrap();
    assert_eq!(r.display_rows(), vec!["2", "3"]);
}

#[test]
fn materialized_view_rewriting_paper_figure4() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE TABLE store_sales2 (ss_sold_date_sk INT, ss_sales_price DECIMAL(7,2))")
        .unwrap();
    sess.execute("CREATE TABLE date_dim (d_date_sk INT, d_year INT, d_moy INT, d_dom INT)")
        .unwrap();
    // date_dim: 3 years of months.
    let mut dd = Vec::new();
    let mut sk = 0;
    for y in 2016..=2018 {
        for m in 1..=12 {
            dd.push(format!("({sk}, {y}, {m}, 1)"));
            sk += 1;
        }
    }
    sess.execute(&format!("INSERT INTO date_dim VALUES {}", dd.join(", ")))
        .unwrap();
    // Fact rows: many sales per day so the view/complement split is
    // clearly cheaper than recomputation (the cost-based decision).
    let mut ss = Vec::new();
    for day in 0..sk {
        for i in 0..25 {
            ss.push(format!("({day}, {}.00)", (day + i) % 50 + 1));
        }
    }
    sess.execute(&format!(
        "INSERT INTO store_sales2 VALUES {}",
        ss.join(", ")
    ))
    .unwrap();

    // Figure 4(a): the materialized view.
    sess.execute(
        "CREATE MATERIALIZED VIEW mat_view AS
         SELECT d_year, d_moy, d_dom, SUM(ss_sales_price) AS sum_sales
         FROM store_sales2, date_dim
         WHERE ss_sold_date_sk = d_date_sk AND d_year > 2017
         GROUP BY d_year, d_moy, d_dom",
    )
    .unwrap();

    // Figure 4(b): fully contained query — must be rewritten.
    let q1 = "SELECT SUM(ss_sales_price) AS sum_sales
              FROM store_sales2, date_dim
              WHERE ss_sold_date_sk = d_date_sk AND d_year = 2018 AND d_moy IN (1,2,3)";
    let r1 = sess.execute(q1).unwrap();
    assert!(r1.used_mv, "q1 should be answered from the view");
    // Cross-check against the direct computation with rewriting off.
    s.set_conf(|c| c.mv_rewriting = false);
    let direct = sess.execute(q1).unwrap();
    assert!(!direct.used_mv);
    assert_eq!(r1.display_rows(), direct.display_rows());
    s.set_conf(|c| c.mv_rewriting = true);

    // Figure 4(c): partially contained query (d_year > 2016 vs > 2017).
    let q2 = "SELECT d_year, d_moy, SUM(ss_sales_price) AS sum_sales
              FROM store_sales2, date_dim
              WHERE ss_sold_date_sk = d_date_sk AND d_year > 2016
              GROUP BY d_year, d_moy";
    let r2 = sess.execute(q2).unwrap();
    s.set_conf(|c| c.mv_rewriting = false);
    let direct2 = sess.execute(q2).unwrap();
    s.set_conf(|c| c.mv_rewriting = true);
    let mut a = r2.display_rows();
    let mut b = direct2.display_rows();
    a.sort();
    b.sort();
    assert_eq!(a, b, "partial rewriting must preserve results");
    assert!(r2.used_mv, "q2 should use the union rewrite");
}

#[test]
fn stale_mv_not_used_until_rebuilt() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE TABLE base_t (k INT, v INT)").unwrap();
    // Enough rows that the cost-based optimizer prefers the (smaller)
    // materialization over recomputation.
    let vals: Vec<String> = (0..200).map(|i| format!("({}, 1)", i % 2 + 1)).collect();
    sess.execute(&format!("INSERT INTO base_t VALUES {}", vals.join(", ")))
        .unwrap();
    sess.execute(
        "CREATE MATERIALIZED VIEW mv_sum AS
         SELECT k, SUM(v) AS s FROM base_t GROUP BY k",
    )
    .unwrap();
    let q = "SELECT k, SUM(v) AS s FROM base_t GROUP BY k ORDER BY k";
    assert!(sess.execute(q).unwrap().used_mv);
    // New data → stale → not used, and results stay correct.
    sess.execute("INSERT INTO base_t VALUES (1, 5)").unwrap();
    let r = sess.execute(q).unwrap();
    assert!(!r.used_mv, "stale view must not answer queries");
    assert_eq!(r.display_rows(), vec!["1\t105", "2\t100"]);
    // Rebuild refreshes it.
    sess.execute("ALTER MATERIALIZED VIEW mv_sum REBUILD")
        .unwrap();
    let r = sess.execute(q).unwrap();
    assert!(r.used_mv);
    assert_eq!(r.display_rows(), vec!["1\t105", "2\t100"]);
}

#[test]
fn auto_compaction_triggers_on_many_deltas() {
    let s = server();
    s.set_conf(|c| c.compaction_delta_threshold = 8);
    let sess = s.session();
    sess.execute("CREATE TABLE hot (k INT)").unwrap();
    for i in 0..20 {
        sess.execute(&format!("INSERT INTO hot VALUES ({i})"))
            .unwrap();
    }
    // Compactions ran (visible in the queue history or by the directory
    // shape: far fewer than 20 deltas remain).
    let table = s.metastore().get_table("default", "hot").unwrap();
    let entries = s.fs().list(&hive_dfs::DfsPath::new(&table.location));
    assert!(
        entries.len() < 15,
        "compaction should have merged deltas, found {} entries",
        entries.len()
    );
    // Data intact.
    let r = sess.execute("SELECT COUNT(*) FROM hot").unwrap();
    assert_eq!(r.display_rows(), vec!["20"]);
}

#[test]
fn druid_federation_pushdown() {
    let s = server();
    // Create a datasource directly in "Druid" (it pre-exists, like the
    // paper's my_druid_source).
    let schema = Schema::new(vec![
        Field::new("__time", DataType::Timestamp),
        Field::new("d1", DataType::String),
        Field::new("m1", DataType::Double),
    ]);
    s.druid()
        .create_datasource("my_druid_source", &schema)
        .unwrap();
    let rows: Vec<Row> = (0..200)
        .map(|i| {
            Row::new(vec![
                Value::Timestamp((17500 + i % 400) as i64 * 86_400_000_000),
                Value::String(format!("d{}", i % 7)),
                Value::Double(i as f64),
            ])
        })
        .collect();
    s.druid()
        .ingest(
            "my_druid_source",
            &VectorBatch::from_rows(&schema, &rows).unwrap(),
        )
        .unwrap();

    let sess = s.session();
    // Map a Hive external table onto it — schema inferred (§6.1).
    sess.execute(
        "CREATE EXTERNAL TABLE my_druid_source ()
         STORED BY 'druid'
         TBLPROPERTIES ('druid.datasource' = 'my_druid_source')",
    )
    .unwrap();
    // The paper's Figure 6 query shape.
    let r = sess
        .execute(
            "SELECT d1, SUM(m1) AS s FROM my_druid_source
             GROUP BY d1 ORDER BY s DESC LIMIT 3",
        )
        .unwrap();
    assert_eq!(r.num_rows(), 3);
    // Verify the plan carries a generated Druid JSON query.
    let explain = sess
        .execute(
            "EXPLAIN SELECT d1, SUM(m1) AS s FROM my_druid_source
             GROUP BY d1 ORDER BY s DESC LIMIT 3",
        )
        .unwrap();
    let text = explain.message.unwrap();
    assert!(text.contains("Scan"), "{text}");
    // Descending sums.
    let sums: Vec<f64> = r
        .rows()
        .iter()
        .map(|row| row.get(1).as_f64().unwrap())
        .collect();
    assert!(sums[0] >= sums[1] && sums[1] >= sums[2]);
}

#[test]
fn jdbc_federation_receives_generated_sql() {
    let s = server();
    s.jdbc().create_table(
        "remote_orders",
        Schema::new(vec![
            Field::new("o_id", DataType::Int),
            Field::new("o_total", DataType::Double),
        ]),
    );
    s.jdbc()
        .insert(
            "remote_orders",
            (0..50)
                .map(|i| Row::new(vec![Value::Int(i), Value::Double(i as f64 * 1.5)]))
                .collect(),
        )
        .unwrap();
    let sess = s.session();
    sess.execute("CREATE EXTERNAL TABLE remote_orders () STORED BY 'jdbc'")
        .unwrap();
    let r = sess
        .execute("SELECT o_id FROM remote_orders WHERE o_total > 60.0 ORDER BY o_id")
        .unwrap();
    assert_eq!(r.num_rows(), 9); // o_total > 60 → ids 41..49
    let received = s.jdbc().received_sql();
    assert!(
        received.iter().any(|q| q.contains("WHERE")),
        "filter should be pushed as generated SQL: {received:?}"
    );
}

#[test]
fn workload_manager_enforces_pools() {
    let s = server();
    setup_sales(&s);
    s.activate_resource_plan(hive_llap::ResourcePlan::paper_example())
        .unwrap();
    // bi pool (visualization_app) admits 5 concurrent; sequential
    // queries release their slot, so all succeed.
    let sess = s.session_for("alice", Some("visualization_app"));
    for _ in 0..7 {
        sess.execute("SELECT COUNT(*) FROM item").unwrap();
    }
    assert_eq!(s.workload(|w| w.running_in("bi")), 0, "slots released");
}

#[test]
fn admission_slot_released_on_every_driver_path() {
    let s = server();
    setup_sales(&s);
    s.activate_resource_plan(hive_llap::ResourcePlan::paper_example())
        .unwrap();
    let sess = s.session_for("alice", Some("visualization_app"));
    let pools_empty = |s: &HiveServer| {
        s.workload(|w| w.running_in("bi")) == 0 && s.workload(|w| w.running_in("etl")) == 0
    };

    // Error path: analysis fails after admission.
    assert!(sess.execute("SELECT * FROM no_such_table").is_err());
    assert!(pools_empty(&s), "error path leaked an admission slot");

    // Cache-hit path: second run serves from the results cache but
    // still admits and releases.
    sess.execute("SELECT COUNT(*) FROM item").unwrap();
    let r = sess.execute("SELECT COUNT(*) FROM item").unwrap();
    assert!(r.from_cache, "second run should hit the results cache");
    assert!(pools_empty(&s), "cache-hit path leaked an admission slot");

    // Trigger-move path: the downgrade trigger fires (threshold 1 ms —
    // every real query exceeds it) and the query completes, its slot
    // released from the pool it was moved TO.
    let mut plan = hive_llap::ResourcePlan::paper_example();
    plan.triggers[0].total_runtime_ms_threshold = 1;
    s.activate_resource_plan(plan).unwrap();
    let r = sess
        .execute("SELECT i_category, COUNT(*) FROM item GROUP BY i_category")
        .unwrap();
    assert!(r.sim_ms > 1.0, "query must outlive the 1 ms threshold");
    assert!(
        pools_empty(&s),
        "trigger-move path leaked an admission slot"
    );

    // Trigger-kill path: a kill trigger at the threshold errors the
    // query AND releases its slot.
    let mut plan = hive_llap::ResourcePlan::paper_example();
    plan.triggers = vec![hive_llap::Trigger {
        name: "reaper".into(),
        pool: "bi".into(),
        total_runtime_ms_threshold: 1,
        action: hive_llap::TriggerAction::Kill,
    }];
    s.activate_resource_plan(plan).unwrap();
    let err = sess
        .execute("SELECT ss_item_sk, SUM(ss_quantity) FROM store_sales GROUP BY ss_item_sk")
        .unwrap_err();
    assert!(
        err.to_string().contains("killed by trigger reaper"),
        "got: {err}"
    );
    assert!(
        pools_empty(&s),
        "trigger-kill path leaked an admission slot"
    );
}

#[test]
fn group_mappings_route_sessions_end_to_end() {
    let s = server();
    setup_sales(&s);
    // Route the `analysts` group to bi, where a 1 ms kill trigger
    // awaits: a group-routed query dies, an unmapped one (default pool
    // etl) survives — proof the session's groups reached the router.
    let mut plan = hive_llap::ResourcePlan::paper_example();
    plan.mappings = vec![hive_llap::Mapping::Group {
        name: "analysts".into(),
        pool: "bi".into(),
    }];
    plan.triggers = vec![hive_llap::Trigger {
        name: "reaper".into(),
        pool: "bi".into(),
        total_runtime_ms_threshold: 1,
        action: hive_llap::TriggerAction::Kill,
    }];
    s.activate_resource_plan(plan).unwrap();
    let analyst = s.session_with_groups("dana", None, &["analysts".to_string()]);
    let err = analyst
        .execute("SELECT COUNT(*) FROM store_sales")
        .unwrap_err();
    assert!(err.to_string().contains("pool bi"), "got: {err}");
    let batch = s.session_for("dana", None);
    batch.execute("SELECT COUNT(*) FROM store_sales").unwrap();
    assert_eq!(s.workload(|w| w.running_in("bi")), 0);
    assert_eq!(s.workload(|w| w.running_in("etl")), 0);
}

#[test]
fn activate_validates_plan_and_preserves_live_slots() {
    let s = server();
    // A typo'd move target is rejected at activation, not at runtime.
    let mut bad = hive_llap::ResourcePlan::paper_example();
    bad.triggers[0].action = hive_llap::TriggerAction::MoveToPool("etk".into());
    assert!(s.activate_resource_plan(bad).is_err());

    // Activation with queries in flight keeps their accounting exact.
    s.activate_resource_plan(hive_llap::ResourcePlan::paper_example())
        .unwrap();
    let slot = s
        .workload(|w| w.admit("alice", Some("visualization_app"), &[]))
        .unwrap();
    assert_eq!(s.workload(|w| w.running_in("bi")), 1);
    s.activate_resource_plan(hive_llap::ResourcePlan::paper_example())
        .unwrap();
    assert_eq!(
        s.workload(|w| w.running_in("bi")),
        1,
        "activation wiped a live slot"
    );
    drop(slot);
    assert_eq!(s.workload(|w| w.running_in("bi")), 0);
}

#[test]
fn hive_1_2_rejects_new_sql_surface() {
    let s = server();
    setup_sales(&s);
    s.set_conf(|c| *c = HiveConf::v1_2());
    let sess = s.session();
    // Plain queries still run.
    sess.execute("SELECT COUNT(*) FROM item").unwrap();
    // Post-1.2 features are rejected (the Figure 7 "could not be
    // executed" mechanism).
    for q in [
        "SELECT i_item_sk FROM item INTERSECT SELECT i_item_sk FROM item",
        "SELECT i_item_sk FROM item EXCEPT SELECT i_item_sk FROM item",
        "SELECT i_category FROM item ORDER BY i_item_sk",
        "DELETE FROM item WHERE i_item_sk = 1",
    ] {
        let err = sess.execute(q).unwrap_err();
        assert!(
            matches!(err, hive_common::HiveError::Unsupported(_)),
            "{q} should be rejected: {err}"
        );
    }
}

#[test]
fn reoptimization_recovers_from_join_budget() {
    let s = server();
    setup_sales(&s);
    // A tiny budget forces a retryable failure on the first attempt.
    s.set_conf(|c| c.hash_join_row_budget = 2);
    let sess = s.session();
    let r = sess
        .execute("SELECT COUNT(*) FROM store_sales, item WHERE ss_item_sk = i_item_sk")
        .unwrap();
    // Under HIVE_SPILL_SWEEP the env forces a memory budget, and the
    // same overflow degrades to a grace join on the first attempt
    // instead of failing retryably.
    let conf = s.conf();
    if conf.effective_spill_enabled() && conf.effective_memory_per_query_bytes() > 0 {
        assert!(!r.reexecuted, "spill-enabled run must degrade in place");
    } else {
        assert!(
            r.reexecuted,
            "query should have been re-optimized and retried"
        );
    }
    assert_eq!(r.display_rows(), vec!["120"]);
}

#[test]
fn explain_shows_plan() {
    let s = server();
    setup_sales(&s);
    let sess = s.session();
    let r = sess
        .execute("EXPLAIN SELECT COUNT(*) FROM store_sales WHERE ss_sold_date_sk = 1")
        .unwrap();
    let text = r.message.unwrap();
    assert!(text.contains("Aggregate"), "{text}");
    assert!(text.contains("Scan[default.store_sales]"), "{text}");
    assert!(
        text.contains("partitions=1"),
        "partition pruning visible: {text}"
    );
}

#[test]
fn show_tables_and_use() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE DATABASE tpcds").unwrap();
    sess.execute("USE tpcds").unwrap();
    sess.execute("CREATE TABLE t1 (a INT)").unwrap();
    let r = sess.execute("SHOW TABLES").unwrap();
    assert_eq!(r.display_rows(), vec!["t1"]);
    assert!(sess.execute("USE nonexistent").is_err());
}

#[test]
fn snapshot_isolation_across_sessions() {
    let s = server();
    let a = s.session();
    a.execute("CREATE TABLE iso (k INT)").unwrap();
    a.execute("INSERT INTO iso VALUES (1)").unwrap();
    let b = s.session();
    assert_eq!(
        b.execute("SELECT COUNT(*) FROM iso")
            .unwrap()
            .display_rows(),
        vec!["1"]
    );
    a.execute("INSERT INTO iso VALUES (2)").unwrap();
    assert_eq!(
        b.execute("SELECT COUNT(*) FROM iso")
            .unwrap()
            .display_rows(),
        vec!["2"]
    );
}

#[test]
fn ctas_creates_and_fills() {
    let s = server();
    setup_sales(&s);
    let sess = s.session();
    sess.execute(
        "CREATE TABLE cat_counts AS
         SELECT i_category, COUNT(*) AS c FROM item GROUP BY i_category",
    )
    .unwrap();
    let r = sess.execute("SELECT COUNT(*) FROM cat_counts").unwrap();
    assert_eq!(r.display_rows(), vec!["3"]);
}

#[test]
fn analyze_table_refreshes_stats() {
    let s = server();
    setup_sales(&s);
    let sess = s.session();
    sess.execute("ANALYZE TABLE item COMPUTE STATISTICS")
        .unwrap();
    let stats = s.metastore().table_stats("default.item");
    assert_eq!(stats.row_count, 12);
    assert_eq!(stats.columns[0].ndv_estimate(), 12);
}

#[test]
fn multi_insert_is_one_transaction() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE TABLE src (k INT, v INT)").unwrap();
    sess.execute("CREATE TABLE pos (k INT, v INT)").unwrap();
    sess.execute("CREATE TABLE neg (k INT, v INT)").unwrap();
    sess.execute("INSERT INTO src VALUES (1, 5), (2, -3), (3, 7), (4, -1)")
        .unwrap();
    // The paper's §3.2 multi-insert: both tables written in ONE txn.
    let r = sess
        .execute(
            "FROM src
             INSERT INTO pos SELECT k, v WHERE v > 0
             INSERT INTO neg SELECT k, v WHERE v < 0",
        )
        .unwrap();
    assert_eq!(r.affected_rows, 4);
    assert_eq!(
        sess.execute("SELECT k FROM pos ORDER BY k")
            .unwrap()
            .display_rows(),
        vec!["1", "3"]
    );
    assert_eq!(
        sess.execute("SELECT k FROM neg ORDER BY k")
            .unwrap()
            .display_rows(),
        vec!["2", "4"]
    );
    // Both legs share one WriteId-allocating transaction: the write ids
    // of the two tables advanced exactly once each.
    assert_eq!(s.metastore().table_write_hwm("default.pos").raw(), 1);
    assert_eq!(s.metastore().table_write_hwm("default.neg").raw(), 1);
}

#[test]
fn multi_insert_failure_aborts_all_legs() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE TABLE src2 (k INT)").unwrap();
    sess.execute("CREATE TABLE ok_t (k INT)").unwrap();
    sess.execute("INSERT INTO src2 VALUES (1), (2)").unwrap();
    // Second leg references a missing table → whole statement aborts.
    let err = sess.execute(
        "FROM src2
         INSERT INTO ok_t SELECT k
         INSERT INTO missing_t SELECT k",
    );
    assert!(err.is_err());
    // The first leg's rows are invisible (aborted transaction).
    assert_eq!(
        sess.execute("SELECT COUNT(*) FROM ok_t")
            .unwrap()
            .display_rows(),
        vec!["0"]
    );
}

#[test]
fn materialized_view_stored_in_druid() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE TABLE clicks (ts TIMESTAMP, page STRING, dur DOUBLE)")
        .unwrap();
    let rows: Vec<String> = (0..200)
        .map(|i| {
            format!(
                "(TIMESTAMP '2020-01-{:02} 00:00:00', 'page{}', {}.0)",
                (i % 28) + 1,
                i % 5,
                i % 60
            )
        })
        .collect();
    sess.execute(&format!("INSERT INTO clicks VALUES {}", rows.join(", ")))
        .unwrap();
    // §4.4: materialized views "can be stored natively by Hive or in
    // other supported systems" — here the materialization lands in the
    // Druid substrate via the storage handler.
    sess.execute(
        "CREATE MATERIALIZED VIEW clicks_flat
         STORED BY 'druid'
         TBLPROPERTIES ('druid.datasource' = 'clicks_flat')
         AS SELECT ts AS __time, page, dur FROM clicks",
    )
    .unwrap();
    assert!(s.druid().has_datasource("clicks_flat"));
    // Queries over the Druid-backed MV run through federation pushdown.
    let r = sess
        .execute(
            "SELECT page, SUM(dur) AS total FROM clicks_flat
             GROUP BY page ORDER BY page",
        )
        .unwrap();
    assert_eq!(r.num_rows(), 5);
    // Cross-check against the source table.
    let direct = sess
        .execute("SELECT page, SUM(dur) AS total FROM clicks GROUP BY page ORDER BY page")
        .unwrap();
    assert_eq!(r.display_rows(), direct.display_rows());
}

#[test]
fn describe_and_show_partitions() {
    let s = server();
    setup_sales(&s);
    let sess = s.session();
    let r = sess.execute("SHOW PARTITIONS store_sales").unwrap();
    assert_eq!(
        r.display_rows(),
        vec!["ss_sold_date_sk=1", "ss_sold_date_sk=2"]
    );
    let r = sess.execute("DESCRIBE store_sales").unwrap();
    let rows = r.display_rows();
    assert!(rows.iter().any(|l| l.starts_with("ss_item_sk\tINT")));
    assert!(rows
        .iter()
        .any(|l| l.starts_with("ss_sold_date_sk\tINT\tpartition column")));
    let r = sess.execute("DESCRIBE EXTENDED store_sales").unwrap();
    assert!(r.display_rows().iter().any(|l| l.starts_with("#rows\t120")));
}

#[test]
fn druid_top_n_pushes_limit_spec() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE TABLE clicks (ts TIMESTAMP, page STRING, dur DOUBLE)")
        .unwrap();
    let rows: Vec<String> = (0..200)
        .map(|i| {
            format!(
                "(TIMESTAMP '2020-01-{:02} 00:00:00', 'page{}', {}.0)",
                (i % 28) + 1,
                i % 10,
                i % 60
            )
        })
        .collect();
    sess.execute(&format!("INSERT INTO clicks VALUES {}", rows.join(", ")))
        .unwrap();
    sess.execute(
        "CREATE MATERIALIZED VIEW clicks_druid
         STORED BY 'druid'
         TBLPROPERTIES ('druid.datasource' = 'clicks_druid')
         AS SELECT ts AS __time, page, dur FROM clicks",
    )
    .unwrap();
    // Figure 6's shape: top-N over the Druid-backed table. The Sort and
    // Limit fold into the pushed query's limitSpec, so Druid truncates
    // before transfer, and results still match the native table exactly.
    let federated = sess
        .execute(
            "SELECT page, SUM(dur) AS total FROM clicks_druid
             GROUP BY page ORDER BY total DESC, page LIMIT 3",
        )
        .unwrap();
    let native = sess
        .execute(
            "SELECT page, SUM(dur) AS total FROM clicks
             GROUP BY page ORDER BY total DESC, page LIMIT 3",
        )
        .unwrap();
    assert_eq!(federated.num_rows(), 3);
    assert_eq!(federated.display_rows(), native.display_rows());
}

#[test]
fn show_transactions_reports_states() {
    let s = server();
    let sess = s.session();
    sess.execute("CREATE TABLE t (a INT)").unwrap();
    sess.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    // The committed insert transaction is visible in the listing.
    let r = sess.execute("SHOW TRANSACTIONS").unwrap();
    assert!(r.num_rows() >= 1);
    let rows = r.display_rows();
    assert!(
        rows.iter()
            .any(|row| row.contains("Committed") && row.contains("default.t")),
        "committed txn with its table listed: {rows:?}"
    );
    // A failed multi-insert statement leaves an aborted transaction.
    let _ = sess.execute("FROM t INSERT INTO t SELECT a INSERT INTO missing_t SELECT a");
    let r = sess.execute("SHOW TRANSACTIONS").unwrap();
    let rows = r.display_rows();
    assert!(
        rows.iter().any(|row| row.contains("Aborted")),
        "aborted txn visible: {rows:?}"
    );
}
