//! Relational schemas: named, typed, nullable columns.

use crate::error::{HiveError, Result};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Field {
    /// Column name (lower-cased at creation; Hive identifiers are
    /// case-insensitive).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs are permitted (NOT NULL constraint when false).
    pub nullable: bool,
}

impl Field {
    /// A nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            name: name.into().to_ascii_lowercase(),
            data_type,
            nullable: true,
        }
    }

    /// A NOT NULL field.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        Field {
            nullable: false,
            ..Field::new(name, data_type)
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.data_type)?;
        if !self.nullable {
            write!(f, " NOT NULL")?;
        }
        Ok(())
    }
}

/// An ordered list of fields. Cheap to clone (fields are boxed in an Arc).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schema {
    fields: Arc<Vec<Field>>,
}

impl Schema {
    /// Build a schema from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema {
            fields: Arc::new(fields),
        }
    }

    /// The empty schema.
    pub fn empty() -> Self {
        Schema::new(Vec::new())
    }

    /// All fields, in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when there are no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Field at position `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Case-insensitive lookup of a column index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lname = name.to_ascii_lowercase();
        self.fields.iter().position(|f| f.name == lname)
    }

    /// Like [`Schema::index_of`] but returns a catalog error.
    pub fn index_of_required(&self, name: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| HiveError::Analysis(format!("column not found: {name}")))
    }

    /// A new schema keeping only the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(indices.iter().map(|&i| self.fields[i].clone()).collect())
    }

    /// Concatenate two schemas (join output shape).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut fields = self.fields.as_ref().clone();
        fields.extend(other.fields.iter().cloned());
        Schema::new(fields)
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, fl) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fl}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("A", DataType::Int),
            Field::not_null("b", DataType::String),
            Field::new("c", DataType::Double),
        ])
    }

    #[test]
    fn case_insensitive_lookup() {
        let s = sample();
        assert_eq!(s.index_of("a"), Some(0));
        assert_eq!(s.index_of("A"), Some(0));
        assert_eq!(s.index_of("B"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert!(s.index_of_required("missing").is_err());
    }

    #[test]
    fn projection_and_join() {
        let s = sample();
        let p = s.project(&[2, 0]);
        assert_eq!(p.names(), vec!["c", "a"]);
        let j = s.join(&p);
        assert_eq!(j.len(), 5);
        assert_eq!(j.field(3).name, "c");
    }

    #[test]
    fn display() {
        let s = sample();
        assert_eq!(s.to_string(), "(a INT, b STRING NOT NULL, c DOUBLE)");
    }
}
