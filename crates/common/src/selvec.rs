//! Selection vectors: late filtering without compaction.
//!
//! A [`SelVec`] names the visible rows of a [`VectorBatch`] — either
//! every row (`All`, the common fast case carrying just a length) or an
//! explicit index list (`Idx`). Operators pass `(batch, sel)` pairs
//! ([`SelBatch`]) down the pipeline so a selective filter over a wide
//! scan drops rows by *narrowing the selection* instead of copying
//! every surviving column (the paper's §5.1 emphasis on operating
//! directly over cached columnar data). Compaction —
//! [`SelBatch::compact`], a single [`VectorBatch::take`] — happens only
//! at true pipeline breakers: hash-join build sides, union/set-op
//! buffers, and the final output choke point in the driver (the same
//! place dictionary codes decode).
//!
//! `Idx` indices are unique but not necessarily ascending: Sort emits
//! its output permutation as a selection, so downstream consumers must
//! not assume ordering.

use crate::error::{HiveError, Result};
use crate::vector::VectorBatch;
use serde::{Deserialize, Serialize};

/// Ordered row indices into a batch, with a cheap "all rows" variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelVec {
    /// Every row of a batch with this many rows, in order.
    All(usize),
    /// An explicit list of row indices (unique; order is significant
    /// and may be a non-identity permutation after Sort).
    Idx(Vec<u32>),
}

impl SelVec {
    /// The identity selection over `n` rows.
    pub fn all(n: usize) -> SelVec {
        SelVec::All(n)
    }

    /// Number of selected rows.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            SelVec::All(n) => *n,
            SelVec::Idx(v) => v.len(),
        }
    }

    /// True when no rows are selected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the `All` variant (identity over the underlying batch).
    /// An `Idx` that happens to enumerate every row in order still
    /// answers false — callers use this only as a fast-path hint.
    #[inline]
    pub fn is_all(&self) -> bool {
        matches!(self, SelVec::All(_))
    }

    /// Underlying row index of selected position `pos`.
    #[inline]
    pub fn index(&self, pos: usize) -> usize {
        match self {
            SelVec::All(_) => pos,
            SelVec::Idx(v) => v[pos] as usize,
        }
    }

    /// Iterate the underlying row indices in selection order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).map(move |p| self.index(p))
    }

    /// Materialize as an index list (allocates for `All`).
    pub fn to_indices(&self) -> Vec<u32> {
        match self {
            SelVec::All(n) => (0..*n as u32).collect(),
            SelVec::Idx(v) => v.clone(),
        }
    }

    /// Narrow this selection to `positions` *within it*: position `p`
    /// of the result is `self.index(positions[p])`. This is how a
    /// filter over an already-filtered batch stays index-based.
    pub fn compose(&self, positions: &[u32]) -> SelVec {
        match self {
            SelVec::All(_) => SelVec::Idx(positions.to_vec()),
            SelVec::Idx(v) => SelVec::Idx(positions.iter().map(|&p| v[p as usize]).collect()),
        }
    }

    /// Keep only the first `k` selected positions (LIMIT).
    pub fn truncate(self, k: usize) -> SelVec {
        if k >= self.len() {
            return self;
        }
        match self {
            SelVec::All(_) => SelVec::Idx((0..k as u32).collect()),
            SelVec::Idx(mut v) => {
                v.truncate(k);
                SelVec::Idx(v)
            }
        }
    }
}

/// A batch plus the selection naming its visible rows. The unit of data
/// flow between pipeline operators; `batch` columns are `Arc`-shared so
/// passing a `SelBatch` copies no column data.
#[derive(Debug, Clone, PartialEq)]
pub struct SelBatch {
    pub batch: VectorBatch,
    pub sel: SelVec,
}

impl SelBatch {
    /// Pair a batch with a selection; every index must be in range.
    pub fn new(batch: VectorBatch, sel: SelVec) -> Result<SelBatch> {
        let n = batch.num_rows();
        let ok = match &sel {
            SelVec::All(m) => *m == n,
            SelVec::Idx(v) => v.iter().all(|&i| (i as usize) < n),
        };
        if !ok {
            return Err(HiveError::Execution(format!(
                "selection out of range for batch of {n} rows"
            )));
        }
        Ok(SelBatch { batch, sel })
    }

    /// Wrap a batch with the identity selection.
    pub fn from_batch(batch: VectorBatch) -> SelBatch {
        let sel = SelVec::All(batch.num_rows());
        SelBatch { batch, sel }
    }

    /// Visible row count.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.sel.len()
    }

    /// The batch schema.
    pub fn schema(&self) -> &crate::schema::Schema {
        self.batch.schema()
    }

    /// True when the selection is the identity (`All`).
    pub fn is_compact(&self) -> bool {
        self.sel.is_all()
    }

    /// Materialize the selected rows: free for `All`, one gather for
    /// `Idx`. The only place selection vectors turn into copies.
    pub fn compact(self) -> VectorBatch {
        match self.sel {
            SelVec::All(_) => self.batch,
            SelVec::Idx(idx) => self.batch.take(&idx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Field, Schema};
    use crate::types::DataType;
    use crate::vector::ColumnVector;

    fn batch(n: i32) -> VectorBatch {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        VectorBatch::new(schema, vec![ColumnVector::Int((0..n).collect(), None)]).unwrap()
    }

    #[test]
    fn all_is_identity() {
        let s = SelVec::all(4);
        assert_eq!(s.len(), 4);
        assert!(s.is_all());
        assert_eq!(s.index(3), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(s.to_indices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn compose_maps_through_existing_selection() {
        let s = SelVec::Idx(vec![5, 7, 9, 11]);
        let narrowed = s.compose(&[0, 2]);
        assert_eq!(narrowed, SelVec::Idx(vec![5, 9]));
        let from_all = SelVec::all(10).compose(&[3, 1]);
        assert_eq!(from_all, SelVec::Idx(vec![3, 1]));
    }

    #[test]
    fn truncate_limits_positions() {
        assert_eq!(SelVec::all(5).truncate(2), SelVec::Idx(vec![0, 1]));
        assert_eq!(SelVec::all(5).truncate(9), SelVec::All(5));
        assert_eq!(
            SelVec::Idx(vec![4, 2, 0]).truncate(2),
            SelVec::Idx(vec![4, 2])
        );
    }

    #[test]
    fn compact_gathers_only_for_idx() {
        let b = batch(4);
        let all = SelBatch::from_batch(b.clone()).compact();
        assert_eq!(all, b);
        let sb = SelBatch::new(b.clone(), SelVec::Idx(vec![3, 1])).unwrap();
        assert_eq!(sb.num_rows(), 2);
        let c = sb.compact();
        assert_eq!(c.num_rows(), 2);
        assert_eq!(c.column(0), &ColumnVector::Int(vec![3, 1], None));
    }

    #[test]
    fn out_of_range_selection_rejected() {
        let b = batch(2);
        assert!(SelBatch::new(b.clone(), SelVec::Idx(vec![2])).is_err());
        assert!(SelBatch::new(b, SelVec::All(3)).is_err());
    }
}
