//! Identifier newtypes shared across the transaction, storage, and cache
//! layers. Keeping them as distinct types prevents the classic
//! TxnId-where-WriteId-was-expected bug family.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// The raw numeric identifier.
            pub fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}", self.0)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

id_newtype!(
    /// Global transaction identifier — monotonically increasing, allocated
    /// by the Metastore (Section 3.2).
    TxnId
);
id_newtype!(
    /// Per-table write identifier — monotonically increasing within one
    /// table's scope; every record written by a transaction to one table
    /// shares the same WriteId (Section 3.2).
    WriteId
);
id_newtype!(
    /// Unique identifier for a stored file; together with the file length
    /// it plays the role of the HDFS file id / blob-store ETag that LLAP
    /// uses for cache validity (Section 5.1).
    FileId
);
id_newtype!(
    /// Position of a record within its file.
    RowId
);
id_newtype!(
    /// Bucket/file index within a write — the "FileId" component of the
    /// paper's (WriteId, FileId, RowId) record identity triple. Named
    /// BucketId here to avoid clashing with the storage-layer FileId.
    BucketId
);

/// The unique identity of one record in an ACID table:
/// `(WriteId, BucketId, RowId)` — the paper's record-identity triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId {
    pub write_id: WriteId,
    pub bucket: BucketId,
    pub row: RowId,
}

impl RecordId {
    /// Construct a record identity.
    pub fn new(write_id: WriteId, bucket: BucketId, row: RowId) -> Self {
        RecordId {
            write_id,
            bucket,
            row,
        }
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}:{}:{}}}", self.write_id, self.bucket, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_and_ordered() {
        let a = TxnId(1);
        let b = TxnId(2);
        assert!(a < b);
        assert_eq!(a.raw(), 1);
        assert_eq!(WriteId::from(7).to_string(), "7");
    }

    #[test]
    fn record_id_orders_by_write_id_first() {
        let r1 = RecordId::new(WriteId(1), BucketId(9), RowId(9));
        let r2 = RecordId::new(WriteId(2), BucketId(0), RowId(0));
        assert!(r1 < r2);
        assert_eq!(r1.to_string(), "{1:9:9}");
    }
}
