//! Stable hashing for the vectorized hash operators.
//!
//! Join, aggregate, window and set-op hash tables key rows by a
//! canonical byte encoding of each key value (one [`encode_value`] call
//! per key column), hashed with inline FNV-1a — the same function
//! `ChunkKey::hash64` and the fault injector use. Two properties carry
//! the whole design:
//!
//! * **Stability.** FNV-1a is a fixed algorithm, so hash values — and
//!   with them partition routing and `HIVE_FAULT_SEED` replay
//!   schedules — are identical across runs, platforms and toolchains.
//!   (`DefaultHasher` only promises determinism within one compiler
//!   release.)
//! * **Encoding equality ⟺ key equality.** Two values receive the same
//!   encoding exactly when the engine's grouping semantics
//!   (`Value::group_eq` + `Value::hash_value`, the `HashMap` oracle
//!   path) would merge them into one group. Equal encodings trivially
//!   imply equal hashes, so the flat tables in `hive-exec` can compare
//!   keys with a plain `memcmp` against arena-resident bytes — no
//!   per-entry `Vec<Value>` and no re-hashing.
//!
//! The oracle merges two keys when they land in the same bucket *and*
//! compare equal, i.e. when `hash_value` normalizes them identically
//! and `group_eq` holds. The encoding mirrors both at once: numeric
//! values that normalize to the same `i64` (INT/BIGINT, integral
//! DOUBLE, scale-divisible DECIMAL) share [`TAG_I64`]; values the
//! oracle keeps apart (BOOLEAN vs INT, DATE vs TIMESTAMP at equal raw
//! magnitude, non-integral DOUBLE vs DECIMAL) get distinct tags. The
//! one deliberate cross-type datetime merge is the epoch itself:
//! `Date(0)` and `Timestamp(0)` hash and compare equal under the
//! oracle, so both encode as [`TAG_EPOCH0`].
//!
//! Every encoding is prefix-free (fixed length per tag, strings length-
//! prefixed), so concatenating per-column encodings preserves the
//! equality property for multi-column keys.

use crate::value::Value;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Fold `bytes` into an in-progress FNV-1a state (start from
/// [`FNV_OFFSET`]). Column-wise hashing uses this as its combine step:
/// each key column folds its encoding into the running per-row state.
#[inline]
pub fn fnv1a_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// FNV-1a over `bytes` from the offset basis.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_extend(FNV_OFFSET, bytes)
}

/// SQL NULL (all NULLs group together).
pub const TAG_NULL: u8 = 0x00;
/// Any value normalizing to an `i64`: INT, BIGINT, integral DOUBLE
/// (|v| < 9e18), DECIMAL divisible by its scale with an `i64` quotient.
pub const TAG_I64: u8 = 0x01;
/// Non-integral (or out-of-i64-range) DOUBLE, by raw bits.
pub const TAG_F64: u8 = 0x02;
/// DECIMAL not divisible by its scale: raw unscaled value + scale.
pub const TAG_DEC: u8 = 0x03;
/// UTF-8 string: u32 length prefix + bytes.
pub const TAG_STR: u8 = 0x04;
/// `Date(0)` / `Timestamp(0)` — the epoch, the only DATE/TIMESTAMP pair
/// the oracle merges across types (equal normalized hash *and* equal
/// under `sql_cmp`).
pub const TAG_EPOCH0: u8 = 0x05;
/// Dictionary code (emitted by the exec-layer key codecs; codes are
/// only comparable within one table's build/probe code space).
pub const TAG_CODE: u8 = 0x06;
/// Probe-only join miss: a probe-side dictionary entry absent from the
/// build dictionary. Build keys never contain it, so lookups miss.
pub const TAG_MISS: u8 = 0x07;
/// Non-epoch DATE (days since epoch).
pub const TAG_DATE: u8 = 0x08;
/// Non-epoch TIMESTAMP (microseconds since epoch).
pub const TAG_TS: u8 = 0x09;
/// BOOLEAN (never merges with INT 0/1 — `sql_cmp` has no
/// boolean/numeric bridge, so the oracle keeps them apart).
pub const TAG_BOOL: u8 = 0x0A;
/// Scale-divisible DECIMAL whose quotient overflows `i64`.
pub const TAG_BIGDEC: u8 = 0x0B;

#[inline]
fn pow10(s: u8) -> i128 {
    10i128.pow(s as u32)
}

/// Append the canonical encoding of `v` to `out`. See the module docs
/// for the equivalence argument; [`encode_code`] / [`encode_miss`]
/// cover the exec-layer dictionary-code key parts.
#[inline]
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Boolean(b) => {
            out.push(TAG_BOOL);
            out.push(*b as u8);
        }
        Value::Int(v) => encode_i64(*v as i64, out),
        Value::BigInt(v) => encode_i64(*v, out),
        Value::Double(v) => encode_f64(*v, out),
        Value::Decimal(u, s) => encode_decimal(*u, *s, out),
        Value::String(s) => encode_str(s.as_bytes(), out),
        Value::Date(d) => encode_date(*d, out),
        Value::Timestamp(t) => encode_timestamp(*t, out),
    }
}

/// Encode an integer-normalized value ([`TAG_I64`]).
#[inline]
pub fn encode_i64(v: i64, out: &mut Vec<u8>) {
    out.push(TAG_I64);
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode a DOUBLE: integral values in `i64` range normalize to
/// [`TAG_I64`] (merging with equal integers, as the oracle's
/// `hash_value` + `sql_cmp` do), everything else keys by raw bits.
#[inline]
pub fn encode_f64(v: f64, out: &mut Vec<u8>) {
    if v.fract() == 0.0 && v.abs() < 9e18 {
        encode_i64(v as i64, out);
    } else {
        out.push(TAG_F64);
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

/// Encode a DECIMAL (unscaled value + scale, normalizing integral
/// values into the [`TAG_I64`] class).
#[inline]
pub fn encode_decimal(u: i128, s: u8, out: &mut Vec<u8>) {
    let p = pow10(s);
    if u % p == 0 {
        let q = u / p;
        match i64::try_from(q) {
            Ok(q) => encode_i64(q, out),
            Err(_) => {
                out.push(TAG_BIGDEC);
                out.extend_from_slice(&q.to_le_bytes());
            }
        }
    } else {
        out.push(TAG_DEC);
        out.extend_from_slice(&u.to_le_bytes());
        out.push(s);
    }
}

/// Encode a string by length-prefixed bytes.
#[inline]
pub fn encode_str(s: &[u8], out: &mut Vec<u8>) {
    out.push(TAG_STR);
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s);
}

/// Encode a DATE (days since epoch).
#[inline]
pub fn encode_date(days: i32, out: &mut Vec<u8>) {
    if days == 0 {
        out.push(TAG_EPOCH0);
    } else {
        out.push(TAG_DATE);
        out.extend_from_slice(&(days as i64).to_le_bytes());
    }
}

/// Encode a TIMESTAMP (microseconds since epoch).
#[inline]
pub fn encode_timestamp(micros: i64, out: &mut Vec<u8>) {
    if micros == 0 {
        out.push(TAG_EPOCH0);
    } else {
        out.push(TAG_TS);
        out.extend_from_slice(&micros.to_le_bytes());
    }
}

/// Encode a dictionary code key part.
#[inline]
pub fn encode_code(code: u32, out: &mut Vec<u8>) {
    out.push(TAG_CODE);
    out.extend_from_slice(&code.to_le_bytes());
}

/// Encode the probe-only join-miss key part.
#[inline]
pub fn encode_miss(out: &mut Vec<u8>) {
    out.push(TAG_MISS);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(v: &Value) -> Vec<u8> {
        let mut out = Vec::new();
        encode_value(v, &mut out);
        out
    }

    #[test]
    fn fnv1a_is_pinned() {
        // Reference vectors for the standard FNV-1a parameters; these
        // values must never change — partition routing and fault-seed
        // replay schedules depend on them.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        // Extending in two steps equals one pass (the column-wise
        // combine step).
        assert_eq!(fnv1a_extend(fnv1a(b"foo"), b"bar"), fnv1a(b"foobar"));
    }

    #[test]
    fn encodings_are_pinned() {
        assert_eq!(enc(&Value::Null), vec![TAG_NULL]);
        assert_eq!(enc(&Value::Boolean(true)), vec![TAG_BOOL, 1]);
        assert_eq!(enc(&Value::Int(1)), vec![TAG_I64, 1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(
            enc(&Value::String("ab".into())),
            vec![TAG_STR, 2, 0, 0, 0, b'a', b'b']
        );
        assert_eq!(fnv1a(&enc(&Value::Int(1))), 0x7194_f3e5_9ae4_7dcd);
    }

    #[test]
    fn numeric_normalization_matches_oracle_merges() {
        // Classes the HashMap oracle merges (equal hash_value + group_eq)
        // share one encoding.
        assert_eq!(enc(&Value::Int(42)), enc(&Value::BigInt(42)));
        assert_eq!(enc(&Value::Int(42)), enc(&Value::Double(42.0)));
        assert_eq!(enc(&Value::Int(42)), enc(&Value::Decimal(4200, 2)));
        assert_eq!(enc(&Value::Double(0.0)), enc(&Value::Double(-0.0)));
        // Classes it keeps apart stay apart.
        assert_ne!(enc(&Value::Boolean(true)), enc(&Value::Int(1)));
        assert_ne!(enc(&Value::Double(2.5)), enc(&Value::Decimal(25, 1)));
        assert_ne!(enc(&Value::Int(0)), enc(&Value::Date(0)));
        // Non-divisible decimals key by raw (unscaled, scale), exactly
        // the oracle's hash input: (25,1) and (250,2) are sql-equal but
        // hash apart, so they never merge there either.
        assert_ne!(enc(&Value::Decimal(25, 1)), enc(&Value::Decimal(250, 2)));
    }

    #[test]
    fn datetime_encoding_merges_only_at_epoch() {
        // The oracle merges Date(d)/Timestamp(t) iff their normalized
        // hashes agree (d == t) *and* sql_cmp holds (86_400_000_000·d
        // == t) — simultaneously true only at the epoch.
        assert_eq!(enc(&Value::Date(0)), enc(&Value::Timestamp(0)));
        assert_ne!(enc(&Value::Date(1)), enc(&Value::Timestamp(1)));
        assert_ne!(enc(&Value::Date(1)), enc(&Value::Timestamp(86_400_000_000)));
        assert_eq!(enc(&Value::Date(7)), enc(&Value::Date(7)));
    }

    #[test]
    fn oversized_divisible_decimals_key_by_quotient() {
        let big = 20_000_000_000_000_000_000_i128; // 2e19 > i64::MAX
        assert_eq!(
            enc(&Value::Decimal(big, 0)),
            enc(&Value::Decimal(big * 10, 1))
        );
        assert_ne!(enc(&Value::Decimal(big, 0)), enc(&Value::BigInt(2)));
    }

    #[test]
    fn encodings_are_prefix_free_per_tag() {
        // Strings carry an explicit length, so a shorter string is
        // never a prefix-match of a longer one inside a multi-column
        // key.
        let mut ab = Vec::new();
        encode_str(b"ab", &mut ab);
        encode_i64(7, &mut ab);
        let mut a = Vec::new();
        encode_str(b"a", &mut a);
        encode_str(b"b7", &mut a);
        assert_ne!(ab, a);
    }
}
