//! A compact bitmap used for null masks, Druid's inverted indexes, and
//! row-group selection.

use serde::{Deserialize, Serialize};

/// A fixed-capacity bitmap backed by `u64` words.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// A bitmap of `len` zero bits.
    pub fn new(len: usize) -> Self {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// A bitmap of `len` one bits.
    pub fn all_set(len: usize) -> Self {
        let mut b = BitSet {
            words: vec![u64::MAX; len.div_ceil(64)],
            len,
        };
        b.clear_tail();
        b
    }

    fn clear_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if `len() == 0`.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Set bit `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clear bit `i`.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// In-place intersection with `other` (lengths must match).
    pub fn and_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place union with `other` (lengths must match).
    pub fn or_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place complement.
    pub fn negate(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.clear_tail();
    }

    /// Iterate over indexes of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut b = BitSet::new(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.unset(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn boolean_algebra() {
        let mut a = BitSet::new(100);
        let mut b = BitSet::new(100);
        a.set(3);
        a.set(50);
        b.set(50);
        b.set(99);
        let mut i = a.clone();
        i.and_with(&b);
        assert_eq!(i.iter_ones().collect::<Vec<_>>(), vec![50]);
        let mut u = a.clone();
        u.or_with(&b);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![3, 50, 99]);
        a.negate();
        assert!(!a.get(3));
        assert!(a.get(4));
        assert_eq!(a.count_ones(), 98);
    }

    #[test]
    fn all_set_respects_tail() {
        let b = BitSet::all_set(70);
        assert_eq!(b.count_ones(), 70);
        let mut n = b.clone();
        n.negate();
        assert_eq!(n.count_ones(), 0);
    }

    #[test]
    fn iter_ones_ascending() {
        let mut b = BitSet::new(200);
        for i in [5usize, 63, 64, 65, 128, 199] {
            b.set(i);
        }
        assert_eq!(
            b.iter_ones().collect::<Vec<_>>(),
            vec![5, 63, 64, 65, 128, 199]
        );
    }
}
