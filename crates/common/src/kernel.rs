//! Kernel type descriptors for the physical IR (`hive_exec::pir`).
//!
//! The PIR compile step resolves every expression node to a
//! type-specialized kernel **once per pipeline** instead of matching on
//! [`ColumnVector`](crate::vector::ColumnVector) variants per batch.
//! A [`KernelType`] names the concrete value domain a kernel is
//! monomorphized over — the schema-level type plus the runtime
//! representation detail the schema cannot carry (dictionary-encoded
//! strings execute over the `u32` code domain, not `String`s).

use crate::types::DataType;
use crate::vector::ColumnVector;

/// The concrete value domain a type-specialized kernel runs over.
///
/// One descriptor per [`ColumnVector`] payload representation. `Str`
/// and `DictCode` are both `DataType::String` at the schema level; the
/// split is what lets a compiled predicate evaluate a dictionary
/// column once per distinct entry instead of once per row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelType {
    Boolean,
    Int,
    BigInt,
    Double,
    /// Unscaled `i128` domain at the given scale.
    Decimal(u8),
    Str,
    /// Dictionary codes (`u32`) over a shared string dictionary.
    DictCode,
    Date,
    Timestamp,
}

impl KernelType {
    /// The kernel domain a schema type lowers to, if it is vectorizable
    /// at all. `String` resolves to [`KernelType::Str`]; whether a given
    /// batch actually arrives dictionary-encoded is a per-batch
    /// representation choice, queried via [`KernelType::of_column`].
    pub fn of_data_type(dt: &DataType) -> Option<KernelType> {
        Some(match dt {
            DataType::Boolean => KernelType::Boolean,
            DataType::Int => KernelType::Int,
            DataType::BigInt => KernelType::BigInt,
            DataType::Double => KernelType::Double,
            DataType::Decimal(_, s) => KernelType::Decimal(*s),
            DataType::String => KernelType::Str,
            DataType::Date => KernelType::Date,
            DataType::Timestamp => KernelType::Timestamp,
            _ => return None,
        })
    }

    /// The kernel domain of a concrete column representation.
    pub fn of_column(col: &ColumnVector) -> KernelType {
        match col {
            ColumnVector::Boolean(..) => KernelType::Boolean,
            ColumnVector::Int(..) => KernelType::Int,
            ColumnVector::BigInt(..) => KernelType::BigInt,
            ColumnVector::Double(..) => KernelType::Double,
            ColumnVector::Decimal(_, s, _) => KernelType::Decimal(*s),
            ColumnVector::Str(..) => KernelType::Str,
            ColumnVector::Dict { .. } => KernelType::DictCode,
            ColumnVector::Date(..) => KernelType::Date,
            ColumnVector::Timestamp(..) => KernelType::Timestamp,
        }
    }

    /// Fixed-width domains whose comparisons are branch-free integer or
    /// float ops — the cheapest conjunct tier for short-circuit
    /// ordering.
    pub fn is_fixed_width(self) -> bool {
        !matches!(self, KernelType::Str | KernelType::DictCode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn schema_and_column_domains_agree_except_dict() {
        let col = ColumnVector::Int(vec![1, 2], None);
        assert_eq!(KernelType::of_column(&col), KernelType::Int);
        assert_eq!(
            KernelType::of_data_type(&col.data_type()),
            Some(KernelType::Int)
        );

        let dict =
            ColumnVector::dict_from_codes(vec![0, 1], Arc::new(vec!["a".into(), "b".into()]), None)
                .unwrap();
        assert_eq!(KernelType::of_column(&dict), KernelType::DictCode);
        // Schema-level the same column is just a String.
        assert_eq!(
            KernelType::of_data_type(&dict.data_type()),
            Some(KernelType::Str)
        );
        assert!(!KernelType::of_column(&dict).is_fixed_width());
        assert!(KernelType::Decimal(2).is_fixed_width());
    }
}
