//! The SQL type system.
//!
//! Mirrors the atomic types Hive supports (Section 3.1 of the paper);
//! the nested types (STRUCT/ARRAY/MAP) are represented but only atomic
//! types flow through the vectorized engine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A SQL data type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// BOOLEAN
    Boolean,
    /// INT (32-bit signed)
    Int,
    /// BIGINT (64-bit signed)
    BigInt,
    /// DOUBLE (64-bit IEEE float)
    Double,
    /// DECIMAL(precision, scale) with i128 unscaled representation.
    Decimal(u8, u8),
    /// STRING / VARCHAR (length constraints are not enforced).
    String,
    /// DATE stored as days since the epoch (1970-01-01).
    Date,
    /// TIMESTAMP stored as microseconds since the epoch.
    Timestamp,
    /// STRUCT<name: type, ...> — catalog-representable, not vectorized.
    Struct(Vec<(String, DataType)>),
    /// ARRAY<type> — catalog-representable, not vectorized.
    Array(Box<DataType>),
    /// MAP<key, value> — catalog-representable, not vectorized.
    Map(Box<DataType>, Box<DataType>),
    /// The type of NULL literals before coercion.
    Null,
}

impl DataType {
    /// True for types the vectorized engine can process.
    pub fn is_atomic(&self) -> bool {
        !matches!(
            self,
            DataType::Struct(_) | DataType::Array(_) | DataType::Map(_, _)
        )
    }

    /// True for types usable in arithmetic.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::BigInt | DataType::Double | DataType::Decimal(_, _)
        )
    }

    /// True for integer-family types.
    pub fn is_integer(&self) -> bool {
        matches!(self, DataType::Int | DataType::BigInt)
    }

    /// True if values of this type have a total order usable by ORDER BY
    /// and min/max statistics.
    pub fn is_orderable(&self) -> bool {
        self.is_atomic()
    }

    /// The common supertype two operands coerce to, if any.
    ///
    /// The lattice is: Int < BigInt < Decimal < Double; Date < Timestamp;
    /// Null coerces to anything; identical types coerce to themselves.
    pub fn common_supertype(a: &DataType, b: &DataType) -> Option<DataType> {
        use DataType::*;
        if a == b {
            return Some(a.clone());
        }
        match (a, b) {
            (Null, t) | (t, Null) => Some(t.clone()),
            (Int, BigInt) | (BigInt, Int) => Some(BigInt),
            (Int, Double) | (Double, Int) | (BigInt, Double) | (Double, BigInt) => Some(Double),
            (Decimal(_, _), Double) | (Double, Decimal(_, _)) => Some(Double),
            (Int, Decimal(p, s)) | (Decimal(p, s), Int) => Some(Decimal((*p).max(10 + *s), *s)),
            (BigInt, Decimal(p, s)) | (Decimal(p, s), BigInt) => {
                Some(Decimal((*p).max(19 + *s).min(38), *s))
            }
            (Decimal(p1, s1), Decimal(p2, s2)) => {
                let s = (*s1).max(*s2);
                let int_digits = (p1 - s1).max(p2 - s2);
                Some(Decimal((int_digits + s).min(38), s))
            }
            (Date, Timestamp) | (Timestamp, Date) => Some(Timestamp),
            (String, Date) | (Date, String) => Some(Date),
            (String, Timestamp) | (Timestamp, String) => Some(Timestamp),
            // Hive-style lenient string/number comparisons go through double.
            (String, t) | (t, String) if t.is_numeric() => Some(Double),
            _ => None,
        }
    }

    /// Result type of an arithmetic operation between two types.
    pub fn arithmetic_result(a: &DataType, b: &DataType) -> Option<DataType> {
        let t = Self::common_supertype(a, b)?;
        t.is_numeric().then_some(t)
    }

    /// Approximate in-memory width of one value, used by the cost model.
    pub fn approx_width(&self) -> usize {
        match self {
            DataType::Boolean => 1,
            DataType::Int | DataType::Date => 4,
            DataType::BigInt | DataType::Double | DataType::Timestamp => 8,
            DataType::Decimal(_, _) => 16,
            DataType::String => 24,
            DataType::Struct(fs) => fs.iter().map(|(_, t)| t.approx_width()).sum(),
            DataType::Array(t) | DataType::Map(_, t) => 8 * t.approx_width(),
            DataType::Null => 1,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Boolean => write!(f, "BOOLEAN"),
            DataType::Int => write!(f, "INT"),
            DataType::BigInt => write!(f, "BIGINT"),
            DataType::Double => write!(f, "DOUBLE"),
            DataType::Decimal(p, s) => write!(f, "DECIMAL({p},{s})"),
            DataType::String => write!(f, "STRING"),
            DataType::Date => write!(f, "DATE"),
            DataType::Timestamp => write!(f, "TIMESTAMP"),
            DataType::Struct(fs) => {
                write!(f, "STRUCT<")?;
                for (i, (n, t)) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {t}")?;
                }
                write!(f, ">")
            }
            DataType::Array(t) => write!(f, "ARRAY<{t}>"),
            DataType::Map(k, v) => write!(f, "MAP<{k}, {v}>"),
            DataType::Null => write!(f, "NULL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn supertype_lattice() {
        use DataType::*;
        assert_eq!(DataType::common_supertype(&Int, &BigInt), Some(BigInt));
        assert_eq!(DataType::common_supertype(&Int, &Double), Some(Double));
        assert_eq!(
            DataType::common_supertype(&Decimal(7, 2), &Decimal(10, 4)),
            Some(Decimal(10, 4))
        );
        assert_eq!(DataType::common_supertype(&Null, &String), Some(String));
        assert_eq!(
            DataType::common_supertype(&Date, &Timestamp),
            Some(Timestamp)
        );
        assert_eq!(DataType::common_supertype(&Boolean, &Int), None);
    }

    #[test]
    fn string_number_comparison_goes_through_double() {
        assert_eq!(
            DataType::common_supertype(&DataType::String, &DataType::Int),
            Some(DataType::Double)
        );
    }

    #[test]
    fn display_round_trips_common_types() {
        assert_eq!(DataType::Decimal(7, 2).to_string(), "DECIMAL(7,2)");
        assert_eq!(
            DataType::Array(Box::new(DataType::Int)).to_string(),
            "ARRAY<INT>"
        );
    }

    #[test]
    fn atomic_and_numeric_flags() {
        assert!(DataType::Decimal(10, 2).is_numeric());
        assert!(!DataType::String.is_numeric());
        assert!(DataType::String.is_atomic());
        assert!(!DataType::Array(Box::new(DataType::Int)).is_atomic());
    }
}
