//! # hive-common
//!
//! Shared substrate for the hive-rs warehouse: the SQL type system
//! ([`DataType`]), scalar values ([`Value`]), schemas ([`Schema`]),
//! columnar vectorized batches ([`VectorBatch`]), engine configuration
//! ([`HiveConf`]), identifier newtypes, and error types.
//!
//! Every other crate in the workspace depends on this one; it has no
//! dependencies of its own beyond `serde`.

pub mod bitset;
pub mod conf;
pub mod dates;
pub mod error;
pub mod fault;
pub mod hash;
pub mod ids;
pub mod kernel;
pub mod like;
pub mod row;
pub mod schema;
pub mod selvec;
pub mod types;
pub mod value;
pub mod vector;

pub use bitset::BitSet;
pub use conf::{EngineVersion, HiveConf, RuntimeKind};
pub use error::{HiveError, Result};
pub use fault::{FaultInjector, FaultPlan, FaultSite, FaultStats};
pub use ids::{BucketId, FileId, RecordId, RowId, TxnId, WriteId};
pub use kernel::KernelType;
pub use row::Row;
pub use schema::{Field, Schema};
pub use selvec::{SelBatch, SelVec};
pub use types::DataType;
pub use value::Value;
pub use vector::ColumnBuilder;
pub use vector::{ColumnVector, VectorBatch};
