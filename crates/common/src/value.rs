//! Scalar values and value-level operations.

use crate::dates;
use crate::error::{HiveError, Result};
use crate::types::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// A single scalar SQL value.
///
/// `Decimal` carries its own scale so values are self-describing;
/// arithmetic rescales operands to a common scale.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    Boolean(bool),
    Int(i32),
    BigInt(i64),
    Double(f64),
    /// Unscaled integer plus scale: `Decimal(12345, 2)` is `123.45`.
    Decimal(i128, u8),
    String(String),
    /// Days since 1970-01-01.
    Date(i32),
    /// Microseconds since 1970-01-01T00:00:00.
    Timestamp(i64),
}

impl Value {
    /// The data type of this value (`DataType::Null` for NULL).
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Boolean(_) => DataType::Boolean,
            Value::Int(_) => DataType::Int,
            Value::BigInt(_) => DataType::BigInt,
            Value::Double(_) => DataType::Double,
            Value::Decimal(_, s) => DataType::Decimal(38, *s),
            Value::String(_) => DataType::String,
            Value::Date(_) => DataType::Date,
            Value::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// True iff this is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view as f64, if the value is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::BigInt(v) => Some(*v as f64),
            Value::Double(v) => Some(*v),
            Value::Decimal(u, s) => Some(*u as f64 / 10f64.powi(*s as i32)),
            _ => None,
        }
    }

    /// Integer view as i64, if the value is integral (or an integral date).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v as i64),
            Value::BigInt(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            Value::Timestamp(v) => Some(*v),
            Value::Boolean(b) => Some(*b as i64),
            _ => None,
        }
    }

    /// String view, if the value is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if the value is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Boolean(b) => Some(*b),
            _ => None,
        }
    }

    /// Cast this value to `target`, following Hive's lenient cast rules
    /// (failed string→number casts yield NULL rather than erroring).
    pub fn cast_to(&self, target: &DataType) -> Result<Value> {
        use DataType as T;
        if self.is_null() {
            return Ok(Value::Null);
        }
        let out = match (self, target) {
            (v, t) if v.data_type() == *t => v.clone(),
            (Value::Int(v), T::BigInt) => Value::BigInt(*v as i64),
            (Value::Int(v), T::Double) => Value::Double(*v as f64),
            (Value::Int(v), T::Decimal(_, s)) => Value::Decimal(*v as i128 * pow10(*s), *s),
            (Value::Int(v), T::String) => Value::String(v.to_string()),
            (Value::Int(v), T::Boolean) => Value::Boolean(*v != 0),
            (Value::BigInt(v), T::Int) => Value::Int(*v as i32),
            (Value::BigInt(v), T::Double) => Value::Double(*v as f64),
            (Value::BigInt(v), T::Decimal(_, s)) => Value::Decimal(*v as i128 * pow10(*s), *s),
            (Value::BigInt(v), T::String) => Value::String(v.to_string()),
            (Value::BigInt(v), T::Timestamp) => Value::Timestamp(*v),
            (Value::Double(v), T::Int) => Value::Int(*v as i32),
            (Value::Double(v), T::BigInt) => Value::BigInt(*v as i64),
            (Value::Double(v), T::Decimal(_, s)) => {
                Value::Decimal((*v * pow10(*s) as f64).round() as i128, *s)
            }
            (Value::Double(v), T::String) => Value::String(format_double(*v)),
            (Value::Decimal(u, s), T::Double) => Value::Double(*u as f64 / pow10(*s) as f64),
            (Value::Decimal(u, s), T::Int) => Value::Int((u / pow10(*s)) as i32),
            (Value::Decimal(u, s), T::BigInt) => Value::BigInt((u / pow10(*s)) as i64),
            (Value::Decimal(u, s), T::Decimal(_, s2)) => Value::Decimal(rescale(*u, *s, *s2), *s2),
            (Value::Decimal(u, s), T::String) => Value::String(format_decimal(*u, *s)),
            (Value::Boolean(b), T::Int) => Value::Int(*b as i32),
            (Value::Boolean(b), T::String) => Value::String(b.to_string()),
            (Value::String(s), T::Int) => s
                .trim()
                .parse::<i32>()
                .map(Value::Int)
                .unwrap_or(Value::Null),
            (Value::String(s), T::BigInt) => s
                .trim()
                .parse::<i64>()
                .map(Value::BigInt)
                .unwrap_or(Value::Null),
            (Value::String(s), T::Double) => s
                .trim()
                .parse::<f64>()
                .map(Value::Double)
                .unwrap_or(Value::Null),
            (Value::String(s), T::Decimal(_, sc)) => parse_decimal(s, *sc)
                .map(|u| Value::Decimal(u, *sc))
                .unwrap_or(Value::Null),
            (Value::String(s), T::Date) => {
                dates::parse_date(s).map(Value::Date).unwrap_or(Value::Null)
            }
            (Value::String(s), T::Timestamp) => dates::parse_timestamp(s)
                .map(Value::Timestamp)
                .unwrap_or(Value::Null),
            (Value::String(s), T::Boolean) => match s.to_ascii_lowercase().as_str() {
                "true" => Value::Boolean(true),
                "false" => Value::Boolean(false),
                _ => Value::Null,
            },
            (Value::Date(d), T::Timestamp) => Value::Timestamp(*d as i64 * 86_400_000_000),
            (Value::Date(d), T::String) => Value::String(dates::format_date(*d)),
            (Value::Timestamp(t), T::Date) => Value::Date(t.div_euclid(86_400_000_000) as i32),
            (Value::Timestamp(t), T::String) => Value::String(dates::format_timestamp(*t)),
            (Value::Timestamp(t), T::BigInt) => Value::BigInt(*t),
            (v, t) => {
                return Err(HiveError::Execution(format!(
                    "cannot cast {} to {t}",
                    v.data_type()
                )))
            }
        };
        Ok(out)
    }

    /// SQL comparison: returns `None` when either side is NULL, following
    /// three-valued logic. Values of different numeric types compare by
    /// numeric value; strings compare lexically.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        if self.is_null() || other.is_null() {
            return None;
        }
        match (self, other) {
            (Boolean(a), Boolean(b)) => Some(a.cmp(b)),
            (String(a), String(b)) => Some(a.cmp(b)),
            (Date(a), Date(b)) => Some(a.cmp(b)),
            (Timestamp(a), Timestamp(b)) => Some(a.cmp(b)),
            (Date(a), Timestamp(b)) => Some((*a as i64 * 86_400_000_000).cmp(b)),
            (Timestamp(a), Date(b)) => Some(a.cmp(&(*b as i64 * 86_400_000_000))),
            (Decimal(u1, s1), Decimal(u2, s2)) => {
                let s = (*s1).max(*s2);
                Some(rescale(*u1, *s1, s).cmp(&rescale(*u2, *s2, s)))
            }
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (BigInt(a), BigInt(b)) => Some(a.cmp(b)),
            (Int(a), BigInt(b)) => Some((*a as i64).cmp(b)),
            (BigInt(a), Int(b)) => Some(a.cmp(&(*b as i64))),
            (Decimal(u, s), Int(b)) => Some(u.cmp(&(*b as i128 * pow10(*s)))),
            (Int(a), Decimal(u, s)) => Some((*a as i128 * pow10(*s)).cmp(u)),
            (Decimal(u, s), BigInt(b)) => Some(u.cmp(&(*b as i128 * pow10(*s)))),
            (BigInt(a), Decimal(u, s)) => Some((*a as i128 * pow10(*s)).cmp(u)),
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Total order used by ORDER BY and sort operators: NULLs sort last
    /// (Hive's default `nulls last` for ascending order).
    pub fn total_cmp_nulls_last(&self, other: &Value) -> Ordering {
        match (self.is_null(), other.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Greater,
            (false, true) => Ordering::Less,
            (false, false) => self.sql_cmp(other).unwrap_or(Ordering::Equal),
        }
    }

    /// Equality under SQL semantics but with NULL == NULL, used by
    /// GROUP BY / DISTINCT grouping.
    pub fn group_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (a, b) if a.is_null() || b.is_null() => false,
            (a, b) => a.sql_cmp(b) == Some(Ordering::Equal),
        }
    }

    /// Add two numeric values with type promotion.
    pub fn add(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "+", |a, b| a.checked_add(b), |a, b| a + b)
    }

    /// Subtract with type promotion.
    pub fn sub(&self, other: &Value) -> Result<Value> {
        numeric_binop(self, other, "-", |a, b| a.checked_sub(b), |a, b| a - b)
    }

    /// Multiply with type promotion. Decimal scales add.
    pub fn mul(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self, other) {
            (Value::Decimal(u1, s1), Value::Decimal(u2, s2)) => {
                let s = (*s1 + *s2).min(18);
                let raw = u1 * u2; // scale s1+s2
                Ok(Value::Decimal(rescale(raw, s1 + s2, s), s))
            }
            // Decimal × integer keeps the decimal's scale.
            (Value::Decimal(u, s), other_v) | (other_v, Value::Decimal(u, s))
                if other_v.data_type().is_integer() =>
            {
                let y = other_v.as_i64().expect("integer") as i128;
                u.checked_mul(y)
                    .map(|v| Value::Decimal(v, *s))
                    .ok_or_else(|| HiveError::Execution("decimal overflow in *".into()))
            }
            _ => numeric_binop(self, other, "*", |a, b| a.checked_mul(b), |a, b| a * b),
        }
    }

    /// Divide. Integer division by zero yields NULL (Hive semantics).
    /// Integer/integer division produces DOUBLE, matching Hive's `/`.
    pub fn div(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        let b = other
            .as_f64()
            .ok_or_else(|| HiveError::Execution("non-numeric divisor".into()))?;
        if b == 0.0 {
            return Ok(Value::Null);
        }
        let a = self
            .as_f64()
            .ok_or_else(|| HiveError::Execution("non-numeric dividend".into()))?;
        Ok(Value::Double(a / b))
    }

    /// Modulo; NULL on zero divisor.
    pub fn rem(&self, other: &Value) -> Result<Value> {
        if self.is_null() || other.is_null() {
            return Ok(Value::Null);
        }
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => Ok(if b == 0 {
                Value::Null
            } else {
                Value::BigInt(a % b)
            }),
            _ => {
                let a = self
                    .as_f64()
                    .ok_or_else(|| HiveError::Execution("non-numeric modulo operand".into()))?;
                let b = other
                    .as_f64()
                    .ok_or_else(|| HiveError::Execution("non-numeric modulo operand".into()))?;
                Ok(if b == 0.0 {
                    Value::Null
                } else {
                    Value::Double(a % b)
                })
            }
        }
    }

    /// Arithmetic negation.
    pub fn neg(&self) -> Result<Value> {
        match self {
            Value::Null => Ok(Value::Null),
            Value::Int(v) => Ok(Value::Int(-v)),
            Value::BigInt(v) => Ok(Value::BigInt(-v)),
            Value::Double(v) => Ok(Value::Double(-v)),
            Value::Decimal(u, s) => Ok(Value::Decimal(-u, *s)),
            v => Err(HiveError::Execution(format!(
                "cannot negate {}",
                v.data_type()
            ))),
        }
    }

    /// A stable hash for grouping/shuffling. NULL hashes to a fixed value;
    /// numeric types hash by normalized numeric value so `INT 1` and
    /// `BIGINT 1` land in the same group/partition.
    pub fn hash_value<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => NULL_HASH_MARKER.hash(state),
            Value::Boolean(b) => (*b as i64).hash(state),
            Value::Int(v) => (*v as i64).hash(state),
            Value::BigInt(v) => v.hash(state),
            Value::Double(v) => {
                if v.fract() == 0.0 && v.abs() < 9e18 {
                    (*v as i64).hash(state)
                } else {
                    v.to_bits().hash(state)
                }
            }
            Value::Decimal(u, s) => {
                // Normalize to integer when possible for cross-type grouping.
                let p = pow10(*s);
                if u % p == 0 {
                    ((u / p) as i64).hash(state)
                } else {
                    u.hash(state);
                    s.hash(state);
                }
            }
            Value::String(v) => v.hash(state),
            Value::Date(v) => (*v as i64).hash(state),
            Value::Timestamp(v) => v.hash(state),
        }
    }
}

/// Sentinel hashed in place of NULL so all NULLs land in one group.
const NULL_HASH_MARKER: i64 = 0x6e75_6c6c; // "null"

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.group_eq(other)
    }
}
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.hash_value(state)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Boolean(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::BigInt(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{}", format_double(*v)),
            Value::Decimal(u, s) => write!(f, "{}", format_decimal(*u, *s)),
            Value::String(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{}", dates::format_date(*d)),
            Value::Timestamp(t) => write!(f, "{}", dates::format_timestamp(*t)),
        }
    }
}

/// Raise 10 to `s` as i128.
pub fn pow10(s: u8) -> i128 {
    10i128.pow(s as u32)
}

/// Change a decimal's scale, rounding half away from zero when reducing.
pub fn rescale(unscaled: i128, from: u8, to: u8) -> i128 {
    use std::cmp::Ordering::*;
    match from.cmp(&to) {
        Equal => unscaled,
        Less => unscaled * pow10(to - from),
        Greater => {
            let f = pow10(from - to);
            let q = unscaled / f;
            let r = unscaled % f;
            if r.abs() * 2 >= f {
                q + unscaled.signum()
            } else {
                q
            }
        }
    }
}

/// Parse a decimal literal like `-123.456` into an unscaled i128 at `scale`.
pub fn parse_decimal(s: &str, scale: u8) -> Option<i128> {
    let s = s.trim();
    let (neg, s) = match s.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let (int_part, frac_part) = match s.split_once('.') {
        Some((i, f)) => (i, f),
        None => (s, ""),
    };
    if int_part.is_empty() && frac_part.is_empty() {
        return None;
    }
    if !int_part.chars().all(|c| c.is_ascii_digit())
        || !frac_part.chars().all(|c| c.is_ascii_digit())
    {
        return None;
    }
    let int_v: i128 = if int_part.is_empty() {
        0
    } else {
        int_part.parse().ok()?
    };
    let mut frac_digits = frac_part.to_string();
    // Parse at the literal's own scale, then rescale (rounding) to target.
    let lit_scale = frac_digits.len().min(30) as u8;
    frac_digits.truncate(lit_scale as usize);
    let frac_v: i128 = if frac_digits.is_empty() {
        0
    } else {
        frac_digits.parse().ok()?
    };
    let unscaled_lit = int_v * pow10(lit_scale) + frac_v;
    let v = rescale(unscaled_lit, lit_scale, scale);
    Some(if neg { -v } else { v })
}

/// Format a decimal unscaled value at `scale` (e.g. `(12345, 2)` → `123.45`).
pub fn format_decimal(unscaled: i128, scale: u8) -> String {
    if scale == 0 {
        return unscaled.to_string();
    }
    let p = pow10(scale);
    let sign = if unscaled < 0 { "-" } else { "" };
    let a = unscaled.unsigned_abs();
    let p = p as u128;
    format!("{sign}{}.{:0width$}", a / p, a % p, width = scale as usize)
}

/// Format a double the way Hive prints it (integral values keep `.0`).
pub fn format_double(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn numeric_binop(
    a: &Value,
    b: &Value,
    op: &str,
    int_op: impl Fn(i128, i128) -> Option<i128>,
    f_op: impl Fn(f64, f64) -> f64,
) -> Result<Value> {
    use Value::*;
    if a.is_null() || b.is_null() {
        return Ok(Null);
    }
    match (a, b) {
        (Int(x), Int(y)) => int_op(*x as i128, *y as i128)
            .map(|v| Int(v as i32))
            .ok_or_else(|| HiveError::Execution(format!("integer overflow in {op}"))),
        (Int(x), BigInt(y)) | (BigInt(y), Int(x)) => int_op(*x as i128, *y as i128)
            .map(|v| BigInt(v as i64))
            .ok_or_else(|| HiveError::Execution(format!("integer overflow in {op}"))),
        (BigInt(x), BigInt(y)) => int_op(*x as i128, *y as i128)
            .map(|v| BigInt(v as i64))
            .ok_or_else(|| HiveError::Execution(format!("integer overflow in {op}"))),
        (Decimal(u1, s1), Decimal(u2, s2)) => {
            let s = (*s1).max(*s2);
            int_op(rescale(*u1, *s1, s), rescale(*u2, *s2, s))
                .map(|v| Decimal(v, s))
                .ok_or_else(|| HiveError::Execution(format!("decimal overflow in {op}")))
        }
        (Decimal(u, s), Int(y)) | (Int(y), Decimal(u, s)) if op != "-" => {
            int_op(*u, *y as i128 * pow10(*s))
                .map(|v| Decimal(v, *s))
                .ok_or_else(|| HiveError::Execution(format!("decimal overflow in {op}")))
        }
        (Decimal(u, s), BigInt(y)) | (BigInt(y), Decimal(u, s)) if op != "-" => {
            int_op(*u, *y as i128 * pow10(*s))
                .map(|v| Decimal(v, *s))
                .ok_or_else(|| HiveError::Execution(format!("decimal overflow in {op}")))
        }
        _ => {
            let x = a
                .as_f64()
                .ok_or_else(|| HiveError::Execution(format!("non-numeric operand to {op}")))?;
            let y = b
                .as_f64()
                .ok_or_else(|| HiveError::Execution(format!("non-numeric operand to {op}")))?;
            Ok(Double(f_op(x, y)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn h(v: &Value) -> u64 {
        let mut s = DefaultHasher::new();
        v.hash_value(&mut s);
        s.finish()
    }

    #[test]
    fn decimal_parse_and_format_round_trip() {
        assert_eq!(parse_decimal("123.45", 2), Some(12345));
        assert_eq!(parse_decimal("-0.5", 2), Some(-50));
        assert_eq!(parse_decimal("7", 2), Some(700));
        assert_eq!(parse_decimal("1.239", 2), Some(124)); // rounds
        assert_eq!(parse_decimal("abc", 2), None);
        assert_eq!(format_decimal(12345, 2), "123.45");
        assert_eq!(format_decimal(-50, 2), "-0.50");
        assert_eq!(format_decimal(7, 0), "7");
    }

    #[test]
    fn rescale_rounds_half_away_from_zero() {
        assert_eq!(rescale(125, 2, 1), 13);
        assert_eq!(rescale(-125, 2, 1), -13);
        assert_eq!(rescale(124, 2, 1), 12);
        assert_eq!(rescale(12, 1, 3), 1200);
    }

    #[test]
    fn arithmetic_promotes_types() {
        let a = Value::Int(2);
        let b = Value::BigInt(3);
        assert_eq!(a.add(&b).unwrap(), Value::BigInt(5));
        let c = Value::Decimal(250, 2); // 2.50
        assert_eq!(a.add(&c).unwrap(), Value::Decimal(450, 2));
        assert_eq!(a.mul(&c).unwrap(), Value::Decimal(500, 2));
        // int / int -> double (Hive semantics)
        assert_eq!(
            Value::Int(7).div(&Value::Int(2)).unwrap(),
            Value::Double(3.5)
        );
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        assert!(Value::Null.add(&Value::Int(1)).unwrap().is_null());
        assert!(Value::Int(1).mul(&Value::Null).unwrap().is_null());
        assert!(Value::Int(1).div(&Value::Int(0)).unwrap().is_null());
        assert!(Value::Int(1).rem(&Value::Int(0)).unwrap().is_null());
    }

    #[test]
    fn sql_cmp_three_valued() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::BigInt(1)),
            Some(std::cmp::Ordering::Equal)
        );
        assert_eq!(
            Value::Decimal(150, 2).sql_cmp(&Value::Decimal(2, 0)),
            Some(std::cmp::Ordering::Less)
        );
        assert_eq!(
            Value::Date(10).sql_cmp(&Value::Timestamp(10 * 86_400_000_000)),
            Some(std::cmp::Ordering::Equal)
        );
    }

    #[test]
    fn nulls_sort_last() {
        let mut vals = vec![Value::Null, Value::Int(2), Value::Int(1)];
        vals.sort_by(|a, b| a.total_cmp_nulls_last(b));
        assert_eq!(vals, vec![Value::Int(1), Value::Int(2), Value::Null]);
    }

    #[test]
    fn cross_type_numeric_hash_agrees() {
        assert_eq!(h(&Value::Int(42)), h(&Value::BigInt(42)));
        assert_eq!(h(&Value::Int(42)), h(&Value::Double(42.0)));
        assert_eq!(h(&Value::Int(42)), h(&Value::Decimal(4200, 2)));
        assert_eq!(h(&Value::Null), h(&Value::Null));
    }

    #[test]
    fn lenient_string_casts_yield_null() {
        assert!(Value::String("xyz".into())
            .cast_to(&DataType::Int)
            .unwrap()
            .is_null());
        assert_eq!(
            Value::String(" 12 ".into())
                .cast_to(&DataType::Int)
                .unwrap(),
            Value::Int(12)
        );
    }

    #[test]
    fn date_timestamp_casts() {
        let d = Value::Date(1);
        let ts = d.cast_to(&DataType::Timestamp).unwrap();
        assert_eq!(ts, Value::Timestamp(86_400_000_000));
        assert_eq!(ts.cast_to(&DataType::Date).unwrap(), Value::Date(1));
        // Negative timestamps floor toward negative infinity.
        assert_eq!(
            Value::Timestamp(-1).cast_to(&DataType::Date).unwrap(),
            Value::Date(-1)
        );
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Decimal(12345, 2).to_string(), "123.45");
        assert_eq!(Value::Double(3.0).to_string(), "3.0");
        assert_eq!(Value::Null.to_string(), "NULL");
    }
}
