//! SQL `LIKE` pattern matching (`%` = any run, `_` = any single char),
//! with `\` as the escape character.
//!
//! The matcher walks both strings by byte offset (advancing whole UTF-8
//! chars) — no per-call allocation, which matters because `LIKE` sits
//! on the row-filter hot path.

/// Decode the char at byte offset `i`.
fn char_at(s: &str, i: usize) -> char {
    // invariant: offsets only ever advance by `len_utf8()` of decoded
    // chars (or past 1-byte ASCII metachars), so `i` is always a char
    // boundary inside the string.
    s[i..].chars().next().expect("offset on a char boundary")
}

/// Match `text` against the SQL LIKE `pattern`.
///
/// Escape semantics: `\` makes the next pattern char literal (so `\%`
/// matches a percent sign, `\\` a backslash). A trailing `\` with
/// nothing to escape matches a literal backslash, mirroring Hive's
/// lenient treatment rather than erroring.
pub fn like_match(text: &str, pattern: &str) -> bool {
    // Iterative two-pointer algorithm with backtracking on the last '%'.
    let (mut ti, mut pi) = (0usize, 0usize); // byte offsets
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < text.len() {
        if pi < pattern.len() {
            match char_at(pattern, pi) {
                '%' => {
                    star = Some((pi + 1, ti));
                    pi += 1;
                    continue;
                }
                '_' => {
                    ti += char_at(text, ti).len_utf8();
                    pi += 1;
                    continue;
                }
                '\\' if pi + 1 < pattern.len() => {
                    let lit = char_at(pattern, pi + 1);
                    let tc = char_at(text, ti);
                    if tc == lit {
                        ti += tc.len_utf8();
                        pi += 1 + lit.len_utf8();
                        continue;
                    }
                }
                c => {
                    let tc = char_at(text, ti);
                    if tc == c {
                        ti += tc.len_utf8();
                        pi += c.len_utf8();
                        continue;
                    }
                }
            }
        }
        // Mismatch: backtrack to last '%' if any, consuming one more char.
        match star {
            Some((sp, st)) => {
                let adv = char_at(text, st).len_utf8();
                pi = sp;
                ti = st + adv;
                star = Some((sp, st + adv));
            }
            None => return false,
        }
    }
    // Remaining pattern must be all '%' ('%' is ASCII, so a byte scan
    // is exact; an escaped `\%` in the tail correctly fails it).
    pattern[pi..].bytes().all(|b| b == b'%')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_wildcards() {
        assert!(like_match("hello", "hello"));
        assert!(!like_match("hello", "help"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn multiple_percent_backtracking() {
        assert!(like_match("abcbcd", "a%bcd"));
        assert!(like_match("aaa", "%a%a%"));
        assert!(!like_match("ab", "%a%a%"));
        assert!(like_match("Sports & Fitness", "Sports%"));
    }

    #[test]
    fn escapes() {
        assert!(like_match("50%", "50\\%"));
        assert!(!like_match("50x", "50\\%"));
        assert!(like_match("a_b", "a\\_b"));
        assert!(!like_match("axb", "a\\_b"));
        assert!(like_match("a\\b", "a\\\\b")); // \\ escapes the backslash itself
        assert!(!like_match("ab", "a\\\\b"));
    }

    #[test]
    fn trailing_backslash_is_literal() {
        assert!(like_match("a\\", "a\\"));
        assert!(!like_match("ab", "a\\"));
        assert!(like_match("x\\", "%\\"));
        assert!(!like_match("x", "%\\"));
        assert!(!like_match("", "\\"));
    }

    #[test]
    fn escaped_metachars_after_backtrack_point() {
        // The escape pair sits after a '%', so it is re-tried at every
        // backtrack position.
        assert!(like_match("ab%", "%\\%"));
        assert!(!like_match("abx", "%\\%"));
        assert!(like_match("a_b", "%\\_%"));
        assert!(!like_match("axb", "%\\_%"));
        assert!(like_match("100% done", "%\\%%"));
        assert!(like_match("pct_50%", "%\\_%\\%"));
    }

    #[test]
    fn multibyte_chars_count_as_one() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("héllo", "h%o"));
        assert!(like_match("日本語", "__語"));
        assert!(!like_match("日本語", "_語"));
        assert!(like_match("日本語", "%語"));
    }
}
