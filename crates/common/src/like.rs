//! SQL `LIKE` pattern matching (`%` = any run, `_` = any single char),
//! with `\` as the escape character.

/// Match `text` against the SQL LIKE `pattern`.
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    like_rec(&t, &p)
}

fn like_rec(t: &[char], p: &[char]) -> bool {
    // Iterative two-pointer algorithm with backtracking on the last '%'.
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern idx after %, text idx)
    while ti < t.len() {
        if pi < p.len() {
            match p[pi] {
                '%' => {
                    star = Some((pi + 1, ti));
                    pi += 1;
                    continue;
                }
                '_' => {
                    ti += 1;
                    pi += 1;
                    continue;
                }
                '\\' if pi + 1 < p.len() => {
                    if t[ti] == p[pi + 1] {
                        ti += 1;
                        pi += 2;
                        continue;
                    }
                }
                c => {
                    if t[ti] == c {
                        ti += 1;
                        pi += 1;
                        continue;
                    }
                }
            }
        }
        // Mismatch: backtrack to last '%' if any, consuming one more char.
        match star {
            Some((sp, st)) => {
                pi = sp;
                ti = st + 1;
                star = Some((sp, st + 1));
            }
            None => return false,
        }
    }
    // Remaining pattern must be all '%'.
    p[pi..].iter().all(|&c| c == '%')
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_and_wildcards() {
        assert!(like_match("hello", "hello"));
        assert!(!like_match("hello", "help"));
        assert!(like_match("hello", "h%"));
        assert!(like_match("hello", "%llo"));
        assert!(like_match("hello", "%ell%"));
        assert!(like_match("hello", "h_llo"));
        assert!(!like_match("hello", "h_lo"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
    }

    #[test]
    fn multiple_percent_backtracking() {
        assert!(like_match("abcbcd", "a%bcd"));
        assert!(like_match("aaa", "%a%a%"));
        assert!(!like_match("ab", "%a%a%"));
        assert!(like_match("Sports & Fitness", "Sports%"));
    }

    #[test]
    fn escapes() {
        assert!(like_match("50%", "50\\%"));
        assert!(!like_match("50x", "50\\%"));
        assert!(like_match("a_b", "a\\_b"));
        assert!(!like_match("axb", "a\\_b"));
    }
}
