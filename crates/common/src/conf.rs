//! Engine configuration.
//!
//! [`HiveConf`] gathers the feature switches that the paper's evaluation
//! toggles: engine version emulation (Figure 7), LLAP on/off (Table 1),
//! and individual optimizations (shared work, semijoin reduction, results
//! cache, CBO, vectorization).

use serde::{Deserialize, Serialize};

/// Which release of the system to emulate.
///
/// `V1_2` reproduces Hive 1.2 (September 2015): MapReduce-style execution,
/// row-at-a-time interpretation, no LLAP, no CBO join reordering, no
/// shared-work or semijoin optimizations, and a reduced SQL surface.
/// `V3_1` is the full system described by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineVersion {
    /// Hive 1.2 emulation (the Figure 7 baseline).
    V1_2,
    /// Hive 3.1, the system this repository reproduces.
    V3_1,
}

impl EngineVersion {
    /// Human-readable version string.
    pub fn label(&self) -> &'static str {
        match self {
            EngineVersion::V1_2 => "1.2",
            EngineVersion::V3_1 => "3.1",
        }
    }
}

/// Execution runtime selection (Section 2: "exchangeable data processing
/// runtime").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RuntimeKind {
    /// MapReduce emulation: every shuffle boundary materializes to the DFS
    /// and pays per-job startup cost.
    MapReduce,
    /// Tez emulation: a DAG of vertices with pipelined shuffle edges.
    Tez,
}

/// Engine configuration. Construct with [`HiveConf::v3_1`] /
/// [`HiveConf::v1_2`] and adjust fields, builder-style.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HiveConf {
    /// Emulated release.
    pub version: EngineVersion,
    /// Execution runtime.
    pub runtime: RuntimeKind,
    /// Use LLAP daemons (persistent executors + data cache) instead of
    /// per-query containers (Section 5.1).
    pub llap_enabled: bool,
    /// Vectorized execution (row interpreter when false).
    pub vectorized: bool,
    /// Cost-based optimization: join reordering etc. (Section 4.1).
    pub cbo_enabled: bool,
    /// Shared-work optimizer (Section 4.5).
    pub shared_work: bool,
    /// Dynamic semijoin reduction (Section 4.6).
    pub semijoin_reduction: bool,
    /// Query results cache (Section 4.3).
    pub results_cache: bool,
    /// Materialized view based rewriting (Section 4.4).
    pub mv_rewriting: bool,
    /// Query reoptimization on retryable failures (Section 4.2).
    pub reoptimization: bool,
    /// Automatic compaction triggering (Section 3.2).
    pub auto_compaction: bool,
    /// Number of delta directories that triggers a minor compaction.
    pub compaction_delta_threshold: usize,
    /// Ratio of delta rows to base rows that triggers a major compaction.
    pub compaction_ratio_threshold: f64,
    /// Rows per vectorized batch.
    pub batch_size: usize,
    /// Target rows per task (controls scan parallelism).
    pub rows_per_task: usize,
    /// Number of worker nodes in the simulated cluster.
    pub cluster_nodes: usize,
    /// Executor slots per node.
    pub slots_per_node: usize,
    /// LLAP cache capacity in bytes (per cluster).
    pub llap_cache_bytes: usize,
    /// LRFU decay parameter λ in [0,1]: 0 ≈ LFU, 1 ≈ LRU.
    pub lrfu_lambda: f64,
    /// Results-cache capacity in entries.
    pub results_cache_entries: usize,
    /// Memory budget per hash join build side, in rows; exceeding it raises
    /// a retryable error that triggers reoptimization.
    pub hash_join_row_budget: usize,
    /// `hive.exec.parallel.threads`: host threads used for morsel-driven
    /// operator parallelism (scan, hash-aggregate build, hash-join
    /// build/probe). `0` means auto (one per available core); `1` forces
    /// the serial path. Results are byte-identical at every setting; only
    /// wall-clock time changes. Overridable via `HIVE_PARALLEL_THREADS`.
    pub parallel_threads: usize,
    /// `hive.exec.dictionary.enabled`: keep string columns dictionary-
    /// encoded end-to-end (corc reader → LLAP cache → exec kernels),
    /// materializing to `Str` only at output boundaries. Results are
    /// byte-identical either way; only decode cost, allocations and
    /// cache bytes change. Overridable via `HIVE_DICT_ENABLED`
    /// (`0`/`false`/`off` disables, anything else enables).
    pub dictionary_enabled: bool,
    /// `hive.exec.selvec.enabled`: pass selection vectors and `Arc`-
    /// shared columns between operators, compacting only at pipeline
    /// breakers (join build, union, final output). When off, every
    /// operator boundary compacts eagerly — the pre-selection-vector
    /// data flow. Results are byte-identical either way; only copy
    /// volume changes. Overridable via `HIVE_SELVEC_ENABLED`
    /// (`0`/`false`/`off` disables, anything else enables).
    pub selvec_enabled: bool,
    /// `hive.exec.rawtable.enabled`: key the hash operators (join
    /// build/probe, GROUP BY, DISTINCT, window partitioning, set ops)
    /// on open-addressing flat tables with arena-resident canonical key
    /// bytes and precomputed FNV-1a hashes. When off, the operators use
    /// the original `HashMap` paths — the differential oracle. Results
    /// are byte-identical either way; only per-row hashing/allocation
    /// cost changes. Overridable via `HIVE_RAWTABLE_ENABLED`
    /// (`0`/`false`/`off` disables, anything else enables).
    pub rawtable_enabled: bool,
    /// `hive.exec.pir.enabled`: lower optimizer Filter/Project chains
    /// into physical-IR pipelines — fused selection-vector loops whose
    /// expression nodes are resolved to type-specialized kernels once
    /// per pipeline (monomorphization) instead of matching on
    /// `ColumnVector` variants per batch, with multi-conjunct
    /// predicates short-circuiting through the selection vector in
    /// cheapest-first order. Also compiles past the aggregate
    /// boundary: aggregate accumulators fold monomorphized per
    /// (function, column type) over the recorded group assignment, and
    /// join residual predicates evaluate vectorized over gathered
    /// candidate pair-batches instead of per-pair row interpretation
    /// (non-compilable shapes, spilled aggregates and grace joins keep
    /// the interpreter; `pir_compiled_stages`/`pir_fallback_rows` on
    /// the query result account for which path ran). When off, the
    /// per-batch interpreter (`eval_vector` + eager stage
    /// materialization) runs — the differential oracle. Results are
    /// byte-identical either way; only dispatch and materialization
    /// cost changes. Overridable via `HIVE_PIR_ENABLED`
    /// (`0`/`false`/`off` disables, anything else enables).
    pub pir_enabled: bool,
    /// `hive.optimizer.histograms.enabled`: drive optimizer
    /// cardinality estimates from the seeded equi-depth histograms in
    /// HMS column statistics — equality via bucket-local NDV, ranges
    /// via bucket interpolation, join output via histogram overlap —
    /// and allow observed-cardinality feedback (runtime stats keyed by
    /// plan fingerprint) to trigger the §4.2 mid-query re-plan ladder
    /// on >10× misestimates. When off, the System-R constant
    /// selectivities and bare `max(ndv)` containment path runs — the
    /// differential oracle. Results are byte-identical either way;
    /// only plan choice (and with it sim-time) changes. Overridable
    /// via `HIVE_HISTOGRAMS_ENABLED` (`0`/`false`/`off` disables,
    /// anything else enables).
    pub histograms_enabled: bool,
    /// `hive.exec.spill.enabled`: allow blocking operators (hash join
    /// build, GROUP BY / DISTINCT, ORDER BY) to degrade to disk when the
    /// per-query memory broker denies them memory. When off, an
    /// over-budget operator raises a retryable error instead (the
    /// pre-spill behavior, kept as the differential oracle). Results are
    /// byte-identical either way; only spill I/O (charged to sim-time)
    /// changes. Overridable via `HIVE_SPILL_ENABLED`
    /// (`0`/`false`/`off` disables, anything else enables).
    pub spill_enabled: bool,
    /// `hive.exec.memory.per.query.bytes`: operator working-memory
    /// budget per query in bytes, divided among concurrently-live
    /// operators by the memory broker (`hive_exec::membroker`). The
    /// workload manager scales it by the admitted pool's guaranteed
    /// fraction. `0` means unlimited (nothing ever spills). Overridable
    /// via `HIVE_MEMORY_BUDGET`.
    pub memory_per_query_bytes: usize,
    /// Fault-injection plan (see [`crate::fault`]); `FaultPlan::none()`
    /// injects nothing.
    pub fault: crate::fault::FaultPlan,
}

impl HiveConf {
    /// Full-featured Hive 3.1 configuration (the paper's system).
    pub fn v3_1() -> Self {
        HiveConf {
            version: EngineVersion::V3_1,
            runtime: RuntimeKind::Tez,
            llap_enabled: true,
            vectorized: true,
            cbo_enabled: true,
            shared_work: true,
            semijoin_reduction: true,
            results_cache: true,
            mv_rewriting: true,
            reoptimization: true,
            auto_compaction: true,
            compaction_delta_threshold: 10,
            compaction_ratio_threshold: 0.1,
            batch_size: 1024,
            rows_per_task: 100_000,
            cluster_nodes: 10,
            slots_per_node: 8,
            llap_cache_bytes: 256 << 20,
            lrfu_lambda: 0.5,
            results_cache_entries: 64,
            hash_join_row_budget: 4_000_000,
            parallel_threads: 0,
            dictionary_enabled: true,
            selvec_enabled: true,
            rawtable_enabled: true,
            pir_enabled: true,
            histograms_enabled: true,
            spill_enabled: true,
            memory_per_query_bytes: 0,
            fault: crate::fault::FaultPlan::none(),
        }
    }

    /// Hive 1.2 emulation (the Figure 7 baseline).
    pub fn v1_2() -> Self {
        HiveConf {
            version: EngineVersion::V1_2,
            runtime: RuntimeKind::MapReduce,
            llap_enabled: false,
            vectorized: false,
            cbo_enabled: false,
            shared_work: false,
            semijoin_reduction: false,
            results_cache: false,
            mv_rewriting: false,
            reoptimization: false,
            ..HiveConf::v3_1()
        }
    }

    /// Builder-style field update.
    pub fn with(mut self, f: impl FnOnce(&mut Self)) -> Self {
        f(&mut self);
        self
    }

    /// Total executor slots in the simulated cluster.
    pub fn total_slots(&self) -> usize {
        self.cluster_nodes * self.slots_per_node
    }

    /// Resolve [`HiveConf::parallel_threads`] to a concrete worker
    /// count: the `HIVE_PARALLEL_THREADS` environment variable wins,
    /// then the conf field, then (for `0` = auto) the host's available
    /// parallelism. Always ≥ 1.
    pub fn effective_parallel_threads(&self) -> usize {
        let requested = std::env::var("HIVE_PARALLEL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(self.parallel_threads);
        if requested > 0 {
            return requested;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }

    /// Resolve [`HiveConf::dictionary_enabled`]: the `HIVE_DICT_ENABLED`
    /// environment variable wins (for process-level differential
    /// sweeps), then the conf field.
    pub fn effective_dictionary_enabled(&self) -> bool {
        match std::env::var("HIVE_DICT_ENABLED") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | ""),
            Err(_) => self.dictionary_enabled,
        }
    }

    /// Resolve [`HiveConf::selvec_enabled`]: the `HIVE_SELVEC_ENABLED`
    /// environment variable wins (for process-level differential
    /// sweeps), then the conf field.
    pub fn effective_selvec_enabled(&self) -> bool {
        match std::env::var("HIVE_SELVEC_ENABLED") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | ""),
            Err(_) => self.selvec_enabled,
        }
    }

    /// Resolve [`HiveConf::rawtable_enabled`]: the
    /// `HIVE_RAWTABLE_ENABLED` environment variable wins (for
    /// process-level differential sweeps), then the conf field.
    pub fn effective_rawtable_enabled(&self) -> bool {
        match std::env::var("HIVE_RAWTABLE_ENABLED") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | ""),
            Err(_) => self.rawtable_enabled,
        }
    }

    /// Resolve [`HiveConf::pir_enabled`]: the `HIVE_PIR_ENABLED`
    /// environment variable wins (for process-level differential
    /// sweeps), then the conf field.
    pub fn effective_pir_enabled(&self) -> bool {
        match std::env::var("HIVE_PIR_ENABLED") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | ""),
            Err(_) => self.pir_enabled,
        }
    }

    /// Resolve [`HiveConf::histograms_enabled`]: the
    /// `HIVE_HISTOGRAMS_ENABLED` environment variable wins (for
    /// process-level differential sweeps), then the conf field.
    pub fn effective_histograms_enabled(&self) -> bool {
        match std::env::var("HIVE_HISTOGRAMS_ENABLED") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | ""),
            Err(_) => self.histograms_enabled,
        }
    }

    /// Resolve [`HiveConf::spill_enabled`]: the `HIVE_SPILL_ENABLED`
    /// environment variable wins (for process-level differential
    /// sweeps), then the conf field.
    pub fn effective_spill_enabled(&self) -> bool {
        match std::env::var("HIVE_SPILL_ENABLED") {
            Ok(v) => !matches!(v.trim(), "0" | "false" | "off" | ""),
            Err(_) => self.spill_enabled,
        }
    }

    /// Resolve [`HiveConf::memory_per_query_bytes`]: the
    /// `HIVE_MEMORY_BUDGET` environment variable wins (for the
    /// forced-tiny-budget sweep), then the conf field. `0` means
    /// unlimited.
    pub fn effective_memory_per_query_bytes(&self) -> usize {
        std::env::var("HIVE_MEMORY_BUDGET")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(self.memory_per_query_bytes)
    }
}

impl Default for HiveConf {
    fn default() -> Self {
        HiveConf::v3_1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let new = HiveConf::v3_1();
        let old = HiveConf::v1_2();
        assert!(new.llap_enabled && !old.llap_enabled);
        assert!(new.vectorized && !old.vectorized);
        assert_eq!(old.runtime, RuntimeKind::MapReduce);
        assert_eq!(new.runtime, RuntimeKind::Tez);
        assert_eq!(new.total_slots(), 80);
    }

    #[test]
    fn with_builder() {
        let c = HiveConf::v3_1().with(|c| c.llap_enabled = false);
        assert!(!c.llap_enabled);
        assert!(c.cbo_enabled);
    }

    #[test]
    fn spill_knob_defaults() {
        let c = HiveConf::v3_1();
        assert!(c.spill_enabled);
        assert_eq!(c.memory_per_query_bytes, 0, "default budget is unlimited");
        if std::env::var("HIVE_MEMORY_BUDGET").is_err() {
            let tiny = HiveConf::v3_1().with(|c| c.memory_per_query_bytes = 4096);
            assert_eq!(tiny.effective_memory_per_query_bytes(), 4096);
        }
        if std::env::var("HIVE_SPILL_ENABLED").is_err() {
            let off = HiveConf::v3_1().with(|c| c.spill_enabled = false);
            assert!(!off.effective_spill_enabled());
        }
    }

    #[test]
    fn parallel_threads_resolution() {
        // Auto (0) resolves to ≥ 1; an explicit conf setting is honored
        // unless the env override is present (HIVE_PAR_SWEEP sets it for
        // the whole test process, so only assert the conf path when the
        // environment is clean).
        let auto = HiveConf::v3_1();
        assert_eq!(auto.parallel_threads, 0);
        assert!(auto.effective_parallel_threads() >= 1);
        if std::env::var("HIVE_PARALLEL_THREADS").is_err() {
            let c = HiveConf::v3_1().with(|c| c.parallel_threads = 4);
            assert_eq!(c.effective_parallel_threads(), 4);
        }
    }
}
