//! Deterministic fault injection.
//!
//! The paper's robustness story rests on two mechanisms: the Tez
//! runtime's per-task retry (replacing MapReduce job restart) and
//! LLAP's "any node can still be used to process any fragment" (§5.1).
//! This module provides the *failure side* of that story: a seeded
//! [`FaultPlan`] describing which faults to inject, and a
//! [`FaultInjector`] that turns the plan into deterministic,
//! replayable fault decisions at three layers:
//!
//! * **DFS** — transient read errors and slow-I/O "gray failures";
//! * **LLAP** — daemon death (cache share lost, executors removed)
//!   and cache-corruption-detected misses;
//! * **executor** — per-vertex fragment failure at task granularity.
//!
//! Determinism: every decision is a pure function of `(seed, site,
//! key-hash, per-site attempt counter)` via splitmix64 mixing. The
//! same seed over the same execution order yields the same faults, so
//! a failure observed in CI replays exactly from its seed (see
//! [`FaultPlan::from_env`]). Recovery (fragment retry, node failover,
//! cache→DFS degradation) lives in `hive-exec`/`hive-llap`; this
//! module only decides *what breaks when*.

use crate::conf::HiveConf;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Where a fault can be injected. The discriminant feeds the hash, so
/// each site draws an independent deterministic stream from one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Transient DFS read/open error (retry may succeed).
    DfsRead,
    /// DFS read completes but slowly ("gray failure").
    DfsSlow,
    /// An LLAP daemon dies at fragment dispatch.
    DaemonKill,
    /// An LLAP cache hit is detected as corrupt (checksum mismatch);
    /// degrades to a DFS load.
    CacheCorrupt,
    /// A running fragment fails at task granularity.
    Fragment,
    /// Transient DFS write/create error (retry may succeed). Exercised
    /// by the spill paths, which are the only writers inside a running
    /// query.
    DfsWrite,
}

impl FaultSite {
    fn tag(self) -> u64 {
        match self {
            FaultSite::DfsRead => 0x01,
            FaultSite::DfsSlow => 0x02,
            FaultSite::DaemonKill => 0x03,
            FaultSite::CacheCorrupt => 0x04,
            FaultSite::Fragment => 0x05,
            FaultSite::DfsWrite => 0x06,
        }
    }
}

/// A seeded description of which faults to inject. `FaultPlan::none()`
/// (the default) injects nothing and is dead cheap to check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every fault decision; same seed → same faults.
    pub seed: u64,
    /// Probability a DFS read/open fails transiently.
    pub dfs_read_error_prob: f64,
    /// Probability a DFS read is slow (gray failure).
    pub dfs_slow_prob: f64,
    /// Simulated latency added per slow read, in milliseconds.
    pub dfs_slow_ms: f64,
    /// Paths containing any of these substrings always fail their
    /// first `path_fail_count` reads (targeted fault, independent of
    /// probability rolls).
    pub fail_path_substrings: Vec<String>,
    /// How many reads of a matching path fail before it heals. The
    /// same count applies per-path to targeted *writes* (see
    /// [`FaultInjector::dfs_write_fails`]).
    pub path_fail_count: u32,
    /// Probability a DFS create/write fails transiently. Only the spill
    /// paths write inside a running query, so this is the knob for
    /// spill-write chaos (default 0, and deliberately not part of
    /// [`FaultPlan::chaos`] so pre-spill seeds replay unchanged).
    pub dfs_write_error_prob: f64,
    /// Probability an LLAP daemon dies when a fragment is dispatched
    /// to it.
    pub daemon_kill_prob: f64,
    /// Probability a cache hit is detected as corrupt and degrades to
    /// a DFS read.
    pub cache_corruption_prob: f64,
    /// Probability a running fragment fails at task granularity.
    pub fragment_failure_prob: f64,
    /// Master switch for the recovery ladder. When false, the first
    /// injected fault surfaces as [`crate::HiveError::Transient`]
    /// instead of being retried.
    pub recovery_enabled: bool,
    /// Fragment retry budget before escalating to the driver.
    pub max_fragment_retries: u32,
    /// First-retry backoff, in simulated milliseconds.
    pub backoff_base_ms: f64,
    /// Exponential backoff cap, in simulated milliseconds.
    pub backoff_cap_ms: f64,
}

impl FaultPlan {
    /// No faults (the default).
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            dfs_read_error_prob: 0.0,
            dfs_slow_prob: 0.0,
            dfs_slow_ms: 50.0,
            fail_path_substrings: Vec::new(),
            path_fail_count: 1,
            dfs_write_error_prob: 0.0,
            daemon_kill_prob: 0.0,
            cache_corruption_prob: 0.0,
            fragment_failure_prob: 0.0,
            recovery_enabled: true,
            max_fragment_retries: 6,
            backoff_base_ms: 10.0,
            backoff_cap_ms: 500.0,
        }
    }

    /// A plan exercising every injection layer at moderate rates —
    /// the go-to chaos configuration for tests.
    pub fn chaos(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            dfs_read_error_prob: 0.05,
            dfs_slow_prob: 0.05,
            dfs_slow_ms: 40.0,
            daemon_kill_prob: 0.02,
            cache_corruption_prob: 0.05,
            fragment_failure_prob: 0.05,
            ..FaultPlan::none()
        }
    }

    /// True when any fault can fire (fast-path guard).
    pub fn is_active(&self) -> bool {
        self.dfs_read_error_prob > 0.0
            || self.dfs_slow_prob > 0.0
            || self.dfs_write_error_prob > 0.0
            || !self.fail_path_substrings.is_empty()
            || self.daemon_kill_prob > 0.0
            || self.cache_corruption_prob > 0.0
            || self.fragment_failure_prob > 0.0
    }

    /// Builder-style field update.
    pub fn with(mut self, f: impl FnOnce(&mut Self)) -> Self {
        f(&mut self);
        self
    }

    /// Build a plan from `HIVE_FAULT_*` environment variables so a CI
    /// failure seed can be replayed outside the originating test:
    ///
    /// * `HIVE_FAULT_SEED` — seed; its presence activates the
    ///   [`FaultPlan::chaos`] rates unless overridden below.
    /// * `HIVE_FAULT_DFS_READ_PROB`, `HIVE_FAULT_DFS_SLOW_PROB`,
    ///   `HIVE_FAULT_DAEMON_KILL_PROB`, `HIVE_FAULT_CACHE_CORRUPT_PROB`,
    ///   `HIVE_FAULT_FRAGMENT_PROB` — per-site probabilities in [0,1].
    /// * `HIVE_FAULT_NO_RECOVERY=1` — disable the recovery ladder.
    ///
    /// Returns `None` when `HIVE_FAULT_SEED` is unset.
    pub fn from_env() -> Option<FaultPlan> {
        let seed: u64 = std::env::var("HIVE_FAULT_SEED").ok()?.parse().ok()?;
        let mut plan = FaultPlan::chaos(seed);
        let f64_var =
            |name: &str| -> Option<f64> { std::env::var(name).ok().and_then(|v| v.parse().ok()) };
        if let Some(p) = f64_var("HIVE_FAULT_DFS_READ_PROB") {
            plan.dfs_read_error_prob = p;
        }
        if let Some(p) = f64_var("HIVE_FAULT_DFS_WRITE_PROB") {
            plan.dfs_write_error_prob = p;
        }
        if let Some(p) = f64_var("HIVE_FAULT_DFS_SLOW_PROB") {
            plan.dfs_slow_prob = p;
        }
        if let Some(p) = f64_var("HIVE_FAULT_DAEMON_KILL_PROB") {
            plan.daemon_kill_prob = p;
        }
        if let Some(p) = f64_var("HIVE_FAULT_CACHE_CORRUPT_PROB") {
            plan.cache_corruption_prob = p;
        }
        if let Some(p) = f64_var("HIVE_FAULT_FRAGMENT_PROB") {
            plan.fragment_failure_prob = p;
        }
        if std::env::var("HIVE_FAULT_NO_RECOVERY").is_ok_and(|v| v == "1") {
            plan.recovery_enabled = false;
        }
        Some(plan)
    }
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable key for a `(path, byte-offset)` read site: distinct ranges of
/// one file draw independent fault streams (see
/// [`FaultInjector::dfs_read_fails`]).
fn range_key(path: &str, offset: u64) -> u64 {
    splitmix64(hash_str(path) ^ offset.wrapping_mul(0xD6E8_FEB8_6659_FD93))
}

/// FNV-1a hash of a string — the stable key derivation used for
/// per-path and per-fragment fault rolls (exported so the executor can
/// key fragment rolls off vertex labels the same way).
pub fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Counters of faults actually fired, by site (diagnostics and test
/// assertions; recovery outcomes are counted in `NodeTrace`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    pub dfs_read_errors: u64,
    pub dfs_write_errors: u64,
    pub dfs_slow_reads: u64,
    pub daemon_kills: u64,
    pub cache_corruptions: u64,
    pub fragment_failures: u64,
}

/// Turns a [`FaultPlan`] into deterministic fault decisions.
///
/// Shared (behind `Arc`) between the DFS, the LLAP fleet, and the
/// executor so one seed drives the whole stack. Each `(site, key)`
/// pair maintains an attempt counter, so the first read of a chunk
/// can fail while its retry succeeds — deterministically.
#[derive(Debug, Default)]
pub struct FaultInjector {
    plan: RwLock<FaultPlan>,
    /// Per-(site, key) attempt counters, folded into the roll so
    /// successive attempts draw fresh deterministic values.
    attempts: RwLock<std::collections::HashMap<(FaultSite, u64), u32>>,
    dfs_read_errors: AtomicU64,
    dfs_write_errors: AtomicU64,
    dfs_slow_reads: AtomicU64,
    daemon_kills: AtomicU64,
    cache_corruptions: AtomicU64,
    fragment_failures: AtomicU64,
    /// Accumulated simulated slow-I/O penalty (milliseconds × 1000,
    /// fixed-point so it can live in an atomic).
    slow_penalty_micros: AtomicU64,
}

impl FaultInjector {
    /// An injector with no faults planned.
    pub fn new() -> FaultInjector {
        FaultInjector::default()
    }

    /// Replace the active plan (and reset attempt counters so a fresh
    /// plan starts a fresh deterministic stream).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.write().unwrap_or_else(|e| e.into_inner()) = plan;
        self.attempts
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
        self.slow_penalty_micros.store(0, Ordering::Relaxed);
    }

    /// Adopt the plan embedded in a configuration.
    pub fn set_plan_from_conf(&self, conf: &HiveConf) {
        self.set_plan(conf.fault.clone());
    }

    /// Snapshot of the active plan.
    pub fn plan(&self) -> FaultPlan {
        self.plan.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// True when the active plan can fire at all.
    pub fn is_active(&self) -> bool {
        self.plan
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .is_active()
    }

    /// Whether the recovery ladder is enabled in the active plan.
    pub fn recovery_enabled(&self) -> bool {
        self.plan
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .recovery_enabled
    }

    /// Deterministic roll: true with probability `prob` for this
    /// `(site, key, attempt)` triple. Advances the attempt counter.
    fn roll(&self, site: FaultSite, key: u64, prob: f64) -> bool {
        if prob <= 0.0 {
            return false;
        }
        let seed = self.plan.read().unwrap_or_else(|e| e.into_inner()).seed;
        let attempt = {
            let mut attempts = self.attempts.write().unwrap_or_else(|e| e.into_inner());
            let counter = attempts.entry((site, key)).or_insert(0);
            let current = *counter;
            *counter += 1;
            current
        };
        let mixed = splitmix64(
            seed ^ site.tag().wrapping_mul(0xA076_1D64_78BD_642F)
                ^ key.wrapping_mul(0xE703_7ED1_A0B4_28DB)
                ^ (attempt as u64).wrapping_mul(0x8EBC_6AF0_9C88_C6E3),
        );
        let unit = (mixed >> 11) as f64 / (1u64 << 53) as f64;
        unit < prob
    }

    /// Should this DFS read fail transiently? `(path, offset)` keys the
    /// roll: different files *and different byte ranges of one file*
    /// draw independent deterministic streams, and a retry of the same
    /// range draws a fresh value. Keying on the offset (not just the
    /// path) is what makes fault replay independent of thread
    /// interleaving when the scanner reads a file's chunks in parallel —
    /// each chunk owns its attempt counter, so which worker reads it
    /// first cannot change the outcome.
    pub fn dfs_read_fails(&self, path: &str, offset: u64) -> bool {
        let plan = self.plan.read().unwrap_or_else(|e| e.into_inner());
        if !plan.is_active() {
            return false;
        }
        let (prob, targeted) = {
            let matches = plan
                .fail_path_substrings
                .iter()
                .any(|s| !s.is_empty() && path.contains(s));
            (plan.dfs_read_error_prob, matches)
        };
        let fail_count = plan.path_fail_count;
        drop(plan);
        let key = range_key(path, offset);
        if targeted {
            let mut attempts = self.attempts.write().unwrap_or_else(|e| e.into_inner());
            let counter = attempts.entry((FaultSite::DfsRead, key)).or_insert(0);
            if *counter < fail_count {
                *counter += 1;
                drop(attempts);
                self.dfs_read_errors.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            return false;
        }
        if self.roll(FaultSite::DfsRead, key, prob) {
            self.dfs_read_errors.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Should this DFS create/write fail transiently? Keyed by path
    /// (files are immutable, so one path is written at most once per
    /// attempt, and a retry of the same path draws a fresh value).
    /// Targeted substring paths fail their first `path_fail_count`
    /// writes then heal — an independent counter from the read site, so
    /// a plan targeting a spill directory exercises both directions.
    pub fn dfs_write_fails(&self, path: &str) -> bool {
        let plan = self.plan.read().unwrap_or_else(|e| e.into_inner());
        if !plan.is_active() {
            return false;
        }
        let targeted = plan
            .fail_path_substrings
            .iter()
            .any(|s| !s.is_empty() && path.contains(s));
        let (prob, fail_count) = (plan.dfs_write_error_prob, plan.path_fail_count);
        drop(plan);
        let key = splitmix64(hash_str(path));
        if targeted {
            let mut attempts = self.attempts.write().unwrap_or_else(|e| e.into_inner());
            let counter = attempts.entry((FaultSite::DfsWrite, key)).or_insert(0);
            if *counter < fail_count {
                *counter += 1;
                drop(attempts);
                self.dfs_write_errors.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            return false;
        }
        if self.roll(FaultSite::DfsWrite, key, prob) {
            self.dfs_write_errors.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// Should this DFS read be slow? Returns the simulated latency to
    /// charge, accumulating it for `simtime`. Keyed by `(path, offset)`
    /// for the same interleaving-independence as [`Self::dfs_read_fails`].
    pub fn dfs_read_slow_ms(&self, path: &str, offset: u64) -> Option<f64> {
        let plan = self.plan.read().unwrap_or_else(|e| e.into_inner());
        if !plan.is_active() || plan.dfs_slow_prob <= 0.0 {
            return None;
        }
        let (prob, ms) = (plan.dfs_slow_prob, plan.dfs_slow_ms);
        drop(plan);
        if self.roll(FaultSite::DfsSlow, range_key(path, offset), prob) {
            self.dfs_slow_reads.fetch_add(1, Ordering::Relaxed);
            self.slow_penalty_micros
                .fetch_add((ms * 1000.0) as u64, Ordering::Relaxed);
            Some(ms)
        } else {
            None
        }
    }

    /// Does the daemon on `node` die when this fragment dispatches?
    pub fn daemon_dies(&self, node: usize, fragment: u64) -> bool {
        let prob = {
            let plan = self.plan.read().unwrap_or_else(|e| e.into_inner());
            plan.daemon_kill_prob
        };
        let key = splitmix64((node as u64) << 32 | fragment & 0xFFFF_FFFF);
        if self.roll(FaultSite::DaemonKill, key, prob) {
            self.daemon_kills.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Is this cache hit detected as corrupt (degrading to DFS)?
    pub fn cache_chunk_corrupt(&self, chunk_key: u64) -> bool {
        let prob = {
            let plan = self.plan.read().unwrap_or_else(|e| e.into_inner());
            plan.cache_corruption_prob
        };
        if self.roll(FaultSite::CacheCorrupt, chunk_key, prob) {
            self.cache_corruptions.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Does this fragment fail at task granularity on this attempt?
    pub fn fragment_fails(&self, fragment: u64) -> bool {
        let prob = {
            let plan = self.plan.read().unwrap_or_else(|e| e.into_inner());
            plan.fragment_failure_prob
        };
        if self.roll(FaultSite::Fragment, fragment, prob) {
            self.fragment_failures.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Capped exponential backoff for a retry attempt (simulated ms):
    /// `base * 2^attempt`, capped.
    pub fn backoff_ms(&self, attempt: u32) -> f64 {
        let plan = self.plan.read().unwrap_or_else(|e| e.into_inner());
        (plan.backoff_base_ms * 2f64.powi(attempt as i32)).min(plan.backoff_cap_ms)
    }

    /// Fragment retry budget from the active plan.
    pub fn max_fragment_retries(&self) -> u32 {
        self.plan
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .max_fragment_retries
    }

    /// Total slow-I/O latency charged so far (simulated ms).
    pub fn slow_penalty_ms(&self) -> f64 {
        self.slow_penalty_micros.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Counters of faults fired since the plan was set.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            dfs_read_errors: self.dfs_read_errors.load(Ordering::Relaxed),
            dfs_write_errors: self.dfs_write_errors.load(Ordering::Relaxed),
            dfs_slow_reads: self.dfs_slow_reads.load(Ordering::Relaxed),
            daemon_kills: self.daemon_kills.load(Ordering::Relaxed),
            cache_corruptions: self.cache_corruptions.load(Ordering::Relaxed),
            fragment_failures: self.fragment_failures.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_plan_never_fires() {
        let inj = FaultInjector::new();
        for i in 0..100 {
            assert!(!inj.dfs_read_fails(&format!("/t/f{i}"), 0));
            assert!(inj.dfs_read_slow_ms("/t/x", 0).is_none());
            assert!(!inj.daemon_dies(i % 4, i as u64));
            assert!(!inj.cache_chunk_corrupt(i as u64));
            assert!(!inj.fragment_fails(i as u64));
        }
        assert_eq!(inj.stats(), FaultStats::default());
    }

    #[test]
    fn same_seed_same_decisions() {
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new();
            inj.set_plan(FaultPlan::chaos(seed));
            (0..200)
                .map(|i| inj.dfs_read_fails(&format!("/warehouse/t/f{}", i % 7), (i / 7) as u64))
                .collect()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should diverge");
    }

    #[test]
    fn attempt_counter_gives_retries_fresh_rolls() {
        let inj = FaultInjector::new();
        inj.set_plan(FaultPlan::none().with(|p| {
            p.seed = 7;
            p.dfs_read_error_prob = 0.5;
        }));
        // With p=0.5 over 64 attempts of the same path, both outcomes
        // must appear — the counter decorrelates successive attempts.
        let outcomes: Vec<bool> = (0..64).map(|_| inj.dfs_read_fails("/t/same", 0)).collect();
        assert!(outcomes.iter().any(|&b| b));
        assert!(outcomes.iter().any(|&b| !b));
    }

    #[test]
    fn targeted_path_fails_then_heals() {
        let inj = FaultInjector::new();
        inj.set_plan(FaultPlan::none().with(|p| {
            p.fail_path_substrings = vec!["part-3".into()];
            p.path_fail_count = 2;
        }));
        assert!(inj.dfs_read_fails("/w/t/part-3.orc", 0));
        assert!(inj.dfs_read_fails("/w/t/part-3.orc", 0));
        assert!(!inj.dfs_read_fails("/w/t/part-3.orc", 0), "healed after 2");
        assert!(
            !inj.dfs_read_fails("/w/t/part-1.orc", 0),
            "other paths fine"
        );
        // Each byte range heals independently: a fresh offset of the
        // targeted path starts its own fail-then-heal sequence.
        assert!(inj.dfs_read_fails("/w/t/part-3.orc", 4096));
        assert!(inj.dfs_read_fails("/w/t/part-3.orc", 4096));
        assert!(!inj.dfs_read_fails("/w/t/part-3.orc", 4096), "healed");
    }

    #[test]
    fn targeted_writes_fail_then_heal_independently_of_reads() {
        let inj = FaultInjector::new();
        inj.set_plan(FaultPlan::none().with(|p| {
            p.fail_path_substrings = vec!["spill".into()];
            p.path_fail_count = 1;
        }));
        // Write and read sites own separate attempt counters.
        assert!(inj.dfs_write_fails("/tmp/spill/q0/p0.bin"));
        assert!(!inj.dfs_write_fails("/tmp/spill/q0/p0.bin"), "healed");
        assert!(inj.dfs_read_fails("/tmp/spill/q0/p0.bin", 0));
        assert!(!inj.dfs_read_fails("/tmp/spill/q0/p0.bin", 0), "healed");
        assert!(!inj.dfs_write_fails("/warehouse/t/part-0.corc"));
        assert_eq!(inj.stats().dfs_write_errors, 1);
    }

    #[test]
    fn probabilistic_writes_replay_from_seed() {
        let run = |seed: u64| -> Vec<bool> {
            let inj = FaultInjector::new();
            inj.set_plan(FaultPlan::none().with(|p| {
                p.seed = seed;
                p.dfs_write_error_prob = 0.5;
            }));
            (0..64)
                .map(|i| inj.dfs_write_fails(&format!("/tmp/spill/p{}.bin", i % 5)))
                .collect()
        };
        assert_eq!(run(11), run(11));
        assert!(run(11).iter().any(|&b| b));
        assert!(run(11).iter().any(|&b| !b));
    }

    #[test]
    fn backoff_caps() {
        let inj = FaultInjector::new();
        inj.set_plan(FaultPlan::none().with(|p| {
            p.backoff_base_ms = 10.0;
            p.backoff_cap_ms = 100.0;
        }));
        assert_eq!(inj.backoff_ms(0), 10.0);
        assert_eq!(inj.backoff_ms(1), 20.0);
        assert_eq!(inj.backoff_ms(10), 100.0);
    }

    #[test]
    fn slow_reads_accumulate_penalty() {
        let inj = FaultInjector::new();
        inj.set_plan(FaultPlan::none().with(|p| {
            p.seed = 5;
            p.dfs_slow_prob = 1.0;
            p.dfs_slow_ms = 25.0;
        }));
        assert_eq!(inj.dfs_read_slow_ms("/t/a", 0), Some(25.0));
        assert_eq!(inj.dfs_read_slow_ms("/t/b", 0), Some(25.0));
        assert_eq!(inj.slow_penalty_ms(), 50.0);
    }

    #[test]
    fn range_rolls_are_order_independent() {
        // The parallel scanner reads a file's chunks from many worker
        // threads; because each (path, offset) pair owns its attempt
        // counter, the per-chunk outcomes must not depend on the order
        // the reads happen to interleave in.
        let sites: Vec<(String, u64)> = (0..6)
            .flat_map(|f| (0..8).map(move |rg| (format!("/w/t/f{f}.corc"), rg * 512)))
            .collect();
        let run = |order: &[usize]| -> Vec<((String, u64), bool, Option<f64>)> {
            let inj = FaultInjector::new();
            inj.set_plan(FaultPlan::chaos(99));
            let mut out: Vec<_> = order
                .iter()
                .map(|&i| {
                    let (p, off) = &sites[i];
                    (
                        (p.clone(), *off),
                        inj.dfs_read_fails(p, *off),
                        inj.dfs_read_slow_ms(p, *off),
                    )
                })
                .collect();
            out.sort_by(|a, b| a.0.cmp(&b.0));
            out
        };
        let forward: Vec<usize> = (0..sites.len()).collect();
        let mut shuffled = forward.clone();
        shuffled.reverse();
        shuffled.rotate_left(7);
        assert_eq!(run(&forward), run(&shuffled));
    }

    #[test]
    fn from_env_round_trip() {
        // Not set → None (don't pollute the environment in tests that
        // run in parallel; only exercise the unset path here, the
        // parsing path is covered by the chaos replay job).
        std::env::remove_var("HIVE_FAULT_SEED");
        assert!(FaultPlan::from_env().is_none());
    }
}
