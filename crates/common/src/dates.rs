//! Proleptic-Gregorian date arithmetic for DATE/TIMESTAMP values.
//!
//! DATE is days since 1970-01-01; TIMESTAMP is microseconds since
//! 1970-01-01T00:00:00 (no time zones — Hive's default behaviour for
//! `TIMESTAMP` is zone-less wall-clock time).

/// Microseconds in one day.
pub const MICROS_PER_DAY: i64 = 86_400_000_000;

/// True for Gregorian leap years.
pub fn is_leap_year(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Days in the given month (1-12) of the given year.
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Hinnant `days_from_civil` in i64, exact for any i32 year.
fn civil_to_days_wide(y: i32, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let m = m as i64;
    let d = d as i64;
    let doy = (153 * (if m > 2 { m - 3 } else { m + 9 }) + 2) / 5 + d - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Convert (year, month 1-12, day 1-31) to days since the epoch, or
/// `None` when the result does not fit the i32 day range (roughly
/// beyond ±5,879,610 AD) — the fallible entry point parsers use.
pub fn civil_to_days_checked(y: i32, m: u32, d: u32) -> Option<i32> {
    i32::try_from(civil_to_days_wide(y, m, d)).ok()
}

/// Convert (year, month 1-12, day 1-31) to days since the epoch.
///
/// Uses the Howard Hinnant `days_from_civil` algorithm. Results outside
/// the i32 day range clamp to `i32::MIN`/`i32::MAX` (documented clamp —
/// never a silent two's-complement wrap); in-crate callers only pass
/// calendar triples obtained from [`days_to_civil`], which are always
/// in range. Use [`civil_to_days_checked`] to detect out-of-range input.
pub fn civil_to_days(y: i32, m: u32, d: u32) -> i32 {
    civil_to_days_wide(y, m, d).clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Convert days since the epoch to (year, month, day).
pub fn days_to_civil(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
                                                          // invariant: |y| <= |days|/365 + 1 < 5.9M for any i32 `days`, so the
                                                          // year always fits i32 — this cast cannot wrap.
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// Parse `YYYY-MM-DD` into epoch days. Returns `None` on malformed input.
pub fn parse_date(s: &str) -> Option<i32> {
    let s = s.trim();
    let mut it = s.splitn(3, '-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || d < 1 || d > days_in_month(y, m) {
        return None;
    }
    civil_to_days_checked(y, m, d)
}

/// Parse `YYYY-MM-DD[ HH:MM:SS[.ffffff]]` into epoch microseconds.
pub fn parse_timestamp(s: &str) -> Option<i64> {
    let s = s.trim();
    let (date_part, time_part) = match s.split_once(' ').or_else(|| s.split_once('T')) {
        Some((d, t)) => (d, Some(t)),
        None => (s, None),
    };
    let days = parse_date(date_part)? as i64;
    // Checked arithmetic: i32-range dates times MICROS_PER_DAY can
    // exceed i64 micros (the timestamp range is only ±~292k years), and
    // overflow here must read as "unparseable", not a wrapped instant.
    let mut micros = days.checked_mul(MICROS_PER_DAY)?;
    if let Some(t) = time_part {
        let (hms, frac) = match t.split_once('.') {
            Some((a, b)) => (a, Some(b)),
            None => (t, None),
        };
        let mut it = hms.splitn(3, ':');
        let h: i64 = it.next()?.parse().ok()?;
        let mi: i64 = it.next()?.parse().ok()?;
        let se: i64 = it.next().unwrap_or("0").parse().ok()?;
        if h > 23 || mi > 59 || se > 59 {
            return None;
        }
        micros = micros.checked_add((h * 3600 + mi * 60 + se) * 1_000_000)?;
        if let Some(fr) = frac {
            let digits: String = fr.chars().take(6).collect();
            let mut v: i64 = digits.parse().ok()?;
            for _ in digits.len()..6 {
                v *= 10;
            }
            micros = micros.checked_add(v)?;
        }
    }
    Some(micros)
}

/// Format epoch days as `YYYY-MM-DD`.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = days_to_civil(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Format epoch microseconds as `YYYY-MM-DD HH:MM:SS[.ffffff]`.
pub fn format_timestamp(micros: i64) -> String {
    let days = micros.div_euclid(MICROS_PER_DAY);
    let rem = micros.rem_euclid(MICROS_PER_DAY);
    // invariant: |days| <= i64::MAX / MICROS_PER_DAY ≈ 1.07e8, well
    // inside i32 — the cast cannot wrap.
    let (y, m, d) = days_to_civil(days as i32);
    let secs = rem / 1_000_000;
    let frac = rem % 1_000_000;
    let (h, mi, se) = (secs / 3600, (secs % 3600) / 60, secs % 60);
    if frac == 0 {
        format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{se:02}")
    } else {
        format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{se:02}.{frac:06}")
    }
}

/// Calendar field extraction, shared by `EXTRACT(... FROM ...)` and the
/// Druid substrate's time granularities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DateField {
    Year,
    Quarter,
    Month,
    Day,
    DayOfWeek,
    Hour,
    Minute,
    Second,
}

/// Extract a calendar field from epoch days.
pub fn extract_from_days(field: DateField, days: i32) -> i64 {
    let (y, m, d) = days_to_civil(days);
    match field {
        DateField::Year => y as i64,
        DateField::Quarter => ((m - 1) / 3 + 1) as i64,
        DateField::Month => m as i64,
        DateField::Day => d as i64,
        // 1 = Sunday .. 7 = Saturday (Hive/SQL convention).
        DateField::DayOfWeek => ((days as i64 + 4).rem_euclid(7)) + 1,
        DateField::Hour | DateField::Minute | DateField::Second => 0,
    }
}

/// Extract a calendar field from epoch microseconds.
pub fn extract_from_micros(field: DateField, micros: i64) -> i64 {
    // invariant: |days| <= i64::MAX / MICROS_PER_DAY ≈ 1.07e8 < i32::MAX.
    let days = micros.div_euclid(MICROS_PER_DAY) as i32;
    let rem = micros.rem_euclid(MICROS_PER_DAY) / 1_000_000;
    match field {
        DateField::Hour => rem / 3600,
        DateField::Minute => (rem % 3600) / 60,
        DateField::Second => rem % 60,
        f => extract_from_days(f, days),
    }
}

/// First day of the month containing `days`.
pub fn truncate_to_month(days: i32) -> i32 {
    let (y, m, _) = days_to_civil(days);
    civil_to_days(y, m, 1)
}

/// First day of the year containing `days`.
pub fn truncate_to_year(days: i32) -> i32 {
    let (y, _, _) = days_to_civil(days);
    civil_to_days(y, 1, 1)
}

/// Add `months` calendar months, clamping the day (Hive `add_months`).
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = days_to_civil(days);
    let total = y as i64 * 12 + (m as i64 - 1) + months as i64;
    let ny = (total.div_euclid(12)) as i32;
    let nm = (total.rem_euclid(12)) as u32 + 1;
    let nd = d.min(days_in_month(ny, nm));
    civil_to_days(ny, nm, nd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(civil_to_days(1970, 1, 1), 0);
        assert_eq!(days_to_civil(0), (1970, 1, 1));
    }

    #[test]
    fn round_trip_wide_range() {
        for days in (-200_000..200_000).step_by(97) {
            let (y, m, d) = days_to_civil(days);
            assert_eq!(civil_to_days(y, m, d), days, "roundtrip failed at {days}");
        }
    }

    #[test]
    fn parse_and_format() {
        assert_eq!(parse_date("2018-03-26"), Some(civil_to_days(2018, 3, 26)));
        assert_eq!(format_date(parse_date("2018-03-26").unwrap()), "2018-03-26");
        assert_eq!(parse_date("2018-02-30"), None);
        assert_eq!(parse_date("2018-13-01"), None);
        assert_eq!(parse_date("not a date"), None);
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(2016));
        assert!(parse_date("2016-02-29").is_some());
        assert_eq!(parse_date("2017-02-29"), None);
    }

    #[test]
    fn timestamps() {
        let ts = parse_timestamp("1970-01-02 00:00:01.5").unwrap();
        assert_eq!(ts, MICROS_PER_DAY + 1_500_000);
        assert_eq!(format_timestamp(ts), "1970-01-02 00:00:01.500000");
        assert_eq!(
            parse_timestamp("2018-06-30"),
            Some(parse_date("2018-06-30").unwrap() as i64 * MICROS_PER_DAY)
        );
        assert_eq!(parse_timestamp("2018-06-30 25:00:00"), None);
    }

    #[test]
    fn extract_fields() {
        let d = parse_date("2018-06-30").unwrap();
        assert_eq!(extract_from_days(DateField::Year, d), 2018);
        assert_eq!(extract_from_days(DateField::Month, d), 6);
        assert_eq!(extract_from_days(DateField::Day, d), 30);
        assert_eq!(extract_from_days(DateField::Quarter, d), 2);
        // 2018-06-30 was a Saturday -> 7 in 1=Sunday convention.
        assert_eq!(extract_from_days(DateField::DayOfWeek, d), 7);
        // 1970-01-01 was a Thursday -> 5.
        assert_eq!(extract_from_days(DateField::DayOfWeek, 0), 5);
    }

    #[test]
    fn extreme_year_boundaries() {
        // ±5,874,897 AD (the widest year many engines admit) is well
        // inside the i32 day range and must round-trip exactly.
        for (y, m, d) in [(5_874_897, 12, 31), (-5_874_897, 1, 1)] {
            let days = civil_to_days_checked(y, m, d).expect("in range");
            assert_eq!(days_to_civil(days), (y, m, d));
            assert_eq!(civil_to_days(y, m, d), days); // clamped form agrees
        }
        // Past the i32 day horizon: checked says None, clamped saturates
        // instead of wrapping.
        assert_eq!(civil_to_days_checked(6_000_000, 1, 1), None);
        assert_eq!(civil_to_days(6_000_000, 1, 1), i32::MAX);
        assert_eq!(civil_to_days_checked(-6_000_000, 1, 1), None);
        assert_eq!(civil_to_days(-6_000_000, 1, 1), i32::MIN);
        assert_eq!(parse_date("6000000-01-01"), None);
        // Dates that fit in days but not in micros must fail timestamp
        // parsing rather than wrap.
        assert_eq!(parse_timestamp("5874897-12-31 23:59:59"), None);
    }

    #[test]
    fn year_zero() {
        // Proleptic Gregorian has a year 0 (divisible by 400 → leap).
        assert!(is_leap_year(0));
        let days = civil_to_days(0, 2, 29);
        assert_eq!(days_to_civil(days), (0, 2, 29));
        assert_eq!(format_date(civil_to_days(0, 1, 1)), "0000-01-01");
        assert_eq!(parse_date("0000-03-01"), Some(civil_to_days(0, 3, 1)));
        // Year 0 sits right before 1 AD.
        assert_eq!(civil_to_days(1, 1, 1) - civil_to_days(0, 12, 31), 1);
    }

    #[test]
    fn month_arithmetic() {
        let jan31 = parse_date("2018-01-31").unwrap();
        assert_eq!(format_date(add_months(jan31, 1)), "2018-02-28");
        assert_eq!(format_date(add_months(jan31, -1)), "2017-12-31");
        assert_eq!(format_date(truncate_to_month(jan31)), "2018-01-01");
        assert_eq!(format_date(truncate_to_year(jan31)), "2018-01-01");
    }
}
