//! Row-oriented view of data, used at the engine edges (result fetch,
//! INSERT VALUES, the v1.2 row-interpreter path) and in tests.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A single row of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Build a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True for the zero-column row.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value at column `i`.
    pub fn get(&self, i: usize) -> &Value {
        &self.0[i]
    }

    /// The underlying values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Consume into the underlying values.
    pub fn into_values(self) -> Vec<Value> {
        self.0
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "\t")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Self {
        Row(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_tab_separated() {
        let r = Row::new(vec![Value::Int(1), Value::String("x".into()), Value::Null]);
        assert_eq!(r.to_string(), "1\tx\tNULL");
    }

    #[test]
    fn accessors() {
        let r: Row = vec![Value::Int(1), Value::Int(2)].into();
        assert_eq!(r.len(), 2);
        assert_eq!(r.get(1), &Value::Int(2));
        assert_eq!(r.into_values().len(), 2);
    }
}
