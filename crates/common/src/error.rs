//! Error types shared across the warehouse.

use std::fmt;

/// Convenience alias used across all hive-rs crates.
pub type Result<T, E = HiveError> = std::result::Result<T, E>;

/// The unified error type for the warehouse.
///
/// Variants are coarse-grained by subsystem; the payload carries a
/// human-readable description. Several variants are load-bearing for
/// control flow (e.g. [`HiveError::Retryable`] drives query
/// re-optimization, [`HiveError::TxnAborted`] drives conflict handling).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HiveError {
    /// SQL text failed to lex/parse.
    Parse(String),
    /// Name resolution / type checking failed.
    Analysis(String),
    /// Plan construction or rewriting failed.
    Plan(String),
    /// Runtime execution failure.
    Execution(String),
    /// A failure that query re-execution (Section 4.2 of the paper) may fix,
    /// e.g. a mis-planned hash join exceeding its memory budget.
    Retryable(String),
    /// Catalog object missing or invalid.
    Catalog(String),
    /// Transaction was aborted (conflict, timeout, or explicit).
    TxnAborted(String),
    /// Lock acquisition failed or timed out.
    Lock(String),
    /// Simulated file-system failure.
    Io(String),
    /// Corrupt or unsupported file content.
    Format(String),
    /// Feature not supported by the active engine version (used to model
    /// Hive 1.2's missing SQL surface in Figure 7).
    Unsupported(String),
    /// Workload manager rejected or killed the query.
    Workload(String),
    /// Federation / external system failure.
    External(String),
    /// A transient infrastructure fault (injected or real): flaky DFS
    /// read, daemon restart mid-query, corrupt cache chunk. Safe to
    /// retry at fragment granularity — and, if fragment retries are
    /// exhausted, at driver granularity (§4.2).
    Transient(String),
    /// A fragment exhausted its retry budget and its node failovers;
    /// the driver-level re-execution ladder is the only rung left.
    FragmentLost(String),
    /// An operator asked the per-query memory broker for more bytes than
    /// its grant allows and could not degrade (spill disabled or spill
    /// itself impossible). Deliberately *not* retryable: with spill
    /// enabled the operators degrade to disk instead of raising it, and
    /// when spill is disabled the join build downgrades it to
    /// [`HiveError::Retryable`] so the §4.2 re-optimization ladder still
    /// applies.
    MemoryExceeded {
        /// Operator that exhausted its grant (e.g. `hash-join-build`).
        operator: String,
        /// Bytes the operator asked for in total.
        requested: u64,
        /// Bytes the broker was able to grant.
        granted: u64,
    },
    /// An operator observed >10× more rows than the optimizer
    /// estimated (§4.2's "significantly different statistics"). Raised
    /// at most once per query by the executor's cardinality guard;
    /// the driver re-optimizes with the observed count substituted for
    /// the estimate and re-executes — results are identical, only the
    /// plan changes.
    CardinalityMisestimate {
        /// Operator whose estimate was off (e.g. `join`).
        operator: String,
        /// Sorted base tables feeding the operator — the feedback key.
        tables: String,
        /// Rows the operator actually produced.
        observed: u64,
        /// Rows the optimizer predicted.
        estimated: u64,
    },
}

impl HiveError {
    /// Short subsystem tag, used by EXPLAIN/diagnostic output.
    pub fn kind(&self) -> &'static str {
        match self {
            HiveError::Parse(_) => "PARSE",
            HiveError::Analysis(_) => "ANALYSIS",
            HiveError::Plan(_) => "PLAN",
            HiveError::Execution(_) => "EXECUTION",
            HiveError::Retryable(_) => "RETRYABLE",
            HiveError::Catalog(_) => "CATALOG",
            HiveError::TxnAborted(_) => "TXN_ABORTED",
            HiveError::Lock(_) => "LOCK",
            HiveError::Io(_) => "IO",
            HiveError::Format(_) => "FORMAT",
            HiveError::Unsupported(_) => "UNSUPPORTED",
            HiveError::Workload(_) => "WORKLOAD",
            HiveError::External(_) => "EXTERNAL",
            HiveError::Transient(_) => "TRANSIENT",
            HiveError::FragmentLost(_) => "FRAGMENT_LOST",
            HiveError::MemoryExceeded { .. } => "MEMORY_EXCEEDED",
            HiveError::CardinalityMisestimate { .. } => "CARDINALITY_MISESTIMATE",
        }
    }

    /// Whether the driver should attempt re-optimization + re-execution.
    /// Covers planner mispredictions ([`HiveError::Retryable`],
    /// [`HiveError::CardinalityMisestimate`]) and infrastructure faults
    /// that escaped fragment-level recovery ([`HiveError::Transient`],
    /// [`HiveError::FragmentLost`]).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            HiveError::Retryable(_)
                | HiveError::Transient(_)
                | HiveError::FragmentLost(_)
                | HiveError::CardinalityMisestimate { .. }
        )
    }

    /// Whether this is a transient infrastructure fault, i.e. retrying
    /// the same work (same plan) may simply succeed.
    pub fn is_transient(&self) -> bool {
        matches!(self, HiveError::Transient(_) | HiveError::FragmentLost(_))
    }

    fn message(&self) -> std::borrow::Cow<'_, str> {
        match self {
            HiveError::Parse(m)
            | HiveError::Analysis(m)
            | HiveError::Plan(m)
            | HiveError::Execution(m)
            | HiveError::Retryable(m)
            | HiveError::Catalog(m)
            | HiveError::TxnAborted(m)
            | HiveError::Lock(m)
            | HiveError::Io(m)
            | HiveError::Format(m)
            | HiveError::Unsupported(m)
            | HiveError::Workload(m)
            | HiveError::External(m)
            | HiveError::Transient(m)
            | HiveError::FragmentLost(m) => m.as_str().into(),
            HiveError::MemoryExceeded {
                operator,
                requested,
                granted,
            } => format!(
                "{operator} requested {requested} bytes but the memory broker \
                 granted only {granted}"
            )
            .into(),
            HiveError::CardinalityMisestimate {
                operator,
                tables,
                observed,
                estimated,
            } => format!(
                "{operator} over {tables} produced {observed} rows vs {estimated} estimated"
            )
            .into(),
        }
    }
}

impl fmt::Display for HiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.message())
    }
}

impl std::error::Error for HiveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = HiveError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "PARSE: unexpected token");
    }

    #[test]
    fn retryable_flag() {
        assert!(HiveError::Retryable("oom".into()).is_retryable());
        assert!(HiveError::Transient("flaky read".into()).is_retryable());
        assert!(HiveError::FragmentLost("retries exhausted".into()).is_retryable());
        assert!(!HiveError::Execution("boom".into()).is_retryable());
    }

    #[test]
    fn transient_flag() {
        assert!(HiveError::Transient("flaky read".into()).is_transient());
        assert!(HiveError::FragmentLost("gone".into()).is_transient());
        assert!(!HiveError::Retryable("oom".into()).is_transient());
        assert!(!HiveError::Io("missing".into()).is_transient());
    }

    #[test]
    fn memory_exceeded_is_typed_and_not_retryable() {
        let e = HiveError::MemoryExceeded {
            operator: "hash-join-build".into(),
            requested: 4096,
            granted: 1024,
        };
        assert_eq!(e.kind(), "MEMORY_EXCEEDED");
        assert!(!e.is_retryable(), "spill handles it; reopt does not");
        assert!(!e.is_transient());
        assert_eq!(
            e.to_string(),
            "MEMORY_EXCEEDED: hash-join-build requested 4096 bytes but the \
             memory broker granted only 1024"
        );
    }

    #[test]
    fn cardinality_misestimate_is_typed_and_retryable() {
        let e = HiveError::CardinalityMisestimate {
            operator: "join".into(),
            tables: "db.fact,db.dim".into(),
            observed: 500_000,
            estimated: 1_000,
        };
        assert_eq!(e.kind(), "CARDINALITY_MISESTIMATE");
        assert!(e.is_retryable(), "must enter the §4.2 re-plan ladder");
        assert!(!e.is_transient(), "same plan would misestimate again");
        assert_eq!(
            e.to_string(),
            "CARDINALITY_MISESTIMATE: join over db.fact,db.dim produced \
             500000 rows vs 1000 estimated"
        );
    }

    #[test]
    fn kind_covers_all_variants() {
        let variants = [
            HiveError::Parse(String::new()),
            HiveError::Analysis(String::new()),
            HiveError::Plan(String::new()),
            HiveError::Execution(String::new()),
            HiveError::Retryable(String::new()),
            HiveError::Catalog(String::new()),
            HiveError::TxnAborted(String::new()),
            HiveError::Lock(String::new()),
            HiveError::Io(String::new()),
            HiveError::Format(String::new()),
            HiveError::Unsupported(String::new()),
            HiveError::Workload(String::new()),
            HiveError::External(String::new()),
            HiveError::Transient(String::new()),
            HiveError::FragmentLost(String::new()),
            HiveError::MemoryExceeded {
                operator: String::new(),
                requested: 0,
                granted: 0,
            },
            HiveError::CardinalityMisestimate {
                operator: String::new(),
                tables: String::new(),
                observed: 0,
                estimated: 0,
            },
        ];
        let kinds: std::collections::HashSet<_> = variants.iter().map(|v| v.kind()).collect();
        assert_eq!(kinds.len(), variants.len(), "kinds must be distinct");
    }
}
