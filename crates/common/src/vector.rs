//! Columnar, vectorized data representation.
//!
//! A [`VectorBatch`] is the unit of data flow in the vectorized engine
//! (the paper's Section 5: operators "run directly on the internal
//! format"). Each column is a typed [`ColumnVector`] with an optional
//! null bitmap. Filters produce index lists which are applied with
//! [`VectorBatch::take`], keeping kernels column-at-a-time.

use crate::bitset::BitSet;
use crate::error::{HiveError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::types::DataType;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Default number of rows per vectorized batch.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A typed column of values with an optional null bitmap
/// (bit set = value is NULL).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ColumnVector {
    Boolean(Vec<bool>, Option<BitSet>),
    Int(Vec<i32>, Option<BitSet>),
    BigInt(Vec<i64>, Option<BitSet>),
    Double(Vec<f64>, Option<BitSet>),
    /// Unscaled values plus a shared scale.
    Decimal(Vec<i128>, u8, Option<BitSet>),
    Str(Vec<String>, Option<BitSet>),
    /// Dictionary-encoded strings: one `u32` code per row indexing into
    /// a dictionary shared (via `Arc`) across every chunk clone — the
    /// paper's §3.1/§3.3 encoded representation kept alive past the
    /// reader. Logically equivalent to a `Str` column; materialize via
    /// [`ColumnVector::decode`] only at output boundaries. Invariant:
    /// every code is `< dict.len()` (enforced at construction).
    Dict {
        codes: Vec<u32>,
        dict: Arc<Vec<String>>,
        nulls: Option<BitSet>,
    },
    Date(Vec<i32>, Option<BitSet>),
    Timestamp(Vec<i64>, Option<BitSet>),
}

macro_rules! per_variant {
    ($self:expr, $v:ident, $n:ident => $body:expr) => {
        match $self {
            ColumnVector::Boolean($v, $n) => $body,
            ColumnVector::Int($v, $n) => $body,
            ColumnVector::BigInt($v, $n) => $body,
            ColumnVector::Double($v, $n) => $body,
            ColumnVector::Decimal($v, _, $n) => $body,
            ColumnVector::Str($v, $n) => $body,
            ColumnVector::Dict {
                codes: $v,
                nulls: $n,
                ..
            } => $body,
            ColumnVector::Date($v, $n) => $body,
            ColumnVector::Timestamp($v, $n) => $body,
        }
    };
}

impl ColumnVector {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        per_variant!(self, v, _n => v.len())
    }

    /// True for zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnVector::Boolean(..) => DataType::Boolean,
            ColumnVector::Int(..) => DataType::Int,
            ColumnVector::BigInt(..) => DataType::BigInt,
            ColumnVector::Double(..) => DataType::Double,
            ColumnVector::Decimal(_, s, _) => DataType::Decimal(38, *s),
            ColumnVector::Str(..) => DataType::String,
            ColumnVector::Dict { .. } => DataType::String,
            ColumnVector::Date(..) => DataType::Date,
            ColumnVector::Timestamp(..) => DataType::Timestamp,
        }
    }

    /// True if row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        per_variant!(self, _v, n => n.as_ref().is_some_and(|b| b.get(i)))
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        per_variant!(self, _v, n => n.as_ref().map_or(0, |b| b.count_ones()))
    }

    /// The value at row `i` as a scalar [`Value`].
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self {
            ColumnVector::Boolean(v, _) => Value::Boolean(v[i]),
            ColumnVector::Int(v, _) => Value::Int(v[i]),
            ColumnVector::BigInt(v, _) => Value::BigInt(v[i]),
            ColumnVector::Double(v, _) => Value::Double(v[i]),
            ColumnVector::Decimal(v, s, _) => Value::Decimal(v[i], *s),
            ColumnVector::Str(v, _) => Value::String(v[i].clone()),
            ColumnVector::Dict { codes, dict, .. } => {
                Value::String(dict[codes[i] as usize].clone())
            }
            ColumnVector::Date(v, _) => Value::Date(v[i]),
            ColumnVector::Timestamp(v, _) => Value::Timestamp(v[i]),
        }
    }

    /// Build an empty column of the given type. Decimal uses the type's
    /// scale; non-atomic types are rejected.
    pub fn new_empty(dt: &DataType) -> Result<ColumnVector> {
        Ok(match dt {
            DataType::Boolean => ColumnVector::Boolean(Vec::new(), None),
            DataType::Int => ColumnVector::Int(Vec::new(), None),
            DataType::BigInt => ColumnVector::BigInt(Vec::new(), None),
            DataType::Double => ColumnVector::Double(Vec::new(), None),
            DataType::Decimal(_, s) => ColumnVector::Decimal(Vec::new(), *s, None),
            DataType::String => ColumnVector::Str(Vec::new(), None),
            DataType::Date => ColumnVector::Date(Vec::new(), None),
            DataType::Timestamp => ColumnVector::Timestamp(Vec::new(), None),
            DataType::Null => ColumnVector::Str(Vec::new(), None),
            t => {
                return Err(HiveError::Execution(format!(
                    "non-atomic type {t} cannot be vectorized"
                )))
            }
        })
    }

    /// Build a column of type `dt` from scalar values, casting as needed.
    pub fn from_values(values: &[Value], dt: &DataType) -> Result<ColumnVector> {
        let mut b = ColumnBuilder::new(dt)?;
        for v in values {
            b.push(v)?;
        }
        Ok(b.finish())
    }

    /// Gather rows at `indices` into a new column.
    pub fn take(&self, indices: &[u32]) -> ColumnVector {
        fn gather<T: Clone>(v: &[T], n: &Option<BitSet>, idx: &[u32]) -> (Vec<T>, Option<BitSet>) {
            let out: Vec<T> = idx.iter().map(|&i| v[i as usize].clone()).collect();
            let nulls = n.as_ref().map(|b| {
                let mut nb = BitSet::new(idx.len());
                for (o, &i) in idx.iter().enumerate() {
                    if b.get(i as usize) {
                        nb.set(o);
                    }
                }
                nb
            });
            (out, nulls)
        }
        match self {
            ColumnVector::Boolean(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Boolean(v, n)
            }
            ColumnVector::Int(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Int(v, n)
            }
            ColumnVector::BigInt(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::BigInt(v, n)
            }
            ColumnVector::Double(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Double(v, n)
            }
            ColumnVector::Decimal(v, s, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Decimal(v, *s, n)
            }
            ColumnVector::Str(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Str(v, n)
            }
            ColumnVector::Dict { codes, dict, nulls } => {
                let (codes, nulls) = gather(codes, nulls, indices);
                ColumnVector::Dict {
                    codes,
                    dict: dict.clone(),
                    nulls,
                }
            }
            ColumnVector::Date(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Date(v, n)
            }
            ColumnVector::Timestamp(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Timestamp(v, n)
            }
        }
    }

    /// Append all rows of `other` (must be the same variant).
    pub fn append(&mut self, other: &ColumnVector) -> Result<()> {
        fn merge_nulls(a_len: usize, a: &mut Option<BitSet>, b_len: usize, b: &Option<BitSet>) {
            if a.is_none() && b.is_none() {
                return;
            }
            let total = a_len + b_len;
            let mut nb = BitSet::new(total);
            if let Some(ab) = a.as_ref() {
                for i in ab.iter_ones() {
                    nb.set(i);
                }
            }
            if let Some(bb) = b.as_ref() {
                for i in bb.iter_ones() {
                    nb.set(a_len + i);
                }
            }
            *a = Some(nb);
        }
        macro_rules! app {
            ($av:expr, $an:expr, $bv:expr, $bn:expr) => {{
                let alen = $av.len();
                $av.extend_from_slice($bv);
                merge_nulls(alen, $an, $bv.len(), $bn);
                Ok(())
            }};
        }
        // An empty Str column (the shape `VectorBatch::empty` produces
        // for String fields) adopts the encoded form wholesale so scan
        // assembly keeps dictionaries intact across morsel appends.
        if let (ColumnVector::Str(av, _), ColumnVector::Dict { .. }) = (&*self, other) {
            if av.is_empty() {
                *self = other.clone();
                return Ok(());
            }
        }
        match (self, other) {
            (
                ColumnVector::Dict {
                    codes: ac,
                    dict: ad,
                    nulls: an,
                },
                ColumnVector::Dict {
                    codes: bc,
                    dict: bd,
                    nulls: bn,
                },
            ) => {
                let alen = ac.len();
                if bc.is_empty() {
                    return Ok(());
                }
                if Arc::ptr_eq(ad, bd) || **ad == **bd {
                    ac.extend_from_slice(bc);
                } else {
                    // Different dictionaries: merge, interning the
                    // other side's entries and remapping its codes.
                    let mut merged: Vec<String> = (**ad).clone();
                    let mut index: std::collections::HashMap<String, u32> = merged
                        .iter()
                        .enumerate()
                        .map(|(i, s)| (s.clone(), i as u32))
                        .collect();
                    let remap: Vec<u32> = bd
                        .iter()
                        .map(|s| match index.get(s) {
                            Some(&c) => c,
                            None => {
                                let c = merged.len() as u32;
                                merged.push(s.clone());
                                index.insert(s.clone(), c);
                                c
                            }
                        })
                        .collect();
                    ac.extend(bc.iter().map(|&c| remap[c as usize]));
                    *ad = Arc::new(merged);
                }
                merge_nulls(alen, an, bc.len(), bn);
                Ok(())
            }
            (
                ColumnVector::Dict {
                    codes: ac,
                    dict: ad,
                    nulls: an,
                },
                ColumnVector::Str(bv, bn),
            ) => {
                let alen = ac.len();
                if bv.is_empty() {
                    return Ok(());
                }
                let mut merged: Vec<String> = (**ad).clone();
                let mut index: std::collections::HashMap<String, u32> = merged
                    .iter()
                    .enumerate()
                    .map(|(i, s)| (s.clone(), i as u32))
                    .collect();
                for s in bv {
                    let c = match index.get(s) {
                        Some(&c) => c,
                        None => {
                            let c = merged.len() as u32;
                            merged.push(s.clone());
                            index.insert(s.clone(), c);
                            c
                        }
                    };
                    ac.push(c);
                }
                *ad = Arc::new(merged);
                merge_nulls(alen, an, bv.len(), bn);
                Ok(())
            }
            (
                ColumnVector::Str(av, an),
                ColumnVector::Dict {
                    codes: bc,
                    dict: bd,
                    nulls: bn,
                },
            ) => {
                let alen = av.len();
                av.extend(bc.iter().map(|&c| bd[c as usize].clone()));
                merge_nulls(alen, an, bc.len(), bn);
                Ok(())
            }
            (ColumnVector::Boolean(av, an), ColumnVector::Boolean(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Int(av, an), ColumnVector::Int(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::BigInt(av, an), ColumnVector::BigInt(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Double(av, an), ColumnVector::Double(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Decimal(av, s1, an), ColumnVector::Decimal(bv, s2, bn)) if s1 == s2 => {
                app!(av, an, bv, bn)
            }
            (ColumnVector::Str(av, an), ColumnVector::Str(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Date(av, an), ColumnVector::Date(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Timestamp(av, an), ColumnVector::Timestamp(bv, bn)) => {
                app!(av, an, bv, bn)
            }
            (a, b) => Err(HiveError::Execution(format!(
                "cannot append column of type {} to {}",
                b.data_type(),
                a.data_type()
            ))),
        }
    }

    /// Concatenate the selected rows of a sequence of column parts in a
    /// single gather. A `None` selection keeps the whole part. This is
    /// the fused-scan assembly primitive: instead of concatenating full
    /// morsel columns and filtering afterwards, only surviving rows are
    /// copied, once.
    ///
    /// Uniform typed parts gather directly into the output vector;
    /// uniform `Dict` parts merge dictionaries with the same adopt /
    /// extend / intern-and-remap policy as [`ColumnVector::append`];
    /// mixed representations (e.g. `Str` and `Dict` parts of one
    /// `String` column) fall back to take-then-append, which preserves
    /// `append`'s semantics exactly. The output null bitmap is present
    /// iff any contributing part carries one, matching `append`.
    pub fn concat_selected(
        dt: &DataType,
        parts: &[(&ColumnVector, Option<&[u32]>)],
    ) -> Result<ColumnVector> {
        fn part_rows(c: &ColumnVector, sel: Option<&[u32]>) -> usize {
            sel.map_or(c.len(), |s| s.len())
        }
        let total: usize = parts.iter().map(|&(c, sel)| part_rows(c, sel)).sum();
        let has_nulls = parts
            .iter()
            .any(|&(c, _)| per_variant!(c, _v, n => n.is_some()));

        // Gather one part's values and null bits into the accumulators.
        fn gather_part<T: Clone>(
            vals: &mut Vec<T>,
            nulls: &mut Option<BitSet>,
            v: &[T],
            n: &Option<BitSet>,
            sel: Option<&[u32]>,
        ) {
            let base = vals.len();
            match sel {
                None => vals.extend_from_slice(v),
                Some(idx) => vals.extend(idx.iter().map(|&i| v[i as usize].clone())),
            }
            if let (Some(nb), Some(b)) = (nulls.as_mut(), n.as_ref()) {
                match sel {
                    None => {
                        for i in b.iter_ones() {
                            nb.set(base + i);
                        }
                    }
                    Some(idx) => {
                        for (o, &i) in idx.iter().enumerate() {
                            if b.get(i as usize) {
                                nb.set(base + o);
                            }
                        }
                    }
                }
            }
        }
        macro_rules! uniform_gather {
            ($variant:ident, $t:ty) => {{
                let mut vals: Vec<$t> = Vec::with_capacity(total);
                let mut nulls = has_nulls.then(|| BitSet::new(total));
                for &(c, sel) in parts {
                    let ColumnVector::$variant(v, n) = c else {
                        unreachable!()
                    };
                    gather_part(&mut vals, &mut nulls, v, n, sel);
                }
                return Ok(ColumnVector::$variant(vals, nulls));
            }};
        }
        macro_rules! all_are {
            ($variant:ident) => {
                parts
                    .iter()
                    .all(|&(c, _)| matches!(c, ColumnVector::$variant(..)))
            };
        }
        match parts.first() {
            None => return ColumnVector::new_empty(dt),
            Some(&(ColumnVector::Boolean(..), _)) if all_are!(Boolean) => {
                uniform_gather!(Boolean, bool)
            }
            Some(&(ColumnVector::Int(..), _)) if all_are!(Int) => uniform_gather!(Int, i32),
            Some(&(ColumnVector::BigInt(..), _)) if all_are!(BigInt) => {
                uniform_gather!(BigInt, i64)
            }
            Some(&(ColumnVector::Double(..), _)) if all_are!(Double) => {
                uniform_gather!(Double, f64)
            }
            Some(&(ColumnVector::Date(..), _)) if all_are!(Date) => uniform_gather!(Date, i32),
            Some(&(ColumnVector::Timestamp(..), _)) if all_are!(Timestamp) => {
                uniform_gather!(Timestamp, i64)
            }
            Some(&(ColumnVector::Str(..), _)) if all_are!(Str) => uniform_gather!(Str, String),
            Some(&(ColumnVector::Decimal(_, s0, _), _))
                if parts
                    .iter()
                    .all(|&(c, _)| matches!(c, ColumnVector::Decimal(_, s, _) if s == s0)) =>
            {
                let mut vals: Vec<i128> = Vec::with_capacity(total);
                let mut nulls = has_nulls.then(|| BitSet::new(total));
                for &(c, sel) in parts {
                    let ColumnVector::Decimal(v, _, n) = c else {
                        unreachable!()
                    };
                    gather_part(&mut vals, &mut nulls, v, n, sel);
                }
                return Ok(ColumnVector::Decimal(vals, *s0, nulls));
            }
            Some(_) if parts.iter().all(|&(c, _)| c.is_dict()) => {
                let mut codes: Vec<u32> = Vec::with_capacity(total);
                let mut nulls = has_nulls.then(|| BitSet::new(total));
                let mut dict: Arc<Vec<String>> = Arc::new(Vec::new());
                let mut first = true;
                for &(c, sel) in parts {
                    if part_rows(c, sel) == 0 {
                        continue;
                    }
                    let ColumnVector::Dict {
                        codes: pc,
                        dict: pd,
                        nulls: pn,
                    } = c
                    else {
                        unreachable!()
                    };
                    // Mirror `append`: the first contributing part's
                    // dictionary is adopted by handle; equal
                    // dictionaries extend codes directly; a differing
                    // dictionary is interned in order and its codes
                    // remapped.
                    let remap: Option<Vec<u32>> =
                        if first || Arc::ptr_eq(&dict, pd) || *dict == **pd {
                            if first {
                                dict = pd.clone();
                                first = false;
                            }
                            None
                        } else {
                            let mut merged: Vec<String> = (*dict).clone();
                            let mut index: std::collections::HashMap<String, u32> = merged
                                .iter()
                                .enumerate()
                                .map(|(i, s)| (s.clone(), i as u32))
                                .collect();
                            let rm: Vec<u32> = pd
                                .iter()
                                .map(|s| match index.get(s) {
                                    Some(&code) => code,
                                    None => {
                                        let code = merged.len() as u32;
                                        merged.push(s.clone());
                                        index.insert(s.clone(), code);
                                        code
                                    }
                                })
                                .collect();
                            dict = Arc::new(merged);
                            Some(rm)
                        };
                    let base = codes.len();
                    match (sel, remap.as_ref()) {
                        (None, None) => codes.extend_from_slice(pc),
                        (Some(idx), None) => codes.extend(idx.iter().map(|&i| pc[i as usize])),
                        (None, Some(rm)) => codes.extend(pc.iter().map(|&c| rm[c as usize])),
                        (Some(idx), Some(rm)) => {
                            codes.extend(idx.iter().map(|&i| rm[pc[i as usize] as usize]))
                        }
                    }
                    if let (Some(nb), Some(b)) = (nulls.as_mut(), pn.as_ref()) {
                        match sel {
                            None => {
                                for i in b.iter_ones() {
                                    nb.set(base + i);
                                }
                            }
                            Some(idx) => {
                                for (o, &i) in idx.iter().enumerate() {
                                    if b.get(i as usize) {
                                        nb.set(base + o);
                                    }
                                }
                            }
                        }
                    }
                }
                if codes.is_empty() {
                    return ColumnVector::new_empty(dt);
                }
                return Ok(ColumnVector::Dict { codes, dict, nulls });
            }
            Some(_) => {}
        }
        // Mixed or unhandled representations: per-part take + append,
        // byte-compatible with the unfused concat-then-filter path.
        let mut out = ColumnVector::new_empty(dt)?;
        for &(c, sel) in parts {
            match sel {
                None => out.append(c)?,
                Some(idx) => out.append(&c.take(idx))?,
            }
        }
        Ok(out)
    }

    /// Approximate heap size in bytes, used by cache/cost accounting.
    pub fn approx_bytes(&self) -> usize {
        let base = match self {
            ColumnVector::Boolean(v, _) => v.len(),
            ColumnVector::Int(v, _) | ColumnVector::Date(v, _) => v.len() * 4,
            ColumnVector::BigInt(v, _) | ColumnVector::Timestamp(v, _) => v.len() * 8,
            ColumnVector::Double(v, _) => v.len() * 8,
            ColumnVector::Decimal(v, _, _) => v.len() * 16,
            ColumnVector::Str(v, _) => v.iter().map(|s| s.len() + 24).sum(),
            // Codes plus the full dictionary heap. Cache accounting
            // that shares the dictionary across chunks charges it once
            // via `dict_parts` instead of using this total.
            ColumnVector::Dict { codes, dict, .. } => {
                codes.len() * 4 + dict.iter().map(|s| s.len() + 24).sum::<usize>()
            }
        };
        base + self.len() / 8
    }

    /// Build a dictionary-encoded string column, rejecting any code
    /// outside the dictionary as a [`HiveError::Format`] error (the
    /// on-disk form is untrusted input).
    pub fn dict_from_codes(
        codes: Vec<u32>,
        dict: Arc<Vec<String>>,
        nulls: Option<BitSet>,
    ) -> Result<ColumnVector> {
        if let Some(&bad) = codes.iter().find(|&&c| c as usize >= dict.len()) {
            return Err(HiveError::Format(format!(
                "dictionary code {bad} out of range for dictionary of {} entries",
                dict.len()
            )));
        }
        Ok(ColumnVector::Dict { codes, dict, nulls })
    }

    /// Borrow the encoded parts when this column is dictionary-encoded.
    #[allow(clippy::type_complexity)]
    pub fn dict_parts(&self) -> Option<(&[u32], &Arc<Vec<String>>, Option<&BitSet>)> {
        match self {
            ColumnVector::Dict { codes, dict, nulls } => Some((codes, dict, nulls.as_ref())),
            _ => None,
        }
    }

    /// True when this column is dictionary-encoded.
    pub fn is_dict(&self) -> bool {
        matches!(self, ColumnVector::Dict { .. })
    }

    /// The single materialization choke point: dictionary-encoded
    /// columns decode to `Str`; every other variant passes through
    /// unchanged. Called only at output boundaries (final results,
    /// results-cache fill, corc re-write).
    pub fn decode(self) -> ColumnVector {
        match self {
            ColumnVector::Dict { codes, dict, nulls } => ColumnVector::Str(
                codes.iter().map(|&c| dict[c as usize].clone()).collect(),
                nulls,
            ),
            other => other,
        }
    }
}

/// Logical per-row comparison across the `Str`/`Dict` representations:
/// two string columns are equal when every row has the same null flag
/// and the same underlying string (including the padding value stored
/// at null slots, matching the derived `Str`/`Str` semantics).
fn str_eq_logical(a: &ColumnVector, b: &ColumnVector) -> bool {
    fn raw(c: &ColumnVector, i: usize) -> &str {
        match c {
            ColumnVector::Str(v, _) => &v[i],
            ColumnVector::Dict { codes, dict, .. } => &dict[codes[i] as usize],
            _ => unreachable!("str_eq_logical called on non-string column"),
        }
    }
    if a.len() != b.len() {
        return false;
    }
    (0..a.len()).all(|i| a.is_null(i) == b.is_null(i) && raw(a, i) == raw(b, i))
}

impl PartialEq for ColumnVector {
    fn eq(&self, other: &Self) -> bool {
        use ColumnVector::*;
        match (self, other) {
            (Boolean(a, an), Boolean(b, bn)) => a == b && an == bn,
            (Int(a, an), Int(b, bn)) => a == b && an == bn,
            (BigInt(a, an), BigInt(b, bn)) => a == b && an == bn,
            (Double(a, an), Double(b, bn)) => a == b && an == bn,
            (Decimal(a, s1, an), Decimal(b, s2, bn)) => s1 == s2 && a == b && an == bn,
            (Str(a, an), Str(b, bn)) => a == b && an == bn,
            (Date(a, an), Date(b, bn)) => a == b && an == bn,
            (Timestamp(a, an), Timestamp(b, bn)) => a == b && an == bn,
            // Encoded and materialized string columns compare by
            // logical content so Dict is transparent to batch equality.
            (Dict { .. }, Dict { .. }) | (Dict { .. }, Str(..)) | (Str(..), Dict { .. }) => {
                str_eq_logical(self, other)
            }
            _ => false,
        }
    }
}

/// Incremental builder for a [`ColumnVector`].
#[derive(Debug)]
pub struct ColumnBuilder {
    col: ColumnVector,
    nulls: Vec<usize>,
    len: usize,
    dt: DataType,
}

impl ColumnBuilder {
    /// Start building a column of type `dt`.
    pub fn new(dt: &DataType) -> Result<Self> {
        Ok(ColumnBuilder {
            col: ColumnVector::new_empty(dt)?,
            nulls: Vec::new(),
            len: 0,
            dt: dt.clone(),
        })
    }

    /// Append a value, casting to the column type. NULL is always accepted.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            self.nulls.push(self.len);
            self.push_default();
        } else {
            let cast = if v.data_type() == self.dt {
                v.clone()
            } else {
                v.cast_to(&self.dt)?
            };
            if cast.is_null() {
                // Lenient cast produced NULL.
                self.nulls.push(self.len);
                self.push_default();
            } else {
                self.push_nonnull(&cast)?;
            }
        }
        self.len += 1;
        Ok(())
    }

    fn push_default(&mut self) {
        match &mut self.col {
            ColumnVector::Boolean(v, _) => v.push(false),
            ColumnVector::Int(v, _) => v.push(0),
            ColumnVector::BigInt(v, _) => v.push(0),
            ColumnVector::Double(v, _) => v.push(0.0),
            ColumnVector::Decimal(v, _, _) => v.push(0),
            ColumnVector::Str(v, _) => v.push(String::new()),
            // invariant: builders only ever hold columns produced by
            // `new_empty`, which never creates the encoded variant.
            ColumnVector::Dict { .. } => unreachable!("builders never hold Dict columns"),
            ColumnVector::Date(v, _) => v.push(0),
            ColumnVector::Timestamp(v, _) => v.push(0),
        }
    }

    fn push_nonnull(&mut self, v: &Value) -> Result<()> {
        match (&mut self.col, v) {
            (ColumnVector::Boolean(c, _), Value::Boolean(x)) => c.push(*x),
            (ColumnVector::Int(c, _), Value::Int(x)) => c.push(*x),
            (ColumnVector::BigInt(c, _), Value::BigInt(x)) => c.push(*x),
            (ColumnVector::Double(c, _), Value::Double(x)) => c.push(*x),
            (ColumnVector::Decimal(c, _, _), Value::Decimal(x, _)) => c.push(*x),
            (ColumnVector::Str(c, _), Value::String(x)) => c.push(x.clone()),
            (ColumnVector::Date(c, _), Value::Date(x)) => c.push(*x),
            (ColumnVector::Timestamp(c, _), Value::Timestamp(x)) => c.push(*x),
            (c, v) => {
                return Err(HiveError::Execution(format!(
                    "type mismatch pushing {} into {} column",
                    v.data_type(),
                    c.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Finish and return the built column.
    pub fn finish(self) -> ColumnVector {
        let mut col = self.col;
        if !self.nulls.is_empty() {
            let mut b = BitSet::new(self.len);
            for i in self.nulls {
                b.set(i);
            }
            per_variant!(&mut col, _v, n => *n = Some(b));
        }
        col
    }
}

/// A batch of rows in columnar form, with its schema. Columns are held
/// behind `Arc` so projections, cache handouts and operator pass-through
/// share data instead of copying it; mutation (`append`) copies-on-write
/// via [`Arc::make_mut`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorBatch {
    schema: Schema,
    columns: Vec<Arc<ColumnVector>>,
    num_rows: usize,
}

impl VectorBatch {
    /// Build a batch with an explicit row count — required for
    /// zero-column batches (`SELECT COUNT(*)` plans prune every column
    /// but rows still flow).
    pub fn new_with_rows(
        schema: Schema,
        columns: Vec<ColumnVector>,
        num_rows: usize,
    ) -> Result<Self> {
        VectorBatch::from_arcs(
            schema,
            columns.into_iter().map(Arc::new).collect(),
            num_rows,
        )
    }

    /// Build a batch; all columns must share one length.
    pub fn new(schema: Schema, columns: Vec<ColumnVector>) -> Result<Self> {
        let num_rows = columns.first().map_or(0, |c| c.len());
        VectorBatch::new_with_rows(schema, columns, num_rows)
    }

    /// Build a batch from already-shared columns (zero-copy: readers and
    /// operators hand `Arc`s straight through).
    pub fn from_arcs(
        schema: Schema,
        columns: Vec<Arc<ColumnVector>>,
        num_rows: usize,
    ) -> Result<Self> {
        if columns.iter().any(|c| c.len() != num_rows) {
            return Err(HiveError::Execution("ragged column lengths".into()));
        }
        if columns.len() != schema.len() {
            return Err(HiveError::Execution(format!(
                "schema has {} fields but {} columns given",
                schema.len(),
                columns.len()
            )));
        }
        Ok(VectorBatch {
            schema,
            columns,
            num_rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: &Schema) -> Result<Self> {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnVector::new_empty(&f.data_type))
            .collect::<Result<Vec<_>>>()?;
        VectorBatch::new(schema.clone(), columns)
    }

    /// Convert row-oriented data into a batch, casting to the schema types.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> Result<Self> {
        let mut builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(&f.data_type))
            .collect::<Result<Vec<_>>>()?;
        for r in rows {
            if r.len() != schema.len() {
                return Err(HiveError::Execution(format!(
                    "row arity {} does not match schema arity {}",
                    r.len(),
                    schema.len()
                )));
            }
            for (b, v) in builders.iter_mut().zip(r.values()) {
                b.push(v)?;
            }
        }
        VectorBatch::new_with_rows(
            schema.clone(),
            builders.into_iter().map(|b| b.finish()).collect(),
            rows.len(),
        )
    }

    /// The batch schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True for zero rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &ColumnVector {
        &self.columns[i]
    }

    /// Shared handle to column `i` (clone it to pass the column on
    /// without copying its data).
    pub fn column_arc(&self, i: usize) -> &Arc<ColumnVector> {
        &self.columns[i]
    }

    /// All columns (shared handles).
    pub fn columns(&self) -> &[Arc<ColumnVector>] {
        &self.columns
    }

    /// Row `i` as a scalar row (allocates; edge use only).
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// All rows (allocates; edge use only).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.num_rows).map(|i| self.row(i)).collect()
    }

    /// Gather the rows at `indices` into a new batch.
    pub fn take(&self, indices: &[u32]) -> VectorBatch {
        VectorBatch {
            schema: self.schema.clone(),
            columns: self
                .columns
                .iter()
                .map(|c| Arc::new(c.take(indices)))
                .collect(),
            num_rows: indices.len(),
        }
    }

    /// Keep only the columns at `indices` (projection). Zero-copy: the
    /// projected batch shares column data with `self`.
    pub fn project(&self, indices: &[usize]) -> VectorBatch {
        VectorBatch {
            schema: self.schema.project(indices),
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            num_rows: self.num_rows,
        }
    }

    /// Append all rows of `other` (schemas' types must match).
    /// Copy-on-write: columns shared with another batch are cloned
    /// before extension, so sharers never observe the mutation.
    pub fn append(&mut self, other: &VectorBatch) -> Result<()> {
        if self.num_columns() != other.num_columns() {
            return Err(HiveError::Execution(
                "batch arity mismatch in append".into(),
            ));
        }
        for (a, b) in self.columns.iter_mut().zip(other.columns()) {
            Arc::make_mut(a).append(b)?;
        }
        self.num_rows += other.num_rows;
        Ok(())
    }

    /// Concatenate a batch sequence under one schema.
    pub fn concat(schema: &Schema, batches: &[VectorBatch]) -> Result<VectorBatch> {
        let mut out = VectorBatch::empty(schema)?;
        for b in batches {
            out.append(b)?;
        }
        Ok(out)
    }

    /// Concatenate the selected rows of `(batch, keep)` parts in one
    /// gather per column (see [`ColumnVector::concat_selected`]). A
    /// `None` keep-list takes the whole part. This is how the fused
    /// scan assembles morsel results: survivors of a compiled predicate
    /// are copied exactly once, instead of concatenating full morsels
    /// and filtering the result.
    pub fn concat_selected(
        schema: &Schema,
        parts: &[(VectorBatch, Option<Vec<u32>>)],
    ) -> Result<VectorBatch> {
        let ncols = schema.len();
        if parts.iter().any(|(b, _)| b.num_columns() != ncols) {
            return Err(HiveError::Execution(
                "batch arity mismatch in concat_selected".into(),
            ));
        }
        let total: usize = parts
            .iter()
            .map(|(b, sel)| sel.as_ref().map_or(b.num_rows(), |s| s.len()))
            .sum();
        let mut columns = Vec::with_capacity(ncols);
        for (ci, field) in schema.fields().iter().enumerate() {
            let col_parts: Vec<(&ColumnVector, Option<&[u32]>)> = parts
                .iter()
                .map(|(b, sel)| (b.column(ci), sel.as_deref()))
                .collect();
            columns.push(ColumnVector::concat_selected(&field.data_type, &col_parts)?);
        }
        VectorBatch::new_with_rows(schema.clone(), columns, total)
    }

    /// Approximate heap size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum()
    }

    /// Materialize every dictionary-encoded column (the late-
    /// materialization output boundary). Non-encoded columns pass
    /// through by handle, untouched.
    pub fn decode(self) -> VectorBatch {
        VectorBatch {
            schema: self.schema,
            columns: self
                .columns
                .into_iter()
                .map(|c| {
                    if c.is_dict() {
                        let owned = Arc::try_unwrap(c).unwrap_or_else(|a| (*a).clone());
                        Arc::new(owned.decode())
                    } else {
                        c
                    }
                })
                .collect(),
            num_rows: self.num_rows,
        }
    }

    /// True when any column is still dictionary-encoded.
    pub fn has_dict(&self) -> bool {
        self.columns.iter().any(|c| c.is_dict())
    }

    /// Split into sub-batches of at most `chunk` rows (used by scan and
    /// shuffle to keep pipeline batches bounded).
    pub fn split(&self, chunk: usize) -> Vec<VectorBatch> {
        if self.num_rows <= chunk {
            return vec![self.clone()];
        }
        let mut out = Vec::with_capacity(self.num_rows.div_ceil(chunk));
        let mut start = 0u32;
        while (start as usize) < self.num_rows {
            let end = ((start as usize + chunk).min(self.num_rows)) as u32;
            let idx: Vec<u32> = (start..end).collect();
            out.push(self.take(&idx));
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn sample_batch() -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::String),
            Field::new("price", DataType::Decimal(7, 2)),
        ]);
        let rows = vec![
            Row::new(vec![
                Value::Int(1),
                Value::String("a".into()),
                Value::Decimal(100, 2),
            ]),
            Row::new(vec![Value::Int(2), Value::Null, Value::Decimal(250, 2)]),
            Row::new(vec![Value::Int(3), Value::String("c".into()), Value::Null]),
        ];
        VectorBatch::from_rows(&schema, &rows).unwrap()
    }

    #[test]
    fn from_rows_round_trip() {
        let b = sample_batch();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.row(1).get(1), &Value::Null);
        assert_eq!(b.row(0).get(2), &Value::Decimal(100, 2));
        let rows = b.to_rows();
        let b2 = VectorBatch::from_rows(b.schema(), &rows).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn take_preserves_nulls() {
        let b = sample_batch();
        let t = b.take(&[2, 1]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0).get(0), &Value::Int(3));
        assert!(t.column(2).is_null(0));
        assert!(t.column(1).is_null(1));
    }

    #[test]
    fn append_merges_null_bitmaps() {
        let mut a = sample_batch();
        let b = sample_batch();
        a.append(&b).unwrap();
        assert_eq!(a.num_rows(), 6);
        assert!(a.column(1).is_null(1));
        assert!(a.column(1).is_null(4));
        assert_eq!(a.column(1).null_count(), 2);
    }

    #[test]
    fn builder_casts_values() {
        let mut b = ColumnBuilder::new(&DataType::BigInt).unwrap();
        b.push(&Value::Int(7)).unwrap();
        b.push(&Value::Null).unwrap();
        let c = b.finish();
        assert_eq!(c.get(0), Value::BigInt(7));
        assert!(c.is_null(1));
    }

    #[test]
    fn ragged_batches_rejected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let cols = vec![
            ColumnVector::Int(vec![1, 2], None),
            ColumnVector::Int(vec![1], None),
        ];
        assert!(VectorBatch::new(schema, cols).is_err());
    }

    #[test]
    fn split_bounds_batch_size() {
        let b = sample_batch();
        let parts = b.split(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].num_rows(), 2);
        assert_eq!(parts[1].num_rows(), 1);
        let whole = VectorBatch::concat(b.schema(), &parts).unwrap();
        assert_eq!(whole, b);
    }

    #[test]
    fn projection() {
        let b = sample_batch();
        let p = b.project(&[2, 0]);
        assert_eq!(p.schema().names(), vec!["price", "id"]);
        assert_eq!(p.row(0).get(1), &Value::Int(1));
    }

    #[test]
    fn concat_selected_matches_concat_then_take() {
        let b = sample_batch();
        let parts = vec![
            (b.clone(), Some(vec![2u32, 0])),
            (b.clone(), None),
            (b.clone(), Some(vec![1u32])),
        ];
        let got = VectorBatch::concat_selected(b.schema(), &parts).unwrap();
        // Reference: concatenate full parts, then gather the same rows
        // by global index.
        let full = VectorBatch::concat(b.schema(), &[b.clone(), b.clone(), b.clone()]).unwrap();
        let expected = full.take(&[2, 0, 3, 4, 5, 7]);
        assert_eq!(got, expected);
        // Null bitmap presence mirrors `append`: any part with a bitmap
        // yields a bitmap.
        assert!(got.column(1).is_null(3));
        assert!(got.column(1).is_null(5));
        assert_eq!(got.column(1).null_count(), 2);
    }

    #[test]
    fn concat_selected_merges_differing_dictionaries() {
        let schema = Schema::new(vec![Field::new("s", DataType::String)]);
        let d1 = ColumnVector::dict_from_codes(
            vec![0, 1, 0],
            Arc::new(vec!["x".to_string(), "y".to_string()]),
            None,
        )
        .unwrap();
        let mut nulls = BitSet::new(3);
        nulls.set(1);
        let d2 = ColumnVector::dict_from_codes(
            vec![1, 0, 1],
            Arc::new(vec!["z".to_string(), "y".to_string()]),
            Some(nulls),
        )
        .unwrap();
        let b1 = VectorBatch::new(schema.clone(), vec![d1]).unwrap();
        let b2 = VectorBatch::new(schema.clone(), vec![d2]).unwrap();
        let parts = vec![
            (b1.clone(), Some(vec![2u32, 1])),
            (b2.clone(), Some(vec![0u32, 1])),
        ];
        let got = VectorBatch::concat_selected(&schema, &parts).unwrap();
        let full = VectorBatch::concat(&schema, &[b1, b2]).unwrap();
        let expected = full.take(&[2, 1, 3, 4]);
        assert_eq!(got, expected);
        assert!(got.column(0).is_dict());
        assert!(got.column(0).is_null(3));
    }

    #[test]
    fn concat_selected_mixed_str_and_dict_falls_back() {
        let schema = Schema::new(vec![Field::new("s", DataType::String)]);
        let plain = ColumnVector::Str(vec!["p".to_string(), "q".to_string()], None);
        let dict = ColumnVector::dict_from_codes(
            vec![1, 0],
            Arc::new(vec!["x".to_string(), "y".to_string()]),
            None,
        )
        .unwrap();
        let b1 = VectorBatch::new(schema.clone(), vec![dict]).unwrap();
        let b2 = VectorBatch::new(schema.clone(), vec![plain]).unwrap();
        let parts = vec![(b1.clone(), None), (b2.clone(), Some(vec![1u32]))];
        let got = VectorBatch::concat_selected(&schema, &parts).unwrap();
        let full = VectorBatch::concat(&schema, &[b1, b2]).unwrap();
        let expected = full.take(&[0, 1, 3]);
        assert_eq!(got, expected);
    }

    #[test]
    fn concat_selected_empty_selections() {
        let b = sample_batch();
        let parts = vec![(b.clone(), Some(Vec::new())), (b.clone(), Some(Vec::new()))];
        let got = VectorBatch::concat_selected(b.schema(), &parts).unwrap();
        assert_eq!(got.num_rows(), 0);
        assert_eq!(got.num_columns(), 3);
    }

    fn dict_col() -> ColumnVector {
        let dict = Arc::new(vec!["a".to_string(), "b".to_string(), "c".to_string()]);
        let mut nulls = BitSet::new(5);
        nulls.set(3);
        ColumnVector::dict_from_codes(vec![0, 2, 1, 0, 2], dict, Some(nulls)).unwrap()
    }

    #[test]
    fn dict_get_and_decode() {
        let c = dict_col();
        assert_eq!(c.len(), 5);
        assert_eq!(c.data_type(), DataType::String);
        assert_eq!(c.get(1), Value::String("c".into()));
        assert_eq!(c.get(3), Value::Null);
        let decoded = c.clone().decode();
        assert!(matches!(decoded, ColumnVector::Str(..)));
        assert_eq!(decoded, c); // logical equality across representations
        for i in 0..5 {
            assert_eq!(decoded.get(i), c.get(i));
        }
    }

    #[test]
    fn dict_out_of_range_code_rejected() {
        let dict = Arc::new(vec!["a".to_string()]);
        let err = ColumnVector::dict_from_codes(vec![0, 1], dict, None).unwrap_err();
        assert!(matches!(err, HiveError::Format(_)), "got {err:?}");
    }

    #[test]
    fn dict_take_shares_dictionary() {
        let c = dict_col();
        let t = c.take(&[4, 3, 0]);
        let (codes, dict, nulls) = t.dict_parts().unwrap();
        assert_eq!(codes, &[2, 0, 0]);
        let (_, orig_dict, _) = c.dict_parts().unwrap();
        assert!(Arc::ptr_eq(dict, orig_dict));
        assert!(nulls.unwrap().get(1));
        assert_eq!(t.get(0), Value::String("c".into()));
    }

    #[test]
    fn dict_append_same_dictionary_extends_codes() {
        let mut a = dict_col();
        let b = dict_col();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 10);
        assert_eq!(a.null_count(), 2);
        let (codes, _, _) = a.dict_parts().unwrap();
        assert_eq!(codes.len(), 10);
        assert_eq!(a.get(6), Value::String("c".into()));
    }

    #[test]
    fn dict_append_merges_distinct_dictionaries() {
        let mut a = dict_col();
        let other_dict = Arc::new(vec!["x".to_string(), "b".to_string()]);
        let b = ColumnVector::dict_from_codes(vec![0, 1], other_dict, None).unwrap();
        a.append(&b).unwrap();
        assert_eq!(a.len(), 7);
        assert_eq!(a.get(5), Value::String("x".into()));
        assert_eq!(a.get(6), Value::String("b".into()));
        let (_, dict, _) = a.dict_parts().unwrap();
        // "b" interned once, "x" appended.
        assert_eq!(**dict, vec!["a", "b", "c", "x"]);
    }

    #[test]
    fn empty_str_adopts_dict_on_append() {
        let mut a = ColumnVector::new_empty(&DataType::String).unwrap();
        a.append(&dict_col()).unwrap();
        assert!(a.is_dict());
        assert_eq!(a.len(), 5);
        // And the reverse: appending Dict onto non-empty Str decodes.
        let mut s = ColumnVector::Str(vec!["z".to_string()], None);
        s.append(&dict_col()).unwrap();
        assert!(!s.is_dict());
        assert_eq!(s.len(), 6);
        assert_eq!(s.get(1), Value::String("a".into()));
        assert!(s.is_null(4));
    }

    #[test]
    fn dict_str_logical_equality() {
        let c = dict_col();
        let s = c.clone().decode();
        assert_eq!(c, s);
        assert_eq!(s, c);
        let mut other = dict_col();
        other.append(&dict_col()).unwrap();
        assert_ne!(c, other);
    }

    #[test]
    fn batch_decode_materializes_dict_columns() {
        let schema = Schema::new(vec![
            Field::new("k", DataType::String),
            Field::new("v", DataType::Int),
        ]);
        let b = VectorBatch::new(
            schema,
            vec![dict_col(), ColumnVector::Int(vec![1, 2, 3, 4, 5], None)],
        )
        .unwrap();
        assert!(b.has_dict());
        let rows = b.to_rows();
        let d = b.clone().decode();
        assert!(!d.has_dict());
        assert_eq!(d.to_rows(), rows);
        assert_eq!(d, b);
    }
}
