//! Columnar, vectorized data representation.
//!
//! A [`VectorBatch`] is the unit of data flow in the vectorized engine
//! (the paper's Section 5: operators "run directly on the internal
//! format"). Each column is a typed [`ColumnVector`] with an optional
//! null bitmap. Filters produce index lists which are applied with
//! [`VectorBatch::take`], keeping kernels column-at-a-time.

use crate::bitset::BitSet;
use crate::error::{HiveError, Result};
use crate::row::Row;
use crate::schema::Schema;
use crate::types::DataType;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Default number of rows per vectorized batch.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// A typed column of values with an optional null bitmap
/// (bit set = value is NULL).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnVector {
    Boolean(Vec<bool>, Option<BitSet>),
    Int(Vec<i32>, Option<BitSet>),
    BigInt(Vec<i64>, Option<BitSet>),
    Double(Vec<f64>, Option<BitSet>),
    /// Unscaled values plus a shared scale.
    Decimal(Vec<i128>, u8, Option<BitSet>),
    Str(Vec<String>, Option<BitSet>),
    Date(Vec<i32>, Option<BitSet>),
    Timestamp(Vec<i64>, Option<BitSet>),
}

macro_rules! per_variant {
    ($self:expr, $v:ident, $n:ident => $body:expr) => {
        match $self {
            ColumnVector::Boolean($v, $n) => $body,
            ColumnVector::Int($v, $n) => $body,
            ColumnVector::BigInt($v, $n) => $body,
            ColumnVector::Double($v, $n) => $body,
            ColumnVector::Decimal($v, _, $n) => $body,
            ColumnVector::Str($v, $n) => $body,
            ColumnVector::Date($v, $n) => $body,
            ColumnVector::Timestamp($v, $n) => $body,
        }
    };
}

impl ColumnVector {
    /// Number of rows in the column.
    pub fn len(&self) -> usize {
        per_variant!(self, v, _n => v.len())
    }

    /// True for zero rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's data type.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnVector::Boolean(..) => DataType::Boolean,
            ColumnVector::Int(..) => DataType::Int,
            ColumnVector::BigInt(..) => DataType::BigInt,
            ColumnVector::Double(..) => DataType::Double,
            ColumnVector::Decimal(_, s, _) => DataType::Decimal(38, *s),
            ColumnVector::Str(..) => DataType::String,
            ColumnVector::Date(..) => DataType::Date,
            ColumnVector::Timestamp(..) => DataType::Timestamp,
        }
    }

    /// True if row `i` is NULL.
    #[inline]
    pub fn is_null(&self, i: usize) -> bool {
        per_variant!(self, _v, n => n.as_ref().map_or(false, |b| b.get(i)))
    }

    /// Number of NULL rows.
    pub fn null_count(&self) -> usize {
        per_variant!(self, _v, n => n.as_ref().map_or(0, |b| b.count_ones()))
    }

    /// The value at row `i` as a scalar [`Value`].
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match self {
            ColumnVector::Boolean(v, _) => Value::Boolean(v[i]),
            ColumnVector::Int(v, _) => Value::Int(v[i]),
            ColumnVector::BigInt(v, _) => Value::BigInt(v[i]),
            ColumnVector::Double(v, _) => Value::Double(v[i]),
            ColumnVector::Decimal(v, s, _) => Value::Decimal(v[i], *s),
            ColumnVector::Str(v, _) => Value::String(v[i].clone()),
            ColumnVector::Date(v, _) => Value::Date(v[i]),
            ColumnVector::Timestamp(v, _) => Value::Timestamp(v[i]),
        }
    }

    /// Build an empty column of the given type. Decimal uses the type's
    /// scale; non-atomic types are rejected.
    pub fn new_empty(dt: &DataType) -> Result<ColumnVector> {
        Ok(match dt {
            DataType::Boolean => ColumnVector::Boolean(Vec::new(), None),
            DataType::Int => ColumnVector::Int(Vec::new(), None),
            DataType::BigInt => ColumnVector::BigInt(Vec::new(), None),
            DataType::Double => ColumnVector::Double(Vec::new(), None),
            DataType::Decimal(_, s) => ColumnVector::Decimal(Vec::new(), *s, None),
            DataType::String => ColumnVector::Str(Vec::new(), None),
            DataType::Date => ColumnVector::Date(Vec::new(), None),
            DataType::Timestamp => ColumnVector::Timestamp(Vec::new(), None),
            DataType::Null => ColumnVector::Str(Vec::new(), None),
            t => {
                return Err(HiveError::Execution(format!(
                    "non-atomic type {t} cannot be vectorized"
                )))
            }
        })
    }

    /// Build a column of type `dt` from scalar values, casting as needed.
    pub fn from_values(values: &[Value], dt: &DataType) -> Result<ColumnVector> {
        let mut b = ColumnBuilder::new(dt)?;
        for v in values {
            b.push(v)?;
        }
        Ok(b.finish())
    }

    /// Gather rows at `indices` into a new column.
    pub fn take(&self, indices: &[u32]) -> ColumnVector {
        fn gather<T: Clone>(
            v: &[T],
            n: &Option<BitSet>,
            idx: &[u32],
        ) -> (Vec<T>, Option<BitSet>) {
            let out: Vec<T> = idx.iter().map(|&i| v[i as usize].clone()).collect();
            let nulls = n.as_ref().map(|b| {
                let mut nb = BitSet::new(idx.len());
                for (o, &i) in idx.iter().enumerate() {
                    if b.get(i as usize) {
                        nb.set(o);
                    }
                }
                nb
            });
            (out, nulls)
        }
        match self {
            ColumnVector::Boolean(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Boolean(v, n)
            }
            ColumnVector::Int(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Int(v, n)
            }
            ColumnVector::BigInt(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::BigInt(v, n)
            }
            ColumnVector::Double(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Double(v, n)
            }
            ColumnVector::Decimal(v, s, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Decimal(v, *s, n)
            }
            ColumnVector::Str(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Str(v, n)
            }
            ColumnVector::Date(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Date(v, n)
            }
            ColumnVector::Timestamp(v, n) => {
                let (v, n) = gather(v, n, indices);
                ColumnVector::Timestamp(v, n)
            }
        }
    }

    /// Append all rows of `other` (must be the same variant).
    pub fn append(&mut self, other: &ColumnVector) -> Result<()> {
        fn merge_nulls(
            a_len: usize,
            a: &mut Option<BitSet>,
            b_len: usize,
            b: &Option<BitSet>,
        ) {
            if a.is_none() && b.is_none() {
                return;
            }
            let total = a_len + b_len;
            let mut nb = BitSet::new(total);
            if let Some(ab) = a.as_ref() {
                for i in ab.iter_ones() {
                    nb.set(i);
                }
            }
            if let Some(bb) = b.as_ref() {
                for i in bb.iter_ones() {
                    nb.set(a_len + i);
                }
            }
            *a = Some(nb);
        }
        macro_rules! app {
            ($av:expr, $an:expr, $bv:expr, $bn:expr) => {{
                let alen = $av.len();
                $av.extend_from_slice($bv);
                merge_nulls(alen, $an, $bv.len(), $bn);
                Ok(())
            }};
        }
        match (self, other) {
            (ColumnVector::Boolean(av, an), ColumnVector::Boolean(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Int(av, an), ColumnVector::Int(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::BigInt(av, an), ColumnVector::BigInt(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Double(av, an), ColumnVector::Double(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Decimal(av, s1, an), ColumnVector::Decimal(bv, s2, bn))
                if s1 == s2 =>
            {
                app!(av, an, bv, bn)
            }
            (ColumnVector::Str(av, an), ColumnVector::Str(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Date(av, an), ColumnVector::Date(bv, bn)) => app!(av, an, bv, bn),
            (ColumnVector::Timestamp(av, an), ColumnVector::Timestamp(bv, bn)) => {
                app!(av, an, bv, bn)
            }
            (a, b) => Err(HiveError::Execution(format!(
                "cannot append column of type {} to {}",
                b.data_type(),
                a.data_type()
            ))),
        }
    }

    /// Approximate heap size in bytes, used by cache/cost accounting.
    pub fn approx_bytes(&self) -> usize {
        let base = match self {
            ColumnVector::Boolean(v, _) => v.len(),
            ColumnVector::Int(v, _) | ColumnVector::Date(v, _) => v.len() * 4,
            ColumnVector::BigInt(v, _) | ColumnVector::Timestamp(v, _) => v.len() * 8,
            ColumnVector::Double(v, _) => v.len() * 8,
            ColumnVector::Decimal(v, _, _) => v.len() * 16,
            ColumnVector::Str(v, _) => v.iter().map(|s| s.len() + 24).sum(),
        };
        base + self.len() / 8
    }
}

/// Incremental builder for a [`ColumnVector`].
#[derive(Debug)]
pub struct ColumnBuilder {
    col: ColumnVector,
    nulls: Vec<usize>,
    len: usize,
    dt: DataType,
}

impl ColumnBuilder {
    /// Start building a column of type `dt`.
    pub fn new(dt: &DataType) -> Result<Self> {
        Ok(ColumnBuilder {
            col: ColumnVector::new_empty(dt)?,
            nulls: Vec::new(),
            len: 0,
            dt: dt.clone(),
        })
    }

    /// Append a value, casting to the column type. NULL is always accepted.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        if v.is_null() {
            self.nulls.push(self.len);
            self.push_default();
        } else {
            let cast = if v.data_type() == self.dt {
                v.clone()
            } else {
                v.cast_to(&self.dt)?
            };
            if cast.is_null() {
                // Lenient cast produced NULL.
                self.nulls.push(self.len);
                self.push_default();
            } else {
                self.push_nonnull(&cast)?;
            }
        }
        self.len += 1;
        Ok(())
    }

    fn push_default(&mut self) {
        match &mut self.col {
            ColumnVector::Boolean(v, _) => v.push(false),
            ColumnVector::Int(v, _) => v.push(0),
            ColumnVector::BigInt(v, _) => v.push(0),
            ColumnVector::Double(v, _) => v.push(0.0),
            ColumnVector::Decimal(v, _, _) => v.push(0),
            ColumnVector::Str(v, _) => v.push(String::new()),
            ColumnVector::Date(v, _) => v.push(0),
            ColumnVector::Timestamp(v, _) => v.push(0),
        }
    }

    fn push_nonnull(&mut self, v: &Value) -> Result<()> {
        match (&mut self.col, v) {
            (ColumnVector::Boolean(c, _), Value::Boolean(x)) => c.push(*x),
            (ColumnVector::Int(c, _), Value::Int(x)) => c.push(*x),
            (ColumnVector::BigInt(c, _), Value::BigInt(x)) => c.push(*x),
            (ColumnVector::Double(c, _), Value::Double(x)) => c.push(*x),
            (ColumnVector::Decimal(c, _, _), Value::Decimal(x, _)) => c.push(*x),
            (ColumnVector::Str(c, _), Value::String(x)) => c.push(x.clone()),
            (ColumnVector::Date(c, _), Value::Date(x)) => c.push(*x),
            (ColumnVector::Timestamp(c, _), Value::Timestamp(x)) => c.push(*x),
            (c, v) => {
                return Err(HiveError::Execution(format!(
                    "type mismatch pushing {} into {} column",
                    v.data_type(),
                    c.data_type()
                )))
            }
        }
        Ok(())
    }

    /// Finish and return the built column.
    pub fn finish(self) -> ColumnVector {
        let mut col = self.col;
        if !self.nulls.is_empty() {
            let mut b = BitSet::new(self.len);
            for i in self.nulls {
                b.set(i);
            }
            per_variant!(&mut col, _v, n => *n = Some(b));
        }
        col
    }
}

/// A batch of rows in columnar form, with its schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VectorBatch {
    schema: Schema,
    columns: Vec<ColumnVector>,
    num_rows: usize,
}

impl VectorBatch {
    /// Build a batch with an explicit row count — required for
    /// zero-column batches (`SELECT COUNT(*)` plans prune every column
    /// but rows still flow).
    pub fn new_with_rows(
        schema: Schema,
        columns: Vec<ColumnVector>,
        num_rows: usize,
    ) -> Result<Self> {
        if columns.iter().any(|c| c.len() != num_rows) {
            return Err(HiveError::Execution("ragged column lengths".into()));
        }
        if columns.len() != schema.len() {
            return Err(HiveError::Execution(format!(
                "schema has {} fields but {} columns given",
                schema.len(),
                columns.len()
            )));
        }
        Ok(VectorBatch {
            schema,
            columns,
            num_rows,
        })
    }

    /// Build a batch; all columns must share one length.
    pub fn new(schema: Schema, columns: Vec<ColumnVector>) -> Result<Self> {
        let num_rows = columns.first().map_or(0, |c| c.len());
        if columns.iter().any(|c| c.len() != num_rows) {
            return Err(HiveError::Execution("ragged column lengths".into()));
        }
        if columns.len() != schema.len() {
            return Err(HiveError::Execution(format!(
                "schema has {} fields but {} columns given",
                schema.len(),
                columns.len()
            )));
        }
        Ok(VectorBatch {
            schema,
            columns,
            num_rows,
        })
    }

    /// An empty batch with the given schema.
    pub fn empty(schema: &Schema) -> Result<Self> {
        let columns = schema
            .fields()
            .iter()
            .map(|f| ColumnVector::new_empty(&f.data_type))
            .collect::<Result<Vec<_>>>()?;
        VectorBatch::new(schema.clone(), columns)
    }

    /// Convert row-oriented data into a batch, casting to the schema types.
    pub fn from_rows(schema: &Schema, rows: &[Row]) -> Result<Self> {
        let mut builders = schema
            .fields()
            .iter()
            .map(|f| ColumnBuilder::new(&f.data_type))
            .collect::<Result<Vec<_>>>()?;
        for r in rows {
            if r.len() != schema.len() {
                return Err(HiveError::Execution(format!(
                    "row arity {} does not match schema arity {}",
                    r.len(),
                    schema.len()
                )));
            }
            for (b, v) in builders.iter_mut().zip(r.values()) {
                b.push(v)?;
            }
        }
        VectorBatch::new_with_rows(
            schema.clone(),
            builders.into_iter().map(|b| b.finish()).collect(),
            rows.len(),
        )
    }

    /// The batch schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// True for zero rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows == 0
    }

    /// Column at position `i`.
    pub fn column(&self, i: usize) -> &ColumnVector {
        &self.columns[i]
    }

    /// All columns.
    pub fn columns(&self) -> &[ColumnVector] {
        &self.columns
    }

    /// Row `i` as a scalar row (allocates; edge use only).
    pub fn row(&self, i: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(i)).collect())
    }

    /// All rows (allocates; edge use only).
    pub fn to_rows(&self) -> Vec<Row> {
        (0..self.num_rows).map(|i| self.row(i)).collect()
    }

    /// Gather the rows at `indices` into a new batch.
    pub fn take(&self, indices: &[u32]) -> VectorBatch {
        VectorBatch {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.take(indices)).collect(),
            num_rows: indices.len(),
        }
    }

    /// Keep only the columns at `indices` (projection).
    pub fn project(&self, indices: &[usize]) -> VectorBatch {
        VectorBatch {
            schema: self.schema.project(indices),
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            num_rows: self.num_rows,
        }
    }

    /// Append all rows of `other` (schemas' types must match).
    pub fn append(&mut self, other: &VectorBatch) -> Result<()> {
        if self.num_columns() != other.num_columns() {
            return Err(HiveError::Execution("batch arity mismatch in append".into()));
        }
        for (a, b) in self.columns.iter_mut().zip(other.columns()) {
            a.append(b)?;
        }
        self.num_rows += other.num_rows;
        Ok(())
    }

    /// Concatenate a batch sequence under one schema.
    pub fn concat(schema: &Schema, batches: &[VectorBatch]) -> Result<VectorBatch> {
        let mut out = VectorBatch::empty(schema)?;
        for b in batches {
            out.append(b)?;
        }
        Ok(out)
    }

    /// Approximate heap size in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.approx_bytes()).sum()
    }

    /// Split into sub-batches of at most `chunk` rows (used by scan and
    /// shuffle to keep pipeline batches bounded).
    pub fn split(&self, chunk: usize) -> Vec<VectorBatch> {
        if self.num_rows <= chunk {
            return vec![self.clone()];
        }
        let mut out = Vec::with_capacity(self.num_rows.div_ceil(chunk));
        let mut start = 0u32;
        while (start as usize) < self.num_rows {
            let end = ((start as usize + chunk).min(self.num_rows)) as u32;
            let idx: Vec<u32> = (start..end).collect();
            out.push(self.take(&idx));
            start = end;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Field;

    fn sample_batch() -> VectorBatch {
        let schema = Schema::new(vec![
            Field::new("id", DataType::Int),
            Field::new("name", DataType::String),
            Field::new("price", DataType::Decimal(7, 2)),
        ]);
        let rows = vec![
            Row::new(vec![
                Value::Int(1),
                Value::String("a".into()),
                Value::Decimal(100, 2),
            ]),
            Row::new(vec![Value::Int(2), Value::Null, Value::Decimal(250, 2)]),
            Row::new(vec![
                Value::Int(3),
                Value::String("c".into()),
                Value::Null,
            ]),
        ];
        VectorBatch::from_rows(&schema, &rows).unwrap()
    }

    #[test]
    fn from_rows_round_trip() {
        let b = sample_batch();
        assert_eq!(b.num_rows(), 3);
        assert_eq!(b.row(1).get(1), &Value::Null);
        assert_eq!(b.row(0).get(2), &Value::Decimal(100, 2));
        let rows = b.to_rows();
        let b2 = VectorBatch::from_rows(b.schema(), &rows).unwrap();
        assert_eq!(b, b2);
    }

    #[test]
    fn take_preserves_nulls() {
        let b = sample_batch();
        let t = b.take(&[2, 1]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0).get(0), &Value::Int(3));
        assert!(t.column(2).is_null(0));
        assert!(t.column(1).is_null(1));
    }

    #[test]
    fn append_merges_null_bitmaps() {
        let mut a = sample_batch();
        let b = sample_batch();
        a.append(&b).unwrap();
        assert_eq!(a.num_rows(), 6);
        assert!(a.column(1).is_null(1));
        assert!(a.column(1).is_null(4));
        assert_eq!(a.column(1).null_count(), 2);
    }

    #[test]
    fn builder_casts_values() {
        let mut b = ColumnBuilder::new(&DataType::BigInt).unwrap();
        b.push(&Value::Int(7)).unwrap();
        b.push(&Value::Null).unwrap();
        let c = b.finish();
        assert_eq!(c.get(0), Value::BigInt(7));
        assert!(c.is_null(1));
    }

    #[test]
    fn ragged_batches_rejected() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let cols = vec![
            ColumnVector::Int(vec![1, 2], None),
            ColumnVector::Int(vec![1], None),
        ];
        assert!(VectorBatch::new(schema, cols).is_err());
    }

    #[test]
    fn split_bounds_batch_size() {
        let b = sample_batch();
        let parts = b.split(2);
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].num_rows(), 2);
        assert_eq!(parts[1].num_rows(), 1);
        let whole = VectorBatch::concat(b.schema(), &parts).unwrap();
        assert_eq!(whole, b);
    }

    #[test]
    fn projection() {
        let b = sample_batch();
        let p = b.project(&[2, 0]);
        assert_eq!(p.schema().names(), vec!["price", "id"]);
        assert_eq!(p.row(0).get(1), &Value::Int(1));
    }
}
