//! Property-based tests over the shared substrate: value arithmetic,
//! decimal codecs, calendar math, LIKE matching, bitsets, and the
//! columnar batch round trip.

use hive_common::{dates, like, value, BitSet, DataType, Field, Row, Schema, Value, VectorBatch};
use proptest::prelude::*;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Boolean),
        any::<i32>().prop_map(Value::Int),
        any::<i64>().prop_map(Value::BigInt),
        (-1.0e12f64..1.0e12).prop_map(Value::Double),
        (-1_000_000_000i64..1_000_000_000, 0u8..6).prop_map(|(u, s)| Value::Decimal(u as i128, s)),
        "[a-zA-Z0-9 _-]{0,24}".prop_map(Value::String),
        (-100_000i32..100_000).prop_map(Value::Date),
        (-3_000_000_000_000i64..3_000_000_000_000).prop_map(|v| Value::Timestamp(v * 1000)),
    ]
}

proptest! {
    #[test]
    fn decimal_format_parse_round_trip(unscaled in -10_000_000_000i128..10_000_000_000, scale in 0u8..9) {
        let text = value::format_decimal(unscaled, scale);
        let back = value::parse_decimal(&text, scale);
        prop_assert_eq!(back, Some(unscaled));
    }

    #[test]
    fn rescale_up_then_down_is_identity(unscaled in -1_000_000i128..1_000_000, s in 0u8..6, extra in 1u8..6) {
        let up = value::rescale(unscaled, s, s + extra);
        let down = value::rescale(up, s + extra, s);
        prop_assert_eq!(down, unscaled);
    }

    #[test]
    fn civil_round_trip(days in -1_000_000i32..1_000_000) {
        let (y, m, d) = dates::days_to_civil(days);
        prop_assert_eq!(dates::civil_to_days(y, m, d), days);
        prop_assert!((1..=12).contains(&m));
        prop_assert!((1..=31).contains(&d));
    }

    #[test]
    fn date_format_parse_round_trip(days in -500_000i32..500_000) {
        let text = dates::format_date(days);
        prop_assert_eq!(dates::parse_date(&text), Some(days));
    }

    #[test]
    fn timestamp_format_parse_round_trip(micros in -40_000_000_000_000i64..40_000_000_000_000) {
        let text = dates::format_timestamp(micros);
        prop_assert_eq!(dates::parse_timestamp(&text), Some(micros));
    }

    #[test]
    fn add_months_inverse(days in -200_000i32..200_000, months in -240i32..240) {
        // Moving forward then back lands within the clamped day range.
        let fwd = dates::add_months(days, months);
        let back = dates::add_months(fwd, -months);
        let (y0, m0, _) = dates::days_to_civil(days);
        let (y1, m1, _) = dates::days_to_civil(back);
        prop_assert_eq!((y0, m0), (y1, m1));
    }

    #[test]
    fn like_literal_patterns_match_themselves(s in "[a-z0-9]{0,16}") {
        prop_assert!(like::like_match(&s, &s));
        prop_assert!(like::like_match(&s, "%"));
        let suffix_pat = format!("%{s}");
        let prefix_pat = format!("{s}%");
        prop_assert!(like::like_match(&s, &suffix_pat));
        prop_assert!(like::like_match(&s, &prefix_pat));
    }

    #[test]
    fn like_prefix_suffix_semantics(a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
        let text = format!("{a}{b}");
        let p1 = format!("{a}%");
        let p2 = format!("%{b}");
        let p3 = format!("{a}%{b}");
        prop_assert!(like::like_match(&text, &p1));
        prop_assert!(like::like_match(&text, &p2));
        prop_assert!(like::like_match(&text, &p3));
    }

    #[test]
    fn bitset_matches_vec_bool(bits in proptest::collection::vec(any::<bool>(), 1..300)) {
        let mut bs = BitSet::new(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            if b {
                bs.set(i);
            }
        }
        prop_assert_eq!(bs.count_ones(), bits.iter().filter(|&&b| b).count());
        for (i, &b) in bits.iter().enumerate() {
            prop_assert_eq!(bs.get(i), b);
        }
        let ones: Vec<usize> = bs.iter_ones().collect();
        let expect: Vec<usize> = bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(ones, expect);
        let mut neg = bs.clone();
        neg.negate();
        prop_assert_eq!(neg.count_ones(), bits.len() - bs.count_ones());
    }

    #[test]
    fn sql_cmp_is_antisymmetric(a in arb_value(), b in arb_value()) {
        if let (Some(x), Some(y)) = (a.sql_cmp(&b), b.sql_cmp(&a)) {
            prop_assert_eq!(x, y.reverse());
        }
        // NULL never compares.
        prop_assert_eq!(Value::Null.sql_cmp(&a), None);
    }

    #[test]
    fn add_sub_round_trip_ints(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        let x = Value::BigInt(a);
        let y = Value::BigInt(b);
        let sum = x.add(&y).unwrap();
        let back = sum.sub(&y).unwrap();
        prop_assert_eq!(back, x);
    }

    #[test]
    fn batch_row_round_trip(rows in proptest::collection::vec(
        (any::<Option<i32>>(), "[a-z]{0,8}", any::<Option<i64>>()), 0..50)) {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::String),
            Field::new("c", DataType::BigInt),
        ]);
        let rows: Vec<Row> = rows
            .into_iter()
            .map(|(a, b, c)| {
                Row::new(vec![
                    a.map(Value::Int).unwrap_or(Value::Null),
                    Value::String(b),
                    c.map(Value::BigInt).unwrap_or(Value::Null),
                ])
            })
            .collect();
        let batch = VectorBatch::from_rows(&schema, &rows).unwrap();
        prop_assert_eq!(batch.num_rows(), rows.len());
        prop_assert_eq!(batch.to_rows(), rows.clone());
        // take() of every index is identity.
        let idx: Vec<u32> = (0..rows.len() as u32).collect();
        prop_assert_eq!(batch.take(&idx), batch.clone());
        // split+concat is identity.
        let parts = batch.split(7);
        let merged = VectorBatch::concat(batch.schema(), &parts).unwrap();
        prop_assert_eq!(merged, batch);
    }
}
