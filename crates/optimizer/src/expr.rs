//! Resolved, typed scalar expressions over positional column indexes.
//!
//! The analyzer lowers AST expressions ([`hive_sql::Expr`]) into this
//! form; the execution engine evaluates them vectorized. Every
//! expression can report its output type against an input schema, and
//! the analyzer inserts explicit casts so operand types always align.

use hive_common::dates::DateField;
use hive_common::{DataType, HiveError, Result, Schema, Value};
use hive_sql::BinaryOp;
use std::fmt;

/// A scalar expression over the input relation's columns (by index).
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Input column at index.
    Column(usize),
    Literal(Value),
    Binary {
        op: BinaryOp,
        left: Box<ScalarExpr>,
        right: Box<ScalarExpr>,
    },
    Not(Box<ScalarExpr>),
    Negate(Box<ScalarExpr>),
    IsNull {
        expr: Box<ScalarExpr>,
        negated: bool,
    },
    Like {
        expr: Box<ScalarExpr>,
        pattern: Box<ScalarExpr>,
        negated: bool,
    },
    InList {
        expr: Box<ScalarExpr>,
        list: Vec<ScalarExpr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<ScalarExpr>>,
        branches: Vec<(ScalarExpr, ScalarExpr)>,
        else_expr: Option<Box<ScalarExpr>>,
    },
    Cast {
        expr: Box<ScalarExpr>,
        to: DataType,
    },
    Extract {
        field: DateField,
        expr: Box<ScalarExpr>,
    },
    Func {
        func: BuiltinFunc,
        args: Vec<ScalarExpr>,
    },
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinFunc {
    Substr,
    Upper,
    Lower,
    Length,
    Trim,
    Concat,
    Abs,
    Round,
    Floor,
    Ceil,
    Sqrt,
    Power,
    Coalesce,
    /// `date_add(date, days)`
    DateAdd,
    /// `date_sub(date, days)`
    DateSub,
    /// `add_months(date, n)`
    AddMonths,
    /// `year(d)`, kept for Hive-style function syntax.
    Year,
    Month,
    Day,
    Quarter,
    DayOfWeek,
    /// `trunc(date, 'MM'|'YYYY')` — month/year truncation.
    TruncMonth,
    TruncYear,
    /// `if(cond, a, b)`
    If,
    /// `nvl(a, b)`
    Nvl,
    /// Deterministic hash — for bucketing tests.
    Hash64,
    /// Non-deterministic: random(). Disqualifies results caching (§4.3).
    Rand,
    /// Runtime-constant: current_date. Disqualifies results caching.
    CurrentDate,
    /// Runtime-constant: current_timestamp.
    CurrentTimestamp,
}

impl BuiltinFunc {
    /// Resolve a function name from SQL.
    pub fn from_name(name: &str) -> Option<BuiltinFunc> {
        Some(match name {
            "substr" | "substring" => BuiltinFunc::Substr,
            "upper" | "ucase" => BuiltinFunc::Upper,
            "lower" | "lcase" => BuiltinFunc::Lower,
            "length" => BuiltinFunc::Length,
            "trim" => BuiltinFunc::Trim,
            "concat" => BuiltinFunc::Concat,
            "abs" => BuiltinFunc::Abs,
            "round" => BuiltinFunc::Round,
            "floor" => BuiltinFunc::Floor,
            "ceil" | "ceiling" => BuiltinFunc::Ceil,
            "sqrt" => BuiltinFunc::Sqrt,
            "power" | "pow" => BuiltinFunc::Power,
            "coalesce" => BuiltinFunc::Coalesce,
            "date_add" => BuiltinFunc::DateAdd,
            "date_sub" => BuiltinFunc::DateSub,
            "add_months" => BuiltinFunc::AddMonths,
            "year" => BuiltinFunc::Year,
            "month" => BuiltinFunc::Month,
            "day" | "dayofmonth" => BuiltinFunc::Day,
            "quarter" => BuiltinFunc::Quarter,
            "dayofweek" => BuiltinFunc::DayOfWeek,
            "if" => BuiltinFunc::If,
            "nvl" => BuiltinFunc::Nvl,
            "hash64" => BuiltinFunc::Hash64,
            "rand" | "random" => BuiltinFunc::Rand,
            "current_date" => BuiltinFunc::CurrentDate,
            "current_timestamp" | "now" => BuiltinFunc::CurrentTimestamp,
            _ => return None,
        })
    }

    /// Functions whose results cannot be cached (§4.3: "the query cannot
    /// contain non-deterministic functions (rand), runtime constant
    /// functions (current_date, current_timestamp)").
    pub fn disqualifies_cache(&self) -> bool {
        matches!(
            self,
            BuiltinFunc::Rand | BuiltinFunc::CurrentDate | BuiltinFunc::CurrentTimestamp
        )
    }
}

impl ScalarExpr {
    /// Output type against an input schema.
    pub fn data_type(&self, input: &Schema) -> Result<DataType> {
        Ok(match self {
            ScalarExpr::Column(i) => {
                if *i >= input.len() {
                    return Err(HiveError::Plan(format!(
                        "column index {i} out of bounds for schema of {} cols",
                        input.len()
                    )));
                }
                input.field(*i).data_type.clone()
            }
            ScalarExpr::Literal(v) => v.data_type(),
            ScalarExpr::Binary { op, left, right } => {
                if op.is_comparison() || matches!(op, BinaryOp::And | BinaryOp::Or) {
                    DataType::Boolean
                } else {
                    let lt = left.data_type(input)?;
                    let rt = right.data_type(input)?;
                    match op {
                        BinaryOp::Divide => DataType::Double,
                        _ => DataType::arithmetic_result(&lt, &rt).ok_or_else(|| {
                            HiveError::Plan(format!("no arithmetic type for {lt} {op} {rt}"))
                        })?,
                    }
                }
            }
            ScalarExpr::Not(_)
            | ScalarExpr::IsNull { .. }
            | ScalarExpr::Like { .. }
            | ScalarExpr::InList { .. } => DataType::Boolean,
            ScalarExpr::Negate(e) => e.data_type(input)?,
            ScalarExpr::Case {
                branches,
                else_expr,
                ..
            } => {
                let mut ty = DataType::Null;
                for (_, r) in branches {
                    let t = r.data_type(input)?;
                    ty = DataType::common_supertype(&ty, &t).unwrap_or(t);
                }
                if let Some(e) = else_expr {
                    let t = e.data_type(input)?;
                    ty = DataType::common_supertype(&ty, &t).unwrap_or(t);
                }
                if ty == DataType::Null {
                    DataType::String
                } else {
                    ty
                }
            }
            ScalarExpr::Cast { to, .. } => to.clone(),
            ScalarExpr::Extract { .. } => DataType::BigInt,
            ScalarExpr::Func { func, args } => match func {
                BuiltinFunc::Substr
                | BuiltinFunc::Upper
                | BuiltinFunc::Lower
                | BuiltinFunc::Trim
                | BuiltinFunc::Concat => DataType::String,
                BuiltinFunc::Length => DataType::BigInt,
                BuiltinFunc::Abs | BuiltinFunc::Round => args
                    .first()
                    .map(|a| a.data_type(input))
                    .transpose()?
                    .unwrap_or(DataType::Double),
                BuiltinFunc::Floor | BuiltinFunc::Ceil => DataType::BigInt,
                BuiltinFunc::Sqrt | BuiltinFunc::Power | BuiltinFunc::Rand => DataType::Double,
                BuiltinFunc::Coalesce | BuiltinFunc::Nvl | BuiltinFunc::If => {
                    let mut ty = DataType::Null;
                    let rel = if *func == BuiltinFunc::If {
                        &args[1..]
                    } else {
                        &args[..]
                    };
                    for a in rel {
                        let t = a.data_type(input)?;
                        ty = DataType::common_supertype(&ty, &t).unwrap_or(t);
                    }
                    ty
                }
                BuiltinFunc::DateAdd
                | BuiltinFunc::DateSub
                | BuiltinFunc::AddMonths
                | BuiltinFunc::TruncMonth
                | BuiltinFunc::TruncYear => DataType::Date,
                BuiltinFunc::Year
                | BuiltinFunc::Month
                | BuiltinFunc::Day
                | BuiltinFunc::Quarter
                | BuiltinFunc::DayOfWeek
                | BuiltinFunc::Hash64 => DataType::BigInt,
                BuiltinFunc::CurrentDate => DataType::Date,
                BuiltinFunc::CurrentTimestamp => DataType::Timestamp,
            },
        })
    }

    /// Visit all nodes.
    pub fn visit(&self, f: &mut impl FnMut(&ScalarExpr)) {
        f(self);
        match self {
            ScalarExpr::Binary { left, right, .. } => {
                left.visit(f);
                right.visit(f);
            }
            ScalarExpr::Not(e) | ScalarExpr::Negate(e) => e.visit(f),
            ScalarExpr::IsNull { expr, .. } => expr.visit(f),
            ScalarExpr::Like { expr, pattern, .. } => {
                expr.visit(f);
                pattern.visit(f);
            }
            ScalarExpr::InList { expr, list, .. } => {
                expr.visit(f);
                for e in list {
                    e.visit(f);
                }
            }
            ScalarExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                if let Some(o) = operand {
                    o.visit(f);
                }
                for (c, r) in branches {
                    c.visit(f);
                    r.visit(f);
                }
                if let Some(e) = else_expr {
                    e.visit(f);
                }
            }
            ScalarExpr::Cast { expr, .. } | ScalarExpr::Extract { expr, .. } => expr.visit(f),
            ScalarExpr::Func { args, .. } => {
                for a in args {
                    a.visit(f);
                }
            }
            ScalarExpr::Column(_) | ScalarExpr::Literal(_) => {}
        }
    }

    /// Rewrite the tree bottom-up.
    pub fn transform(self, f: &mut impl FnMut(ScalarExpr) -> ScalarExpr) -> ScalarExpr {
        let rebuilt = match self {
            ScalarExpr::Binary { op, left, right } => ScalarExpr::Binary {
                op,
                left: Box::new(left.transform(f)),
                right: Box::new(right.transform(f)),
            },
            ScalarExpr::Not(e) => ScalarExpr::Not(Box::new(e.transform(f))),
            ScalarExpr::Negate(e) => ScalarExpr::Negate(Box::new(e.transform(f))),
            ScalarExpr::IsNull { expr, negated } => ScalarExpr::IsNull {
                expr: Box::new(expr.transform(f)),
                negated,
            },
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => ScalarExpr::Like {
                expr: Box::new(expr.transform(f)),
                pattern: Box::new(pattern.transform(f)),
                negated,
            },
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => ScalarExpr::InList {
                expr: Box::new(expr.transform(f)),
                list: list.into_iter().map(|e| e.transform(f)).collect(),
                negated,
            },
            ScalarExpr::Case {
                operand,
                branches,
                else_expr,
            } => ScalarExpr::Case {
                operand: operand.map(|o| Box::new(o.transform(f))),
                branches: branches
                    .into_iter()
                    .map(|(c, r)| (c.transform(f), r.transform(f)))
                    .collect(),
                else_expr: else_expr.map(|e| Box::new(e.transform(f))),
            },
            ScalarExpr::Cast { expr, to } => ScalarExpr::Cast {
                expr: Box::new(expr.transform(f)),
                to,
            },
            ScalarExpr::Extract { field, expr } => ScalarExpr::Extract {
                field,
                expr: Box::new(expr.transform(f)),
            },
            ScalarExpr::Func { func, args } => ScalarExpr::Func {
                func,
                args: args.into_iter().map(|e| e.transform(f)).collect(),
            },
            leaf => leaf,
        };
        f(rebuilt)
    }

    /// Collect referenced column indexes.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let ScalarExpr::Column(i) = e {
                out.push(*i);
            }
        });
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Rebase column indexes through a mapping (old index → new index);
    /// fails when a referenced column is not mapped.
    pub fn remap_columns(self, map: &dyn Fn(usize) -> Option<usize>) -> Result<ScalarExpr> {
        let mut err = None;
        let out = self.transform(&mut |e| {
            if let ScalarExpr::Column(i) = e {
                match map(i) {
                    Some(n) => ScalarExpr::Column(n),
                    None => {
                        err = Some(i);
                        ScalarExpr::Column(i)
                    }
                }
            } else {
                e
            }
        });
        match err {
            Some(i) => Err(HiveError::Plan(format!(
                "column {i} not available after remap"
            ))),
            None => Ok(out),
        }
    }

    /// Shift all column references by `delta` (join input splicing).
    pub fn shift_columns(self, delta: usize) -> ScalarExpr {
        self.transform(&mut |e| match e {
            ScalarExpr::Column(i) => ScalarExpr::Column(i + delta),
            other => other,
        })
    }

    /// True when the expression references no columns (constant).
    pub fn is_constant(&self) -> bool {
        self.columns().is_empty() && self.is_deterministic()
    }

    /// True when the expression has no non-deterministic or
    /// runtime-constant calls.
    pub fn is_deterministic(&self) -> bool {
        let mut det = true;
        self.visit(&mut |e| {
            if let ScalarExpr::Func { func, .. } = e {
                if func.disqualifies_cache() {
                    det = false;
                }
            }
        });
        det
    }

    /// Shorthand: `col = col` equality.
    pub fn eq(left: ScalarExpr, right: ScalarExpr) -> ScalarExpr {
        ScalarExpr::Binary {
            op: BinaryOp::Eq,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Conjunction of a non-empty predicate list.
    pub fn conjunction(mut preds: Vec<ScalarExpr>) -> Option<ScalarExpr> {
        let first = preds.pop()?;
        Some(preds.into_iter().fold(first, |acc, p| ScalarExpr::Binary {
            op: BinaryOp::And,
            left: Box::new(p),
            right: Box::new(acc),
        }))
    }

    /// Split a predicate into its top-level AND conjuncts.
    pub fn split_conjunction(&self) -> Vec<&ScalarExpr> {
        match self {
            ScalarExpr::Binary {
                op: BinaryOp::And,
                left,
                right,
            } => {
                let mut out = left.split_conjunction();
                out.extend(right.split_conjunction());
                out
            }
            other => vec![other],
        }
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    Count,
    Sum,
    Min,
    Max,
    Avg,
    StddevSamp,
}

impl AggFunc {
    /// Resolve from SQL name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" | "mean" => AggFunc::Avg,
            "stddev" | "stddev_samp" => AggFunc::StddevSamp,
            _ => return None,
        })
    }

    /// Output type given the argument type.
    pub fn output_type(&self, arg: Option<&DataType>) -> DataType {
        match self {
            AggFunc::Count => DataType::BigInt,
            AggFunc::Avg | AggFunc::StddevSamp => DataType::Double,
            AggFunc::Sum => match arg {
                Some(DataType::Int) | Some(DataType::BigInt) => DataType::BigInt,
                Some(DataType::Decimal(_, s)) => DataType::Decimal(38, *s),
                _ => DataType::Double,
            },
            AggFunc::Min | AggFunc::Max => arg.cloned().unwrap_or(DataType::Null),
        }
    }
}

/// One aggregate call in an Aggregate node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    pub func: AggFunc,
    /// `None` for `COUNT(*)`.
    pub arg: Option<ScalarExpr>,
    pub distinct: bool,
}

/// Window functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WindowFunc {
    RowNumber,
    Rank,
    DenseRank,
    Ntile,
    Lag,
    Lead,
    FirstValue,
    LastValue,
    /// Aggregates used in window context.
    Agg(AggFunc),
}

impl WindowFunc {
    /// Resolve from SQL name.
    pub fn from_name(name: &str) -> Option<WindowFunc> {
        Some(match name {
            "row_number" => WindowFunc::RowNumber,
            "rank" => WindowFunc::Rank,
            "dense_rank" => WindowFunc::DenseRank,
            "ntile" => WindowFunc::Ntile,
            "lag" => WindowFunc::Lag,
            "lead" => WindowFunc::Lead,
            "first_value" => WindowFunc::FirstValue,
            "last_value" => WindowFunc::LastValue,
            other => WindowFunc::Agg(AggFunc::from_name(other)?),
        })
    }
}

/// One window call in a Window node.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowExpr {
    pub func: WindowFunc,
    pub args: Vec<ScalarExpr>,
    pub partition_by: Vec<ScalarExpr>,
    pub order_by: Vec<SortKey>,
    pub frame: Option<hive_sql::WindowFrame>,
}

/// A sort key: expression, direction, null placement.
#[derive(Debug, Clone, PartialEq)]
pub struct SortKey {
    pub expr: ScalarExpr,
    pub asc: bool,
    pub nulls_first: bool,
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column(i) => write!(f, "${i}"),
            ScalarExpr::Literal(v) => match v {
                Value::String(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
            ScalarExpr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            ScalarExpr::Not(e) => write!(f, "NOT {e}"),
            ScalarExpr::Negate(e) => write!(f, "-{e}"),
            ScalarExpr::IsNull { expr, negated } => {
                write!(f, "{expr} IS {}NULL", if *negated { "NOT " } else { "" })
            }
            ScalarExpr::Like {
                expr,
                pattern,
                negated,
            } => write!(
                f,
                "{expr} {}LIKE {pattern}",
                if *negated { "NOT " } else { "" }
            ),
            ScalarExpr::InList {
                expr,
                list,
                negated,
            } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            ScalarExpr::Case { .. } => write!(f, "CASE..END"),
            ScalarExpr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            ScalarExpr::Extract { field, expr } => write!(f, "EXTRACT({field:?}, {expr})"),
            ScalarExpr::Func { func, args } => {
                write!(f, "{func:?}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}(", self.func)?;
        if self.distinct {
            write!(f, "DISTINCT ")?;
        }
        match &self.arg {
            Some(a) => write!(f, "{a}")?,
            None => write!(f, "*")?,
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::Field;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::String),
            Field::new("c", DataType::Decimal(7, 2)),
        ])
    }

    #[test]
    fn types() {
        let s = schema();
        assert_eq!(
            ScalarExpr::Column(2).data_type(&s).unwrap(),
            DataType::Decimal(7, 2)
        );
        let cmp = ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Literal(Value::Int(1)));
        assert_eq!(cmp.data_type(&s).unwrap(), DataType::Boolean);
        let add = ScalarExpr::Binary {
            op: BinaryOp::Plus,
            left: Box::new(ScalarExpr::Column(0)),
            right: Box::new(ScalarExpr::Literal(Value::BigInt(1))),
        };
        assert_eq!(add.data_type(&s).unwrap(), DataType::BigInt);
        assert!(ScalarExpr::Column(9).data_type(&s).is_err());
    }

    #[test]
    fn columns_and_shift() {
        let e = ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Column(2));
        assert_eq!(e.columns(), vec![0, 2]);
        let shifted = e.shift_columns(5);
        assert_eq!(shifted.columns(), vec![5, 7]);
    }

    #[test]
    fn conjunction_round_trip() {
        let parts = vec![
            ScalarExpr::Column(0),
            ScalarExpr::Column(1),
            ScalarExpr::Column(2),
        ];
        let conj = ScalarExpr::conjunction(parts).unwrap();
        assert_eq!(conj.split_conjunction().len(), 3);
    }

    #[test]
    fn determinism() {
        let r = ScalarExpr::Func {
            func: BuiltinFunc::Rand,
            args: vec![],
        };
        assert!(!r.is_deterministic());
        assert!(!r.is_constant());
        let l = ScalarExpr::Literal(Value::Int(1));
        assert!(l.is_constant());
    }

    #[test]
    fn agg_output_types() {
        assert_eq!(AggFunc::Count.output_type(None), DataType::BigInt);
        assert_eq!(
            AggFunc::Sum.output_type(Some(&DataType::Int)),
            DataType::BigInt
        );
        assert_eq!(
            AggFunc::Sum.output_type(Some(&DataType::Decimal(7, 2))),
            DataType::Decimal(38, 2)
        );
        assert_eq!(
            AggFunc::Avg.output_type(Some(&DataType::Int)),
            DataType::Double
        );
    }
}
