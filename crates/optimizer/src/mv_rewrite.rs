//! Materialized-view based query rewriting (§4.4).
//!
//! The rewriter handles Select-Project-Join-Aggregate (SPJA)
//! expressions, producing:
//!
//! * **full rewrites** (Figure 4(b)): the query's data need is contained
//!   in the view — scan the view, apply residual filters, and roll up to
//!   the query's (coarser or equal) grouping;
//! * **partially contained rewrites** (Figure 4(c)): the query's range
//!   predicate is wider than the view's — a UNION ALL of the view part
//!   and the complement computed from the source tables, re-aggregated.
//!
//! Matching is structural over an extracted SPJA summary: scanned-table
//! multiset, equi-join pair set, filter conjuncts with single-column
//! range implication, group keys, and derivable aggregates.

use crate::expr::{AggExpr, AggFunc, ScalarExpr};
use crate::plan::{JoinType, LogicalPlan, ScanTable};
use crate::rules::transform_up;
use crate::stats::{estimate_cost, StatsSource};
use hive_common::{HiveError, Result, Value};
use hive_sql::BinaryOp;
use std::cmp::Ordering;
use std::sync::Arc;

/// A view eligible for rewriting under the current snapshot, with its
/// analyzed definition plan.
#[derive(Debug, Clone)]
pub struct UsableView {
    /// The MV's own table (scanned by rewritten plans).
    pub table: hive_metastore::Table,
    /// The analyzed (unoptimized) definition plan.
    pub plan: LogicalPlan,
}

/// Column coordinates: `rel_idx * COL_STRIDE + table_schema_col`.
const COL_STRIDE: usize = 4096;

/// The SPJA summary of a plan subtree.
#[derive(Debug, Clone)]
struct Spja {
    /// Scans ordered by qualified name (self-joins rejected).
    scans: Vec<ScanTable>,
    /// Canonicalized equi-join pairs over global coordinates.
    join_pairs: Vec<(String, String)>,
    /// Filter conjuncts over global coordinates.
    filters: Vec<ScalarExpr>,
    /// Group keys over global coordinates (empty for SPJ).
    group_keys: Vec<ScalarExpr>,
    /// Aggregates over global coordinates.
    aggs: Vec<AggExpr>,
    /// True when the subtree ends in an Aggregate.
    has_agg: bool,
    /// The join conditions as equality expressions (global coords),
    /// kept for rebuilding source branches.
    raw_joins: Vec<ScalarExpr>,
}

impl Spja {
    fn table_names(&self) -> Vec<&str> {
        self.scans
            .iter()
            .map(|s| s.qualified_name.as_str())
            .collect()
    }
}

/// Try to rewrite `plan` using any usable view; returns the rewritten
/// plan only when its estimated cost improves.
pub fn try_rewrite(
    plan: &LogicalPlan,
    views: &[UsableView],
    stats: &dyn StatsSource,
) -> Result<Option<LogicalPlan>> {
    let mut applied = false;
    let rewritten = transform_up(plan, &mut |node| {
        if applied {
            return node; // one substitution per pass keeps things simple
        }
        if !matches!(node, LogicalPlan::Aggregate { .. }) {
            return node;
        }
        for view in views {
            if let Ok(Some(new)) = rewrite_aggregate(&node, view) {
                applied = true;
                return new;
            }
        }
        node
    });
    if !applied {
        return Ok(None);
    }
    // Normalize the rewritten plan (pushdown/folding) before the
    // cost-based decision: a freshly rebuilt union branch starts as a
    // filtered cross join and would otherwise look artificially costly.
    // Both sides are compared *after* join reordering, since that is the
    // form either one would ultimately execute in.
    let rewritten = crate::optimizer::Optimizer::exhaustive(rewritten)?;
    let rewritten = crate::rules::join_reorder::reorder_joins(&rewritten, stats)?;
    let rewritten = crate::optimizer::Optimizer::exhaustive(rewritten)?;
    let old_reordered = crate::rules::join_reorder::reorder_joins(plan, stats)?;
    let old_cost = estimate_cost(&old_reordered, stats);
    let new_cost = estimate_cost(&rewritten, stats);
    if std::env::var("HIVE_MV_DEBUG").is_ok() {
        eprintln!("mv_rewrite: old={old_cost} new={new_cost}");
    }
    if new_cost < old_cost {
        Ok(Some(rewritten))
    } else {
        Ok(None)
    }
}

/// One MV table column's meaning: the view's i-th group key or j-th
/// aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutSlot {
    Key(usize),
    Agg(usize),
}

/// Extract the view definition's SPJA plus the mapping from MV table
/// columns to (key/agg) slots. Accepts an optional top-level projection
/// of plain column references (the analyzer always produces one).
fn extract_view(plan: &LogicalPlan) -> Option<(Spja, Vec<OutSlot>)> {
    let (agg_node, out_cols): (&LogicalPlan, Option<Vec<usize>>) = match plan {
        LogicalPlan::Project { input, exprs, .. } => {
            let cols: Option<Vec<usize>> = exprs
                .iter()
                .map(|e| match e {
                    ScalarExpr::Column(c) => Some(*c),
                    _ => None,
                })
                .collect();
            (input.as_ref(), Some(cols?))
        }
        other => (other, None),
    };
    let spja = extract_spja(agg_node)?;
    if !spja.has_agg {
        return None;
    }
    let nk = spja.group_keys.len();
    let width = nk + spja.aggs.len();
    let slot_of = |c: usize| -> Option<OutSlot> {
        if c < nk {
            Some(OutSlot::Key(c))
        } else if c < width {
            Some(OutSlot::Agg(c - nk))
        } else {
            None
        }
    };
    let slots: Vec<OutSlot> = match out_cols {
        Some(cols) => cols.into_iter().map(slot_of).collect::<Option<Vec<_>>>()?,
        None => (0..width).map(|c| slot_of(c).unwrap()).collect(),
    };
    Some((spja, slots))
}

/// Attempt to rewrite one Aggregate subtree against one view.
fn rewrite_aggregate(node: &LogicalPlan, view: &UsableView) -> Result<Option<LogicalPlan>> {
    let Some(query) = extract_spja(node) else {
        return Ok(None);
    };
    let Some((view_spja, view_slots)) = extract_view(&view.plan) else {
        return Ok(None);
    };
    if !query.has_agg {
        return Ok(None);
    }
    // 1. Same table multiset.
    if query.table_names() != view_spja.table_names() {
        return Ok(None);
    }
    // 2. Same join pairs.
    if query.join_pairs != view_spja.join_pairs {
        return Ok(None);
    }
    // 3. Query group keys ⊆ view group keys.
    let mut key_map: Vec<usize> = Vec::new(); // query key → view key idx
    for qk in &query.group_keys {
        match view_spja.group_keys.iter().position(|vk| vk == qk) {
            Some(i) => key_map.push(i),
            None => return Ok(None),
        }
    }
    // 4. Filter containment.
    let containment = check_filters(&query.filters, &view_spja.filters);
    let (residuals, complement) = match containment {
        FilterMatch::Contained { residuals } => (residuals, None),
        FilterMatch::Partial {
            residuals,
            complement,
        } => (residuals, Some(complement)),
        FilterMatch::No => return Ok(None),
    };
    // Residual filters must be expressible over the view's output
    // (its group keys); anything else defeats the rewrite.
    let mut residual_over_view: Vec<ScalarExpr> = Vec::new();
    for r in &residuals {
        match remap_to_view_output(r, &view_spja, &view_slots) {
            Some(e) => residual_over_view.push(e),
            None => return Ok(None),
        }
    }
    // 5. Aggregate derivability (rollup-merge over the view's rows).
    let mut derived: Vec<(AggExpr, Option<usize>)> = Vec::new(); // (view rollup agg, divisor col for AVG)
    for qa in &query.aggs {
        match derive_agg(qa, &view_spja, &view_slots) {
            Some(d) => derived.push(d),
            None => return Ok(None),
        }
    }

    // Build the view branch: Scan(MV) → Filter(residual) → Aggregate
    // (group = query keys as view cols, aggs = derived) → Project.
    let view_branch = build_view_branch(
        view,
        &view_slots,
        &key_map,
        &residual_over_view,
        &derived,
        &query,
    )?;

    let replacement = match complement {
        None => view_branch,
        Some(comp_filter) => {
            // Partially contained rewrite: union with the source part.
            let mut source_filters = query.filters.clone();
            source_filters.push(comp_filter);
            let source_branch = build_source_branch(&query, &source_filters)?;
            // Merge-aggregate the union: group keys 0..k, merge aggs.
            let k = query.group_keys.len();
            let mut merge_aggs = Vec::new();
            for (i, qa) in query.aggs.iter().enumerate() {
                let func = match qa.func {
                    AggFunc::Sum => AggFunc::Sum,
                    AggFunc::Count => AggFunc::Sum,
                    AggFunc::Min => AggFunc::Min,
                    AggFunc::Max => AggFunc::Max,
                    // AVG/Stddev/distinct cannot merge across branches.
                    _ => return Ok(None),
                };
                if qa.distinct {
                    return Ok(None);
                }
                merge_aggs.push(AggExpr {
                    func,
                    arg: Some(ScalarExpr::Column(k + i)),
                    distinct: false,
                });
            }
            let union = LogicalPlan::Union {
                inputs: vec![Arc::new(view_branch), Arc::new(source_branch)],
            };
            LogicalPlan::Aggregate {
                input: Arc::new(union),
                group_exprs: (0..k).map(ScalarExpr::Column).collect(),
                grouping_sets: None,
                aggs: merge_aggs,
            }
        }
    };
    // The replacement schema must align with the original Aggregate
    // output (same arity/types by construction: keys then aggs).
    Ok(Some(replacement))
}

/// Build the rewritten branch reading from the MV table.
fn build_view_branch(
    view: &UsableView,
    view_slots: &[OutSlot],
    key_map: &[usize],
    residuals: &[ScalarExpr],
    derived: &[(AggExpr, Option<usize>)],
    query: &Spja,
) -> Result<LogicalPlan> {
    let mv_schema = view.table.full_schema();
    let scan = LogicalPlan::Scan {
        table: ScanTable {
            qualified_name: view.table.qualified_name(),
            db: view.table.db.clone(),
            name: view.table.name.clone(),
            schema: mv_schema.clone(),
            partition_cols: vec![],
            handler: view.table.storage_handler.clone(),
            acid: view.table.is_acid(),
            is_mv: true,
            external_query: None,
            external_source: None,
        },
        projection: (0..mv_schema.len()).collect(),
        filters: residuals.to_vec(),
        partitions: None,
        semijoin_filters: vec![],
    };
    // Roll up to the query grouping (query key → MV column via slots).
    let group_exprs: Vec<ScalarExpr> = key_map
        .iter()
        .map(|&vk| {
            let col = view_slots
                .iter()
                .position(|s| *s == OutSlot::Key(vk))
                .ok_or_else(|| HiveError::Plan("view key not in MV output".into()))?;
            Ok(ScalarExpr::Column(col))
        })
        .collect::<Result<Vec<_>>>()?;
    let aggs: Vec<AggExpr> = derived.iter().map(|(a, _)| a.clone()).collect();
    let agg = LogicalPlan::Aggregate {
        input: Arc::new(scan),
        group_exprs,
        grouping_sets: None,
        aggs,
    };
    // Project: keys in query order, then agg results (with AVG division).
    let k = query.group_keys.len();
    let mut exprs: Vec<ScalarExpr> = (0..k).map(ScalarExpr::Column).collect();
    let mut names: Vec<String> = (0..k).map(|i| format!("_g{i}")).collect();
    for (i, (agg_expr, divisor)) in derived.iter().enumerate() {
        let col = ScalarExpr::Column(k + i);
        let e = match divisor {
            Some(div_idx) => ScalarExpr::Binary {
                op: BinaryOp::Divide,
                left: Box::new(col),
                right: Box::new(ScalarExpr::Column(k + div_idx)),
            },
            None => col,
        };
        let _ = agg_expr;
        exprs.push(e);
        names.push(format!("_a{i}"));
    }
    Ok(LogicalPlan::Project {
        input: Arc::new(agg),
        exprs,
        names,
    })
}

/// Rebuild the source SPJA from its summary with the given filters.
fn build_source_branch(query: &Spja, filters: &[ScalarExpr]) -> Result<LogicalPlan> {
    // Left-deep cross-join of scans in summary order, then filters as a
    // predicate (pushdown will redistribute), then the aggregate.
    let mut plan: Option<Arc<LogicalPlan>> = None;
    let mut offsets: Vec<usize> = Vec::new();
    let mut acc = 0usize;
    for s in &query.scans {
        offsets.push(acc);
        acc += s.schema.len();
        let scan = Arc::new(LogicalPlan::Scan {
            table: s.clone(),
            projection: (0..s.schema.len()).collect(),
            filters: vec![],
            partitions: None,
            semijoin_filters: vec![],
        });
        plan = Some(match plan {
            None => scan,
            Some(left) => Arc::new(LogicalPlan::Join {
                left,
                right: scan,
                join_type: JoinType::Cross,
                equi: vec![],
                residual: None,
            }),
        });
    }
    let plan = plan.ok_or_else(|| HiveError::Plan("empty SPJA summary".into()))?;
    let to_flat = |e: &ScalarExpr| -> Result<ScalarExpr> {
        e.clone().remap_columns(&|g| {
            let rel = g / COL_STRIDE;
            let col = g % COL_STRIDE;
            offsets.get(rel).map(|off| off + col)
        })
    };
    // Join pairs back to predicates.
    let mut preds: Vec<ScalarExpr> = Vec::new();
    for f in filters {
        preds.push(to_flat(f)?);
    }
    for s in &query.join_pairs_struct() {
        preds.push(to_flat(s)?);
    }
    let filtered = match ScalarExpr::conjunction(preds) {
        Some(p) => Arc::new(LogicalPlan::Filter {
            input: plan,
            predicate: p,
        }),
        None => plan,
    };
    let group_exprs = query
        .group_keys
        .iter()
        .map(&to_flat)
        .collect::<Result<Vec<_>>>()?;
    let aggs = query
        .aggs
        .iter()
        .map(|a| {
            Ok(AggExpr {
                func: a.func,
                arg: a.arg.as_ref().map(&to_flat).transpose()?,
                distinct: a.distinct,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(LogicalPlan::Aggregate {
        input: filtered,
        group_exprs,
        grouping_sets: None,
        aggs,
    })
}

impl Spja {
    /// The join pairs as equality expressions in global coordinates.
    fn join_pairs_struct(&self) -> Vec<ScalarExpr> {
        self.raw_joins.clone()
    }
}

/// How the query's filters relate to the view's.
enum FilterMatch {
    /// Query region ⊆ view region; `residuals` re-applied on the view.
    Contained {
        residuals: Vec<ScalarExpr>,
    },
    /// Exactly one view range conjunct is *narrower* than the query's on
    /// the same column: the complement must be computed from source.
    Partial {
        residuals: Vec<ScalarExpr>,
        /// The complement predicate (global coords) for the source part.
        complement: ScalarExpr,
    },
    No,
}

fn check_filters(query: &[ScalarExpr], view: &[ScalarExpr]) -> FilterMatch {
    // Residuals: every query conjunct not literally present in the view.
    let residuals: Vec<ScalarExpr> = query
        .iter()
        .filter(|q| !view.contains(q))
        .cloned()
        .collect();
    // Every view conjunct must be implied by the query's conjunction.
    let mut uncovered: Vec<&ScalarExpr> = Vec::new();
    for v in view {
        let implied = query.iter().any(|q| implies(q, v));
        if !implied {
            uncovered.push(v);
        }
    }
    if uncovered.is_empty() {
        return FilterMatch::Contained { residuals };
    }
    // Partial containment: a single uncovered *range* view conjunct on a
    // column where the query has a wider (or absent) range.
    if uncovered.len() == 1 {
        if let Some((col, _, _)) = as_range(uncovered[0]) {
            // The complement region = query ∧ NOT(view conjunct).
            let complement = ScalarExpr::Not(Box::new(uncovered[0].clone()));
            // Query must not contradict the view region entirely: if the
            // query has a conflicting range making the intersection
            // empty, the full rewrite is just wrong, not partial; we
            // accept and let the optimizer fold empty branches.
            let _ = col;
            return FilterMatch::Partial {
                residuals,
                complement,
            };
        }
    }
    FilterMatch::No
}

/// Does conjunct `q` imply conjunct `v`?
fn implies(q: &ScalarExpr, v: &ScalarExpr) -> bool {
    if q == v {
        return true;
    }
    let (Some((qc, qop, qv)), Some((vc, vop, vv))) = (as_range(q), as_range(v)) else {
        return false;
    };
    if qc != vc {
        return false;
    }
    let cmp = match qv.sql_cmp(&vv) {
        Some(c) => c,
        None => return false,
    };
    use BinaryOp::*;
    match (qop, vop) {
        (Eq, Eq) => cmp == Ordering::Equal,
        (Eq, Gt) => cmp == Ordering::Greater,
        (Eq, GtEq) => cmp != Ordering::Less,
        (Eq, Lt) => cmp == Ordering::Less,
        (Eq, LtEq) => cmp != Ordering::Greater,
        (Gt, Gt) => cmp != Ordering::Less,
        (Gt, GtEq) => cmp != Ordering::Less,
        (GtEq, Gt) => cmp == Ordering::Greater,
        (GtEq, GtEq) => cmp != Ordering::Less,
        (Lt, Lt) => cmp != Ordering::Greater,
        (Lt, LtEq) => cmp != Ordering::Greater,
        (LtEq, Lt) => cmp == Ordering::Less,
        (LtEq, LtEq) => cmp != Ordering::Greater,
        _ => false,
    }
}

/// View a conjunct as `column op literal` (normalizing direction).
fn as_range(e: &ScalarExpr) -> Option<(usize, BinaryOp, Value)> {
    if let ScalarExpr::Binary { op, left, right } = e {
        if let (ScalarExpr::Column(c), ScalarExpr::Literal(v)) = (left.as_ref(), right.as_ref()) {
            return Some((*c, *op, v.clone()));
        }
        if let (ScalarExpr::Literal(v), ScalarExpr::Column(c)) = (left.as_ref(), right.as_ref()) {
            let flipped = match op {
                BinaryOp::Lt => BinaryOp::Gt,
                BinaryOp::LtEq => BinaryOp::GtEq,
                BinaryOp::Gt => BinaryOp::Lt,
                BinaryOp::GtEq => BinaryOp::LtEq,
                other => *other,
            };
            return Some((*c, flipped, v.clone()));
        }
    }
    None
}

/// Re-express a global-coordinate expression over the MV table's
/// columns. Fails when a referenced column is not one of the view's
/// group keys (or its key is not exported by the MV's projection).
fn remap_to_view_output(e: &ScalarExpr, view: &Spja, slots: &[OutSlot]) -> Option<ScalarExpr> {
    let mut ok = true;
    let out = e.clone().transform(&mut |x| match &x {
        ScalarExpr::Column(g) => {
            let key_idx = view
                .group_keys
                .iter()
                .position(|k| matches!(k, ScalarExpr::Column(kc) if kc == g));
            match key_idx.and_then(|i| slots.iter().position(|s| *s == OutSlot::Key(i))) {
                Some(col) => ScalarExpr::Column(col),
                None => {
                    ok = false;
                    x
                }
            }
        }
        _ => x,
    });
    ok.then_some(out)
}

/// Derive a query aggregate from the view's aggregate columns.
/// Returns the rollup aggregate over the MV scan plus, for AVG, the
/// index (within the derived agg list, filled by the caller's layout)
/// of the COUNT divisor.
fn derive_agg(qa: &AggExpr, view: &Spja, slots: &[OutSlot]) -> Option<(AggExpr, Option<usize>)> {
    if qa.distinct {
        return None;
    }
    // Find the MV column exporting the matching view aggregate.
    let find = |func: AggFunc, arg: &Option<ScalarExpr>| -> Option<usize> {
        let j = view
            .aggs
            .iter()
            .position(|va| va.func == func && va.arg == *arg && !va.distinct)?;
        slots.iter().position(|s| *s == OutSlot::Agg(j))
    };
    match qa.func {
        AggFunc::Sum => {
            let col = find(AggFunc::Sum, &qa.arg)?;
            Some((
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::Column(col)),
                    distinct: false,
                },
                None,
            ))
        }
        AggFunc::Count => {
            let col = find(AggFunc::Count, &qa.arg)?;
            Some((
                AggExpr {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::Column(col)),
                    distinct: false,
                },
                None,
            ))
        }
        AggFunc::Min => {
            let col = find(AggFunc::Min, &qa.arg)?;
            Some((
                AggExpr {
                    func: AggFunc::Min,
                    arg: Some(ScalarExpr::Column(col)),
                    distinct: false,
                },
                None,
            ))
        }
        AggFunc::Max => {
            let col = find(AggFunc::Max, &qa.arg)?;
            Some((
                AggExpr {
                    func: AggFunc::Max,
                    arg: Some(ScalarExpr::Column(col)),
                    distinct: false,
                },
                None,
            ))
        }
        // AVG and STDDEV require auxiliary columns; only AVG with
        // SUM+COUNT present derives (divisor handled by the caller).
        _ => None,
    }
}

/// Extract an SPJA summary, or `None` when the subtree contains shapes
/// the rewriter does not reason about.
fn extract_spja(plan: &LogicalPlan) -> Option<Spja> {
    let mut scans: Vec<(ScanTable, usize)> = Vec::new(); // (table, flat offset)
    let mut filters_flat: Vec<ScalarExpr> = Vec::new();
    let mut joins_flat: Vec<ScalarExpr> = Vec::new();
    let (agg_input, group_keys_raw, aggs_raw, has_agg) = match plan {
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            grouping_sets,
            aggs,
        } => {
            if grouping_sets.is_some() {
                return None;
            }
            (input.as_ref(), group_exprs.clone(), aggs.clone(), true)
        }
        other => (other, vec![], vec![], false),
    };
    collect_spj(agg_input, 0, &mut scans, &mut filters_flat, &mut joins_flat)?;
    // Convert flat coordinates to (rel, schema col) global coordinates.
    let flat_to_global = |c: usize| -> Option<usize> {
        for (i, (t, off)) in scans.iter().enumerate() {
            if c >= *off && c < off + t.schema.len() {
                return Some(i * COL_STRIDE + (c - off));
            }
        }
        None
    };
    // Canonical order: sort scans by name; reject self-joins.
    let mut order: Vec<usize> = (0..scans.len()).collect();
    order.sort_by(|&a, &b| scans[a].0.qualified_name.cmp(&scans[b].0.qualified_name));
    for w in order.windows(2) {
        if scans[w[0]].0.qualified_name == scans[w[1]].0.qualified_name {
            return None; // self-join ambiguity
        }
    }
    let rel_rename: Vec<usize> = {
        // old rel idx -> new rel idx
        let mut m = vec![0usize; scans.len()];
        for (new_idx, &old_idx) in order.iter().enumerate() {
            m[old_idx] = new_idx;
        }
        m
    };
    let remap = |e: &ScalarExpr| -> Option<ScalarExpr> {
        let mut ok = true;
        let out = e.clone().transform(&mut |x| match x {
            ScalarExpr::Column(c) => match flat_to_global(c) {
                Some(g) => {
                    let rel = g / COL_STRIDE;
                    let col = g % COL_STRIDE;
                    ScalarExpr::Column(rel_rename[rel] * COL_STRIDE + col)
                }
                None => {
                    ok = false;
                    ScalarExpr::Column(c)
                }
            },
            other => other,
        });
        ok.then_some(out)
    };
    let filters = filters_flat
        .iter()
        .map(&remap)
        .collect::<Option<Vec<_>>>()?;
    let raw_joins = joins_flat.iter().map(&remap).collect::<Option<Vec<_>>>()?;
    let mut join_pairs: Vec<(String, String)> = raw_joins
        .iter()
        .filter_map(|j| {
            if let ScalarExpr::Binary {
                op: BinaryOp::Eq,
                left,
                right,
            } = j
            {
                let (a, b) = (format!("{left}"), format!("{right}"));
                Some(if a <= b { (a, b) } else { (b, a) })
            } else {
                None
            }
        })
        .collect();
    join_pairs.sort();
    let group_keys = group_keys_raw
        .iter()
        .map(&remap)
        .collect::<Option<Vec<_>>>()?;
    let aggs = aggs_raw
        .iter()
        .map(|a| {
            Some(AggExpr {
                func: a.func,
                arg: match &a.arg {
                    Some(e) => Some(remap(e)?),
                    None => None,
                },
                distinct: a.distinct,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    let ordered_scans: Vec<ScanTable> = order.iter().map(|&i| scans[i].0.clone()).collect();
    Some(Spja {
        scans: ordered_scans,
        join_pairs,
        filters,
        group_keys,
        aggs,
        has_agg,
        raw_joins,
    })
}

/// Walk an SPJ tree collecting scans (with flat offsets), filters and
/// join conditions in flat (concatenated) coordinates.
fn collect_spj(
    plan: &LogicalPlan,
    offset: usize,
    scans: &mut Vec<(ScanTable, usize)>,
    filters: &mut Vec<ScalarExpr>,
    joins: &mut Vec<ScalarExpr>,
) -> Option<usize> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters: scan_filters,
            semijoin_filters: _,
            partitions: _,
        } => {
            // Require full projection in schema order (pre-pruning plans).
            if projection.len() != table.schema.len()
                || projection.iter().enumerate().any(|(i, &p)| p != i)
            {
                // Remap anyway via projection.
                for f in scan_filters {
                    let remapped = f
                        .clone()
                        .remap_columns(&|c| projection.get(c).map(|&p| p + offset))
                        .ok()?;
                    filters.push(remapped);
                }
                scans.push((table.clone(), offset));
                return Some(offset + table.schema.len());
            }
            for f in scan_filters {
                for part in f.split_conjunction() {
                    filters.push(part.clone().shift_columns(offset));
                }
            }
            scans.push((table.clone(), offset));
            Some(offset + table.schema.len())
        }
        LogicalPlan::Filter { input, predicate } => {
            let end = collect_spj(input, offset, scans, filters, joins)?;
            for part in predicate.split_conjunction() {
                let cols = part.columns();
                let is_join = matches!(
                    part,
                    ScalarExpr::Binary {
                        op: BinaryOp::Eq,
                        ..
                    }
                ) && cols.len() >= 2
                    && spans_scans(&cols, scans, offset);
                if is_join {
                    joins.push(part.clone().shift_columns(offset));
                } else {
                    filters.push(part.clone().shift_columns(offset));
                }
            }
            Some(end)
        }
        LogicalPlan::Join {
            left,
            right,
            join_type: JoinType::Inner | JoinType::Cross,
            equi,
            residual,
        } => {
            let mid = collect_spj(left, offset, scans, filters, joins)?;
            let end = collect_spj(right, mid, scans, filters, joins)?;
            for (l, r) in equi {
                let le = l.clone().shift_columns(offset);
                let re = r.clone().shift_columns(mid);
                joins.push(ScalarExpr::eq(le, re));
            }
            if let Some(res) = residual {
                let shifted = res
                    .clone()
                    .remap_columns(&|c| {
                        let left_w = mid - offset;
                        if c < left_w {
                            Some(c + offset)
                        } else {
                            Some(c - left_w + mid)
                        }
                    })
                    .ok()?;
                filters.push(shifted);
            }
            Some(end)
        }
        // Projections inside the SPJ break the simple column mapping;
        // only identity projections are accepted.
        LogicalPlan::Project { input, exprs, .. } => {
            let identity = exprs
                .iter()
                .enumerate()
                .all(|(i, e)| matches!(e, ScalarExpr::Column(c) if *c == i));
            if identity {
                collect_spj(input, offset, scans, filters, joins)
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Does the column set span more than one scan's flat range?
fn spans_scans(cols: &[usize], scans: &[(ScanTable, usize)], base: usize) -> bool {
    let rel_of = |c: usize| -> Option<usize> {
        scans
            .iter()
            .position(|(t, off)| c + base >= *off && c + base < off + t.schema.len())
    };
    let rels: Vec<_> = cols.iter().filter_map(|&c| rel_of(c)).collect();
    rels.windows(2).any(|w| w[0] != w[1])
}
