//! # hive-optimizer
//!
//! The Calcite-equivalent optimizer (paper §4): the driver parses SQL to
//! an AST ([`hive_sql`]), the [`analyzer`] binds it into a typed
//! [`plan::LogicalPlan`], and [`optimizer::Optimizer`] runs multi-stage
//! rewriting:
//!
//! 1. **Exhaustive stage** — rule-based rewrites applied to fixpoint:
//!    constant folding, predicate simplification and pushdown, projection
//!    pruning, static partition pruning.
//! 2. **Cost-based stage** — join reordering driven by HMS statistics
//!    ([`stats`]), materialized-view rewriting ([`mv_rewrite`]), and
//!    dynamic semijoin-reduction planning ([`rules::semijoin`]).
//!
//! Plan fingerprints ([`fingerprint`]) serve the shared-work optimizer
//! (§4.5) and the query results cache (§4.3).

pub mod analyzer;
pub mod eval;
pub mod expr;
pub mod fingerprint;
pub mod mv_rewrite;
pub mod optimizer;
pub mod plan;
pub mod rules;
pub mod stats;

pub use analyzer::{Analyzer, CatalogView, MetastoreCatalog};
pub use expr::{AggExpr, AggFunc, BuiltinFunc, ScalarExpr, SortKey, WindowExpr, WindowFunc};
pub use optimizer::{Optimizer, OptimizerContext};
pub use plan::{JoinType, LogicalPlan, ScanTable, SemiJoinFilterSpec};
