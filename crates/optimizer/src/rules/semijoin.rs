//! Dynamic semijoin reduction planning (§4.6).
//!
//! For inner joins where one side is selectively filtered (a dimension
//! table behind predicates) and the other side's join key is a plain
//! scan column (the fact table), attach a [`SemiJoinFilterSpec`] to the
//! fact scan. At run time the executor evaluates the dimension subplan
//! first, collects the join-key values, and reduces the fact scan with:
//!
//! * **dynamic partition pruning** when the key is a partition column —
//!   unneeded partition directories are skipped outright;
//! * an **index semijoin** otherwise — a min/max range plus Bloom filter
//!   pushed into the scan's search argument so entire row groups are
//!   skipped.

use crate::expr::ScalarExpr;
use crate::plan::{JoinType, LogicalPlan, SemiJoinFilterSpec};
use crate::rules::transform_up;
use crate::stats::{estimate_rows, StatsSource};
use std::sync::Arc;

/// Maximum estimated build-side rows for which a reducer is planned.
const MAX_SOURCE_ROWS: f64 = 2_000_000.0;
/// Minimum ratio between probe and build side for the filter to pay off.
const MIN_RATIO: f64 = 2.0;

/// Plan semijoin reducers across the plan.
pub fn plan_semijoin_reduction(plan: &LogicalPlan, stats: &dyn StatsSource) -> LogicalPlan {
    transform_up(plan, &mut |node| attach_reducers(node, stats))
}

fn attach_reducers(node: LogicalPlan, stats: &dyn StatsSource) -> LogicalPlan {
    let LogicalPlan::Join {
        left,
        right,
        join_type,
        equi,
        residual,
    } = node
    else {
        return node;
    };
    if !matches!(join_type, JoinType::Inner | JoinType::Semi) || equi.is_empty() {
        return LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
        };
    }
    let left_rows = estimate_rows(&left, stats);
    let right_rows = estimate_rows(&right, stats);
    // Reducers only reach through intermediate joins on the histogram
    // path: the constant-selectivity plan shape (and thus simulated
    // cost) stays byte-identical to the pre-histogram oracle.
    let through_joins = stats.histograms_enabled();

    let mut new_left = left.clone();
    let mut new_right = right.clone();
    // Try reducing the larger side with keys from the smaller, filtered
    // side. Only a side that actually has filtering (Filter node or scan
    // filters) is a useful source.
    for (li, ri) in &equi {
        if right_rows * MIN_RATIO < left_rows && right_rows < MAX_SOURCE_ROWS && is_filtered(&right)
        {
            if let Some(reduced) = try_attach(&new_left, li, &right, ri, through_joins) {
                new_left = reduced;
            }
        } else if left_rows * MIN_RATIO < right_rows
            && left_rows < MAX_SOURCE_ROWS
            && is_filtered(&left)
        {
            if let Some(reduced) = try_attach(&new_right, ri, &left, li, through_joins) {
                new_right = reduced;
            }
        }
    }
    LogicalPlan::Join {
        left: new_left,
        right: new_right,
        join_type,
        equi,
        residual,
    }
}

/// Does the subplan apply any filtering (so its key set is selective)?
fn is_filtered(plan: &LogicalPlan) -> bool {
    let mut found = false;
    plan.visit(&mut |p| match p {
        LogicalPlan::Filter { .. } => found = true,
        LogicalPlan::Scan { filters, .. } if !filters.is_empty() => found = true,
        _ => {}
    });
    found
}

/// Attach a reducer to the scan feeding `target_expr` on the probe side.
/// The key must be a plain column that passes untransformed through
/// Filters (and trivial Projects) down to a Scan.
fn try_attach(
    probe: &Arc<LogicalPlan>,
    probe_key: &ScalarExpr,
    build: &Arc<LogicalPlan>,
    build_key: &ScalarExpr,
    through_joins: bool,
) -> Option<Arc<LogicalPlan>> {
    let ScalarExpr::Column(col) = probe_key else {
        return None;
    };
    // Build the source plan: build subtree projected to its key column.
    let build_schema = build.schema();
    let key_name = match build_key {
        ScalarExpr::Column(c) => build_schema.field(*c).name.clone(),
        _ => "_sj_key".to_string(),
    };
    let source = Arc::new(LogicalPlan::Project {
        input: build.clone(),
        exprs: vec![build_key.clone()],
        names: vec![key_name],
    });
    let spec_builder = |target_col: usize, is_partition_col: bool| SemiJoinFilterSpec {
        source: source.clone(),
        source_key: 0,
        target_col,
        is_partition_col,
    };
    attach_to_scan(probe, *col, &spec_builder, through_joins).map(Arc::new)
}

fn attach_to_scan(
    plan: &LogicalPlan,
    col: usize,
    make_spec: &dyn Fn(usize, bool) -> SemiJoinFilterSpec,
    through_joins: bool,
) -> Option<LogicalPlan> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            partitions,
            semijoin_filters,
        } => {
            let schema_col = *projection.get(col)?;
            let is_partition_col = table.partition_cols.contains(&schema_col);
            let mut sj = semijoin_filters.clone();
            sj.push(make_spec(col, is_partition_col));
            Some(LogicalPlan::Scan {
                table: table.clone(),
                projection: projection.clone(),
                filters: filters.clone(),
                partitions: partitions.clone(),
                semijoin_filters: sj,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let inner = attach_to_scan(input, col, make_spec, through_joins)?;
            Some(LogicalPlan::Filter {
                input: Arc::new(inner),
                predicate: predicate.clone(),
            })
        }
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => {
            // Trace through a pass-through projection.
            if let Some(ScalarExpr::Column(inner_col)) = exprs.get(col) {
                let inner = attach_to_scan(input, *inner_col, make_spec, through_joins)?;
                Some(LogicalPlan::Project {
                    input: Arc::new(inner),
                    exprs: exprs.clone(),
                    names: names.clone(),
                })
            } else {
                None
            }
        }
        // Trace through an intermediate inner/cross join to whichever
        // side owns the column: the reducer only drops rows whose key
        // cannot satisfy the *outer* join's equality, so filtering the
        // base scan early is safe regardless of this join. This is what
        // keeps dynamic partition pruning alive when the cost-based
        // order joins the partition-keyed dimension last.
        LogicalPlan::Join {
            left,
            right,
            join_type: join_type @ (JoinType::Inner | JoinType::Cross),
            equi,
            residual,
        } => {
            if !through_joins {
                return None;
            }
            let left_width = left.schema().len();
            let (new_left, new_right) = if col < left_width {
                let inner = attach_to_scan(left, col, make_spec, through_joins)?;
                (Arc::new(inner), right.clone())
            } else {
                let inner = attach_to_scan(right, col - left_width, make_spec, through_joins)?;
                (left.clone(), Arc::new(inner))
            };
            Some(LogicalPlan::Join {
                left: new_left,
                right: new_right,
                join_type: *join_type,
                equi: equi.clone(),
                residual: residual.clone(),
            })
        }
        _ => None,
    }
}
