//! The rewrite-rule library. Rules are pure functions
//! `LogicalPlan -> LogicalPlan`; the [`crate::optimizer::Optimizer`]
//! sequences them into exhaustive and cost-based stages (§4.1's
//! "multi-stage optimization").

pub mod folding;
pub mod join_reorder;
pub mod partition_prune;
pub mod pruning;
pub mod pushdown;
pub mod semijoin;

use crate::expr::{AggExpr, ScalarExpr, SortKey, WindowExpr};
use crate::plan::LogicalPlan;
use std::sync::Arc;

/// Rebuild a plan with children replaced (shape-preserving).
pub fn with_children(plan: &LogicalPlan, new_children: Vec<Arc<LogicalPlan>>) -> LogicalPlan {
    let mut it = new_children.into_iter();
    match plan {
        LogicalPlan::Scan { .. } | LogicalPlan::Values { .. } => plan.clone(),
        LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
            input: it.next().expect("child"),
            predicate: predicate.clone(),
        },
        LogicalPlan::Project { exprs, names, .. } => LogicalPlan::Project {
            input: it.next().expect("child"),
            exprs: exprs.clone(),
            names: names.clone(),
        },
        LogicalPlan::Join {
            join_type,
            equi,
            residual,
            ..
        } => LogicalPlan::Join {
            left: it.next().expect("left"),
            right: it.next().expect("right"),
            join_type: *join_type,
            equi: equi.clone(),
            residual: residual.clone(),
        },
        LogicalPlan::Aggregate {
            group_exprs,
            grouping_sets,
            aggs,
            ..
        } => LogicalPlan::Aggregate {
            input: it.next().expect("child"),
            group_exprs: group_exprs.clone(),
            grouping_sets: grouping_sets.clone(),
            aggs: aggs.clone(),
        },
        LogicalPlan::Window { windows, .. } => LogicalPlan::Window {
            input: it.next().expect("child"),
            windows: windows.clone(),
        },
        LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
            input: it.next().expect("child"),
            keys: keys.clone(),
        },
        LogicalPlan::Limit { n, .. } => LogicalPlan::Limit {
            input: it.next().expect("child"),
            n: *n,
        },
        LogicalPlan::Union { .. } => LogicalPlan::Union {
            inputs: it.collect(),
        },
        LogicalPlan::SetOp { op, all, .. } => LogicalPlan::SetOp {
            op: *op,
            all: *all,
            left: it.next().expect("left"),
            right: it.next().expect("right"),
        },
    }
}

/// Apply `f` bottom-up over the whole plan (children first).
pub fn transform_up(
    plan: &LogicalPlan,
    f: &mut impl FnMut(LogicalPlan) -> LogicalPlan,
) -> LogicalPlan {
    let new_children: Vec<Arc<LogicalPlan>> = plan
        .children()
        .iter()
        .map(|c| Arc::new(transform_up(c, f)))
        .collect();
    let rebuilt = if new_children.is_empty() {
        plan.clone()
    } else {
        with_children(plan, new_children)
    };
    f(rebuilt)
}

/// Rewrite every scalar expression in a single node in place.
pub fn map_node_exprs(
    plan: LogicalPlan,
    f: &mut impl FnMut(ScalarExpr) -> ScalarExpr,
) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            partitions,
            semijoin_filters,
        } => LogicalPlan::Scan {
            table,
            projection,
            filters: filters.into_iter().map(|e| e.transform(f)).collect(),
            partitions,
            semijoin_filters,
        },
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input,
            predicate: predicate.transform(f),
        },
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => LogicalPlan::Project {
            input,
            exprs: exprs.into_iter().map(|e| e.transform(f)).collect(),
            names,
        },
        LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
        } => LogicalPlan::Join {
            left,
            right,
            join_type,
            equi: equi
                .into_iter()
                .map(|(l, r)| (l.transform(f), r.transform(f)))
                .collect(),
            residual: residual.map(|r| r.transform(f)),
        },
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            grouping_sets,
            aggs,
        } => LogicalPlan::Aggregate {
            input,
            group_exprs: group_exprs.into_iter().map(|e| e.transform(f)).collect(),
            grouping_sets,
            aggs: aggs
                .into_iter()
                .map(|a| AggExpr {
                    func: a.func,
                    arg: a.arg.map(|e| e.transform(f)),
                    distinct: a.distinct,
                })
                .collect(),
        },
        LogicalPlan::Window { input, windows } => LogicalPlan::Window {
            input,
            windows: windows
                .into_iter()
                .map(|w| WindowExpr {
                    func: w.func,
                    args: w.args.into_iter().map(|e| e.transform(f)).collect(),
                    partition_by: w.partition_by.into_iter().map(|e| e.transform(f)).collect(),
                    order_by: w
                        .order_by
                        .into_iter()
                        .map(|k| SortKey {
                            expr: k.expr.transform(f),
                            asc: k.asc,
                            nulls_first: k.nulls_first,
                        })
                        .collect(),
                    frame: w.frame,
                })
                .collect(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input,
            keys: keys
                .into_iter()
                .map(|k| SortKey {
                    expr: k.expr.transform(f),
                    asc: k.asc,
                    nulls_first: k.nulls_first,
                })
                .collect(),
        },
        other => other,
    }
}
