//! Projection pruning: push column requirements down to the scans so
//! the columnar reader fetches only what the query touches.
//!
//! Contract: `prune(plan, required, ms)` returns a plan whose output is the
//! old output restricted to `required` (ascending order). The top-level
//! entry requires every column, so the overall shape is preserved while
//! interior nodes shrink.

use crate::expr::{AggExpr, ScalarExpr, SortKey};
use crate::plan::JoinType;
use crate::plan::LogicalPlan;
use hive_common::Result;
use hive_metastore::{Constraint, Metastore};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Prune unused columns across the plan.
pub fn prune_columns(plan: &LogicalPlan, ms: &Metastore) -> Result<LogicalPlan> {
    let all: Vec<usize> = (0..plan.schema().len()).collect();
    prune(plan, &all, ms)
}

/// Build the old→new column mapping for a `required` list.
fn mapper(required: &[usize]) -> impl Fn(usize) -> Option<usize> + '_ {
    move |c| required.iter().position(|&r| r == c)
}

fn union_required(required: &[usize], extra: impl IntoIterator<Item = usize>) -> Vec<usize> {
    let mut set: BTreeSet<usize> = required.iter().copied().collect();
    set.extend(extra);
    set.into_iter().collect()
}

/// Wrap `plan` (whose output is `have`) in a projection producing
/// exactly `want` (both lists are old-column indexes).
fn restrict(plan: LogicalPlan, have: &[usize], want: &[usize]) -> Result<LogicalPlan> {
    if have == want {
        return Ok(plan);
    }
    let schema = plan.schema();
    let mut exprs = Vec::with_capacity(want.len());
    let mut names = Vec::with_capacity(want.len());
    for &w in want {
        let pos = have
            .iter()
            .position(|&h| h == w)
            .ok_or_else(|| hive_common::HiveError::Plan("pruning lost a column".into()))?;
        exprs.push(ScalarExpr::Column(pos));
        names.push(schema.field(pos).name.clone());
    }
    Ok(LogicalPlan::Project {
        input: Arc::new(plan),
        exprs,
        names,
    })
}

fn prune(plan: &LogicalPlan, required: &[usize], ms: &Metastore) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            partitions,
            semijoin_filters,
        } => {
            // Keep required output columns plus those the pushed filters
            // and semijoin reducers need.
            let filter_cols = filters.iter().flat_map(|f| f.columns());
            let semijoin_cols = semijoin_filters.iter().map(|s| s.target_col);
            let need = union_required(required, filter_cols.chain(semijoin_cols));
            let new_projection: Vec<usize> = need.iter().map(|&c| projection[c]).collect();
            let remap = mapper(&need);
            let new_filters = filters
                .iter()
                .map(|f| f.clone().remap_columns(&remap))
                .collect::<Result<Vec<_>>>()?;
            let new_semijoin = semijoin_filters
                .iter()
                .map(|s| {
                    let mut s2 = s.clone();
                    s2.target_col = remap(s.target_col)
                        .ok_or_else(|| hive_common::HiveError::Plan("semijoin col lost".into()))?;
                    Ok(s2)
                })
                .collect::<Result<Vec<_>>>()?;
            let scan = LogicalPlan::Scan {
                table: table.clone(),
                projection: new_projection,
                filters: new_filters,
                partitions: partitions.clone(),
                semijoin_filters: new_semijoin,
            };
            restrict(scan, &need, required)
        }
        LogicalPlan::Values { schema, rows } => {
            let new_schema = schema.project(required);
            let new_rows = rows
                .iter()
                .map(|r| required.iter().map(|&c| r[c].clone()).collect())
                .collect();
            Ok(LogicalPlan::Values {
                schema: new_schema,
                rows: new_rows,
            })
        }
        LogicalPlan::Filter { input, predicate } => {
            let need = union_required(required, predicate.columns());
            let child = prune(input, &need, ms)?;
            let remap = mapper(&need);
            let filtered = LogicalPlan::Filter {
                input: Arc::new(child),
                predicate: predicate.clone().remap_columns(&remap)?,
            };
            restrict(filtered, &need, required)
        }
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => {
            let kept_exprs: Vec<&ScalarExpr> = required.iter().map(|&c| &exprs[c]).collect();
            let child_need: Vec<usize> = {
                let mut s = BTreeSet::new();
                for e in &kept_exprs {
                    s.extend(e.columns());
                }
                s.into_iter().collect()
            };
            let child = prune(input, &child_need, ms)?;
            let remap = mapper(&child_need);
            Ok(LogicalPlan::Project {
                input: Arc::new(child),
                exprs: kept_exprs
                    .into_iter()
                    .map(|e| e.clone().remap_columns(&remap))
                    .collect::<Result<Vec<_>>>()?,
                names: required.iter().map(|&c| names[c].clone()).collect(),
            })
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
        } => {
            let left_len = left.schema().len();
            // Constraint-based join elimination (§4.1): an inner or left
            // join against a key-side table contributes nothing when no
            // column of that side is needed above and the declared
            // PK/FK constraints guarantee the join neither duplicates
            // nor (for INNER, via a NOT NULL foreign key) drops rows.
            if required.iter().all(|&c| c < left_len)
                && can_eliminate_right(left, right, *join_type, equi, residual, ms)
            {
                return prune(left, required, ms);
            }
            // Mirror case (join reordering may have put the key side on
            // the left): INNER only, since a LEFT join's left side is
            // row-preserving and cannot be dropped.
            if *join_type == JoinType::Inner && required.iter().all(|&c| c >= left_len) {
                let swapped: Vec<(ScalarExpr, ScalarExpr)> =
                    equi.iter().map(|(l, r)| (r.clone(), l.clone())).collect();
                if can_eliminate_right(right, left, JoinType::Inner, &swapped, residual, ms) {
                    let shifted: Vec<usize> = required.iter().map(|&c| c - left_len).collect();
                    return prune(right, &shifted, ms);
                }
            }
            let mut left_need: BTreeSet<usize> = BTreeSet::new();
            let mut right_need: BTreeSet<usize> = BTreeSet::new();
            for &c in required {
                if c < left_len {
                    left_need.insert(c);
                } else {
                    right_need.insert(c - left_len);
                }
            }
            for (l, r) in equi {
                left_need.extend(l.columns());
                right_need.extend(r.columns());
            }
            if let Some(res) = residual {
                for c in res.columns() {
                    if c < left_len {
                        left_need.insert(c);
                    } else {
                        right_need.insert(c - left_len);
                    }
                }
            }
            let left_list: Vec<usize> = left_need.into_iter().collect();
            let right_list: Vec<usize> = right_need.into_iter().collect();
            let new_left = prune(left, &left_list, ms)?;
            let new_right = prune(right, &right_list, ms)?;
            let lmap = mapper(&left_list);
            let rmap = mapper(&right_list);
            let new_equi = equi
                .iter()
                .map(|(l, r)| {
                    Ok((
                        l.clone().remap_columns(&lmap)?,
                        r.clone().remap_columns(&rmap)?,
                    ))
                })
                .collect::<Result<Vec<_>>>()?;
            let new_left_len = left_list.len();
            let new_residual = residual
                .as_ref()
                .map(|res| {
                    res.clone().remap_columns(&|c| {
                        if c < left_len {
                            lmap(c)
                        } else {
                            rmap(c - left_len).map(|n| n + new_left_len)
                        }
                    })
                })
                .transpose()?;
            let join = LogicalPlan::Join {
                left: Arc::new(new_left),
                right: Arc::new(new_right),
                join_type: *join_type,
                equi: new_equi,
                residual: new_residual,
            };
            // Output columns present now, in old-index terms.
            let have: Vec<usize> = if join_type.keeps_right() {
                left_list
                    .iter()
                    .copied()
                    .chain(right_list.iter().map(|&c| c + left_len))
                    .collect()
            } else {
                left_list.clone()
            };
            restrict(join, &have, required)
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            grouping_sets,
            aggs,
        } => {
            let n_groups = group_exprs.len();
            let gid_col = grouping_sets.as_ref().map(|_| n_groups + aggs.len());
            // Group keys always stay; aggs stay if required (or if the
            // grouping id is in play, to keep indexes stable, keep all).
            let keep_all_aggs = grouping_sets.is_some();
            let kept_aggs: Vec<usize> = (0..aggs.len())
                .filter(|i| keep_all_aggs || required.contains(&(n_groups + i)))
                .collect();
            let mut child_need: BTreeSet<usize> = BTreeSet::new();
            for g in group_exprs {
                child_need.extend(g.columns());
            }
            for &i in &kept_aggs {
                if let Some(arg) = &aggs[i].arg {
                    child_need.extend(arg.columns());
                }
            }
            let child_list: Vec<usize> = child_need.into_iter().collect();
            let child = prune(input, &child_list, ms)?;
            let remap = mapper(&child_list);
            let new_groups = group_exprs
                .iter()
                .map(|g| g.clone().remap_columns(&remap))
                .collect::<Result<Vec<_>>>()?;
            let new_aggs = kept_aggs
                .iter()
                .map(|&i| {
                    Ok(AggExpr {
                        func: aggs[i].func,
                        arg: aggs[i]
                            .arg
                            .clone()
                            .map(|a| a.remap_columns(&remap))
                            .transpose()?,
                        distinct: aggs[i].distinct,
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            let agg = LogicalPlan::Aggregate {
                input: Arc::new(child),
                group_exprs: new_groups,
                grouping_sets: grouping_sets.clone(),
                aggs: new_aggs,
            };
            let mut have: Vec<usize> = (0..n_groups).collect();
            have.extend(kept_aggs.iter().map(|&i| n_groups + i));
            if let Some(g) = gid_col {
                have.push(g);
            }
            restrict(agg, &have, required)
        }
        LogicalPlan::Window { input, windows } => {
            let in_len = input.schema().len();
            // Keep all input columns (window output indexes stay stable)
            // but prune below the window's input.
            let mut child_need: BTreeSet<usize> = (0..in_len).collect();
            for w in windows {
                for e in w.args.iter().chain(w.partition_by.iter()) {
                    child_need.extend(e.columns());
                }
                for k in &w.order_by {
                    child_need.extend(k.expr.columns());
                }
            }
            let child_list: Vec<usize> = child_need.into_iter().collect();
            let child = prune(input, &child_list, ms)?;
            let win = LogicalPlan::Window {
                input: Arc::new(child),
                windows: windows.clone(),
            };
            let have: Vec<usize> = (0..in_len + windows.len()).collect();
            restrict(win, &have, required)
        }
        LogicalPlan::Sort { input, keys } => {
            let need = union_required(required, keys.iter().flat_map(|k| k.expr.columns()));
            let child = prune(input, &need, ms)?;
            let remap = mapper(&need);
            let sorted = LogicalPlan::Sort {
                input: Arc::new(child),
                keys: keys
                    .iter()
                    .map(|k| {
                        Ok(SortKey {
                            expr: k.expr.clone().remap_columns(&remap)?,
                            asc: k.asc,
                            nulls_first: k.nulls_first,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
            };
            restrict(sorted, &need, required)
        }
        LogicalPlan::Limit { input, n } => Ok(LogicalPlan::Limit {
            input: Arc::new(prune(input, required, ms)?),
            n: *n,
        }),
        LogicalPlan::Union { inputs } => Ok(LogicalPlan::Union {
            inputs: inputs
                .iter()
                .map(|i| Ok(Arc::new(prune(i, required, ms)?)))
                .collect::<Result<Vec<_>>>()?,
        }),
        LogicalPlan::SetOp {
            op,
            all,
            left,
            right,
        } => {
            // Set operations compare whole rows: require everything.
            let n = left.schema().len();
            let full: Vec<usize> = (0..n).collect();
            let new = LogicalPlan::SetOp {
                op: *op,
                all: *all,
                left: Arc::new(prune(left, &full, ms)?),
                right: Arc::new(prune(right, &full, ms)?),
            };
            restrict(new, &full, required)
        }
    }
}

/// Can the right side of `left JOIN right ON equi` be dropped entirely,
/// assuming no output column of the right side is referenced above?
///
/// LEFT join: safe whenever the equi keys cover the right table's
/// declared PRIMARY KEY (at most one match per left row, and a left row
/// without a match survives either way). INNER join additionally needs
/// a declared FOREIGN KEY over NOT NULL columns on the left key source,
/// referencing that primary key, so every left row finds exactly one
/// match. Constraints are informational (RELY) in Hive; the optimizer
/// trusts them just as §4.1 describes.
fn can_eliminate_right(
    left: &LogicalPlan,
    right: &LogicalPlan,
    join_type: JoinType,
    equi: &[(ScalarExpr, ScalarExpr)],
    residual: &Option<ScalarExpr>,
    ms: &Metastore,
) -> bool {
    if residual.is_some() || equi.is_empty() {
        return false;
    }
    if !matches!(join_type, JoinType::Inner | JoinType::Left) {
        return false;
    }
    // Right side must be a bare scan: any filter or reducer could drop
    // matches and turn the join into a row filter we must preserve.
    let LogicalPlan::Scan {
        table,
        projection,
        filters,
        partitions,
        semijoin_filters,
    } = right
    else {
        return false;
    };
    if !filters.is_empty() || partitions.is_some() || !semijoin_filters.is_empty() {
        return false;
    }
    let Ok(meta) = ms.get_table(&table.db, &table.name) else {
        return false;
    };
    let Some(pk) = meta.primary_key() else {
        return false;
    };
    // Right key expressions must be plain columns naming the PK.
    let mut pairs: Vec<(&ScalarExpr, String)> = Vec::new();
    for (l, r) in equi {
        let ScalarExpr::Column(c) = r else {
            return false;
        };
        let Some(&tc) = projection.get(*c) else {
            return false;
        };
        pairs.push((l, table.schema.field(tc).name.clone()));
    }
    let key_names: BTreeSet<&str> = pairs.iter().map(|(_, n)| n.as_str()).collect();
    let pk_set: BTreeSet<&str> = pk.iter().map(|s| s.as_str()).collect();
    match join_type {
        // LEFT: uniqueness is enough; extra equi conditions only reduce
        // matches, which the preserved side does not care about.
        JoinType::Left => pk_set.is_subset(&key_names),
        // INNER: keys must be exactly the PK, and the left side must
        // carry a matching NOT NULL foreign key.
        JoinType::Inner => {
            if key_names != pk_set {
                return false;
            }
            // Resolve every left key to a source scan column.
            let mut src_table: Option<String> = None;
            let mut fk_pairs: Vec<(String, String)> = Vec::new();
            for (l, r_name) in &pairs {
                let ScalarExpr::Column(c) = l else {
                    return false;
                };
                let Some((t, col, nullable)) = resolve_source_column(left, *c) else {
                    return false;
                };
                if nullable {
                    return false;
                }
                match &src_table {
                    None => src_table = Some(t),
                    Some(prev) if *prev == t => {}
                    _ => return false,
                }
                fk_pairs.push((col, r_name.clone()));
            }
            let Some(src) = src_table else { return false };
            let Some((db, name)) = src.split_once('.') else {
                return false;
            };
            let Ok(src_meta) = ms.get_table(db, name) else {
                return false;
            };
            src_meta.constraints.iter().any(|c| {
                let Constraint::ForeignKey {
                    columns,
                    ref_table,
                    ref_columns,
                } = c
                else {
                    return false;
                };
                if ref_table != &table.qualified_name && ref_table != &table.name {
                    return false;
                }
                fk_pairs.iter().all(|(fcol, rcol)| {
                    columns
                        .iter()
                        .zip(ref_columns)
                        .any(|(fc, rc)| fc == fcol && rc == rcol)
                })
            })
        }
        _ => false,
    }
}

/// Trace output column `col` of `plan` down to the scan column that
/// produces it, returning (qualified table, column name, nullability as
/// observed at this point in the plan — a column pulled through the
/// null-producing side of an outer join reports nullable even when the
/// source field is NOT NULL).
fn resolve_source_column(plan: &LogicalPlan, col: usize) -> Option<(String, String, bool)> {
    match plan {
        LogicalPlan::Scan {
            table, projection, ..
        } => {
            let f = table.schema.field(*projection.get(col)?);
            Some((table.qualified_name.clone(), f.name.clone(), f.nullable))
        }
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(col)? {
            ScalarExpr::Column(c) => resolve_source_column(input, *c),
            _ => None,
        },
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => resolve_source_column(input, col),
        LogicalPlan::Join {
            left,
            right,
            join_type,
            ..
        } => {
            let ll = left.schema().len();
            if col < ll {
                let (t, c, n) = resolve_source_column(left, col)?;
                let forced = matches!(join_type, JoinType::Right | JoinType::Full);
                Some((t, c, n || forced))
            } else {
                let (t, c, n) = resolve_source_column(right, col - ll)?;
                let forced = matches!(join_type, JoinType::Left | JoinType::Full);
                Some((t, c, n || forced))
            }
        }
        _ => None,
    }
}
