//! Constant folding and predicate simplification.

use crate::eval::eval_scalar;
use crate::expr::ScalarExpr;
use crate::plan::LogicalPlan;
use crate::rules::{map_node_exprs, transform_up};
use hive_common::{Schema, Value};
use hive_sql::BinaryOp;
use std::sync::Arc;

/// Fold constant subexpressions and simplify boolean structure across
/// the whole plan; collapse always-false filters into empty relations
/// and drop always-true filters.
pub fn fold_constants(plan: &LogicalPlan) -> LogicalPlan {
    transform_up(plan, &mut |node| {
        let node = map_node_exprs(node, &mut fold_expr);
        simplify_node(node)
    })
}

/// Fold one expression node (called bottom-up by `transform`).
pub fn fold_expr(e: ScalarExpr) -> ScalarExpr {
    // Evaluate fully-constant deterministic subtrees.
    if e.is_constant() && !matches!(e, ScalarExpr::Literal(_)) {
        if let Ok(v) = eval_scalar(&e, &[]) {
            return ScalarExpr::Literal(v);
        }
    }
    match e {
        // NOT NOT x → x; NOT literal folds above.
        ScalarExpr::Not(inner) => match *inner {
            ScalarExpr::Not(x) => *x,
            ScalarExpr::Literal(Value::Boolean(b)) => ScalarExpr::Literal(Value::Boolean(!b)),
            other => ScalarExpr::Not(Box::new(other)),
        },
        ScalarExpr::Binary { op, left, right } => {
            let t = |b: &ScalarExpr| matches!(b, ScalarExpr::Literal(Value::Boolean(true)));
            let f = |b: &ScalarExpr| matches!(b, ScalarExpr::Literal(Value::Boolean(false)));
            match op {
                BinaryOp::And => {
                    if f(&left) || f(&right) {
                        ScalarExpr::Literal(Value::Boolean(false))
                    } else if t(&left) {
                        *right
                    } else if t(&right) {
                        *left
                    } else {
                        ScalarExpr::Binary { op, left, right }
                    }
                }
                BinaryOp::Or => {
                    if t(&left) || t(&right) {
                        ScalarExpr::Literal(Value::Boolean(true))
                    } else if f(&left) {
                        *right
                    } else if f(&right) {
                        *left
                    } else {
                        ScalarExpr::Binary { op, left, right }
                    }
                }
                _ => ScalarExpr::Binary { op, left, right },
            }
        }
        other => other,
    }
}

fn simplify_node(node: LogicalPlan) -> LogicalPlan {
    match node {
        LogicalPlan::Filter { input, predicate } => match &predicate {
            ScalarExpr::Literal(Value::Boolean(true)) => (*input).clone(),
            ScalarExpr::Literal(Value::Boolean(false)) | ScalarExpr::Literal(Value::Null) => {
                empty_of(&input.schema())
            }
            _ => LogicalPlan::Filter { input, predicate },
        },
        // Merge stacked filters.
        other => other,
    }
}

/// An empty relation with the given schema.
pub fn empty_of(schema: &Schema) -> LogicalPlan {
    LogicalPlan::Values {
        schema: schema.clone(),
        rows: vec![],
    }
}

/// Merge adjacent Filter nodes (Filter(Filter(x)) → Filter(x)).
pub fn merge_filters(plan: &LogicalPlan) -> LogicalPlan {
    transform_up(plan, &mut |node| match node {
        LogicalPlan::Filter { input, predicate } => match input.as_ref() {
            LogicalPlan::Filter {
                input: inner,
                predicate: p2,
            } => LogicalPlan::Filter {
                input: inner.clone(),
                predicate: ScalarExpr::Binary {
                    op: BinaryOp::And,
                    left: Box::new(predicate),
                    right: Box::new(p2.clone()),
                },
            },
            _ => LogicalPlan::Filter { input, predicate },
        },
        other => other,
    })
}

/// Collapse trivial projections (identity over the full input).
pub fn remove_trivial_projects(plan: &LogicalPlan) -> LogicalPlan {
    transform_up(plan, &mut |node| match &node {
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => {
            let in_schema = input.schema();
            let identity = exprs.len() == in_schema.len()
                && exprs
                    .iter()
                    .enumerate()
                    .all(|(i, e)| matches!(e, ScalarExpr::Column(c) if *c == i))
                && names
                    .iter()
                    .enumerate()
                    .all(|(i, n)| in_schema.field(i).name == *n);
            if identity {
                (**input).clone()
            } else {
                node
            }
        }
        _ => node,
    })
}

/// Stacked Project(Project(x)) composition when the outer is made of
/// column refs and cheap expressions.
pub fn merge_projects(plan: &LogicalPlan) -> LogicalPlan {
    transform_up(plan, &mut |node| match &node {
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => {
            if let LogicalPlan::Project {
                input: inner_input,
                exprs: inner_exprs,
                ..
            } = input.as_ref()
            {
                // Substitute inner expressions into the outer.
                let composed: Vec<ScalarExpr> = exprs
                    .iter()
                    .map(|e| {
                        e.clone().transform(&mut |x| match x {
                            ScalarExpr::Column(c) => inner_exprs[c].clone(),
                            other => other,
                        })
                    })
                    .collect();
                LogicalPlan::Project {
                    input: inner_input.clone(),
                    exprs: composed,
                    names: names.clone(),
                }
            } else {
                node
            }
        }
        _ => node,
    })
}

/// Propagate emptiness: joins/filters/aggregates over empty inputs.
pub fn prune_empty(plan: &LogicalPlan) -> LogicalPlan {
    transform_up(plan, &mut |node| {
        let is_empty = |p: &Arc<LogicalPlan>| matches!(p.as_ref(), LogicalPlan::Values { rows, .. } if rows.is_empty());
        match &node {
            LogicalPlan::Join {
                left,
                right,
                join_type,
                ..
            } => match join_type {
                crate::plan::JoinType::Inner
                | crate::plan::JoinType::Cross
                | crate::plan::JoinType::Semi => {
                    if is_empty(left) || is_empty(right) {
                        empty_of(&node.schema())
                    } else {
                        node
                    }
                }
                crate::plan::JoinType::Anti => {
                    if is_empty(left) {
                        empty_of(&node.schema())
                    } else {
                        node
                    }
                }
                _ => node,
            },
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Window { input, .. } => {
                if is_empty(input) {
                    empty_of(&node.schema())
                } else {
                    node
                }
            }
            _ => node,
        }
    })
}
