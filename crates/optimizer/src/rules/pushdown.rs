//! Predicate pushdown: move filters toward the scans they constrain,
//! extract equi-join conditions from cross joins (comma joins), and sink
//! residual scan predicates into the `Scan.filters` list where the I/O
//! layer turns them into sargs.

use crate::expr::ScalarExpr;
use crate::plan::{JoinType, LogicalPlan};
use crate::rules::transform_up;
use hive_sql::BinaryOp;
use std::sync::Arc;

/// One pushdown pass (run to fixpoint by the optimizer driver).
pub fn push_down_predicates(plan: &LogicalPlan) -> LogicalPlan {
    transform_up(plan, &mut push_one)
}

fn push_one(node: LogicalPlan) -> LogicalPlan {
    let LogicalPlan::Filter { input, predicate } = node else {
        return node;
    };
    match input.as_ref() {
        LogicalPlan::Project {
            input: p_input,
            exprs,
            names,
        } => {
            // Inline projection expressions into the predicate and push
            // below (only when all substituted expressions are
            // deterministic).
            let mut ok = true;
            let substituted = predicate.clone().transform(&mut |e| match e {
                ScalarExpr::Column(c) => {
                    let sub = exprs[c].clone();
                    if !sub.is_deterministic() {
                        ok = false;
                    }
                    sub
                }
                other => other,
            });
            if !ok {
                return LogicalPlan::Filter { input, predicate };
            }
            LogicalPlan::Project {
                input: Arc::new(push_one(LogicalPlan::Filter {
                    input: p_input.clone(),
                    predicate: substituted,
                })),
                exprs: exprs.clone(),
                names: names.clone(),
            }
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
        } => {
            let left_len = left.schema().len();
            let mut to_left: Vec<ScalarExpr> = Vec::new();
            let mut to_right: Vec<ScalarExpr> = Vec::new();
            let mut new_equi = equi.clone();
            let mut keep: Vec<ScalarExpr> = Vec::new();
            let can_push_left = matches!(
                join_type,
                JoinType::Inner
                    | JoinType::Cross
                    | JoinType::Left
                    | JoinType::Semi
                    | JoinType::Anti
            );
            let can_push_right = matches!(
                join_type,
                JoinType::Inner | JoinType::Cross | JoinType::Right
            );
            let can_extract_equi = matches!(join_type, JoinType::Inner | JoinType::Cross);
            for part in predicate.split_conjunction() {
                let cols = part.columns();
                let all_left = cols.iter().all(|&c| c < left_len);
                let all_right = cols.iter().all(|&c| c >= left_len);
                if all_left && !cols.is_empty() && can_push_left {
                    to_left.push(part.clone());
                } else if all_right && !cols.is_empty() && can_push_right {
                    to_right.push(
                        part.clone()
                            .remap_columns(&|c| Some(c - left_len))
                            .expect("all right"),
                    );
                } else if can_extract_equi {
                    // Equi-condition extraction: left_expr = right_expr.
                    if let ScalarExpr::Binary {
                        op: BinaryOp::Eq,
                        left: l,
                        right: r,
                    } = part
                    {
                        let lc = l.columns();
                        let rc = r.columns();
                        let l_left = !lc.is_empty() && lc.iter().all(|&c| c < left_len);
                        let l_right = !lc.is_empty() && lc.iter().all(|&c| c >= left_len);
                        let r_left = !rc.is_empty() && rc.iter().all(|&c| c < left_len);
                        let r_right = !rc.is_empty() && rc.iter().all(|&c| c >= left_len);
                        if l_left && r_right {
                            new_equi.push((
                                (**l).clone(),
                                (**r)
                                    .clone()
                                    .remap_columns(&|c| Some(c - left_len))
                                    .expect("right side"),
                            ));
                            continue;
                        }
                        if l_right && r_left {
                            new_equi.push((
                                (**r).clone(),
                                (**l)
                                    .clone()
                                    .remap_columns(&|c| Some(c - left_len))
                                    .expect("right side"),
                            ));
                            continue;
                        }
                    }
                    keep.push(part.clone());
                } else {
                    keep.push(part.clone());
                }
            }
            let new_left: Arc<LogicalPlan> = match ScalarExpr::conjunction(to_left) {
                Some(p) => Arc::new(push_one(LogicalPlan::Filter {
                    input: left.clone(),
                    predicate: p,
                })),
                None => left.clone(),
            };
            let new_right: Arc<LogicalPlan> = match ScalarExpr::conjunction(to_right) {
                Some(p) => Arc::new(push_one(LogicalPlan::Filter {
                    input: right.clone(),
                    predicate: p,
                })),
                None => right.clone(),
            };
            // Cross joins that gained equi conditions become inner.
            let new_type = if *join_type == JoinType::Cross && !new_equi.is_empty() {
                JoinType::Inner
            } else {
                *join_type
            };
            let join = LogicalPlan::Join {
                left: new_left,
                right: new_right,
                join_type: new_type,
                equi: new_equi,
                residual: residual.clone(),
            };
            match ScalarExpr::conjunction(keep) {
                Some(p) => LogicalPlan::Filter {
                    input: Arc::new(join),
                    predicate: p,
                },
                None => join,
            }
        }
        LogicalPlan::Aggregate {
            input: a_input,
            group_exprs,
            grouping_sets,
            aggs,
        } => {
            // Push conjuncts that reference only plain group-key columns
            // (disabled under grouping sets: filters over partially
            // grouped output are not equivalent below the aggregate).
            if grouping_sets.is_some() {
                return LogicalPlan::Filter { input, predicate };
            }
            let mut below: Vec<ScalarExpr> = Vec::new();
            let mut keep: Vec<ScalarExpr> = Vec::new();
            for part in predicate.split_conjunction() {
                let cols = part.columns();
                let only_keys = cols.iter().all(|&c| c < group_exprs.len());
                if only_keys && !cols.is_empty() {
                    // Rewrite over aggregate input by substituting the
                    // group expressions.
                    let rewritten = part.clone().transform(&mut |e| match e {
                        ScalarExpr::Column(c) if c < group_exprs.len() => group_exprs[c].clone(),
                        other => other,
                    });
                    below.push(rewritten);
                } else {
                    keep.push(part.clone());
                }
            }
            if below.is_empty() {
                return LogicalPlan::Filter { input, predicate };
            }
            let pushed = LogicalPlan::Aggregate {
                input: Arc::new(push_one(LogicalPlan::Filter {
                    input: a_input.clone(),
                    predicate: ScalarExpr::conjunction(below).expect("nonempty"),
                })),
                group_exprs: group_exprs.clone(),
                grouping_sets: grouping_sets.clone(),
                aggs: aggs.clone(),
            };
            match ScalarExpr::conjunction(keep) {
                Some(p) => LogicalPlan::Filter {
                    input: Arc::new(pushed),
                    predicate: p,
                },
                None => pushed,
            }
        }
        LogicalPlan::Union { inputs } => LogicalPlan::Union {
            inputs: inputs
                .iter()
                .map(|i| {
                    Arc::new(push_one(LogicalPlan::Filter {
                        input: i.clone(),
                        predicate: predicate.clone(),
                    }))
                })
                .collect(),
        },
        LogicalPlan::Sort {
            input: s_input,
            keys,
        } => LogicalPlan::Sort {
            input: Arc::new(push_one(LogicalPlan::Filter {
                input: s_input.clone(),
                predicate,
            })),
            keys: keys.clone(),
        },
        LogicalPlan::Filter {
            input: f_input,
            predicate: p2,
        } => push_one(LogicalPlan::Filter {
            input: f_input.clone(),
            predicate: ScalarExpr::Binary {
                op: BinaryOp::And,
                left: Box::new(predicate),
                right: Box::new(p2.clone()),
            },
        }),
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            partitions,
            semijoin_filters,
        } => {
            // Sink deterministic predicates into the scan.
            let mut new_filters = filters.clone();
            let mut keep: Vec<ScalarExpr> = Vec::new();
            for part in predicate.split_conjunction() {
                if part.is_deterministic() {
                    new_filters.push(part.clone());
                } else {
                    keep.push(part.clone());
                }
            }
            let scan = LogicalPlan::Scan {
                table: table.clone(),
                projection: projection.clone(),
                filters: new_filters,
                partitions: partitions.clone(),
                semijoin_filters: semijoin_filters.clone(),
            };
            match ScalarExpr::conjunction(keep) {
                Some(p) => LogicalPlan::Filter {
                    input: Arc::new(scan),
                    predicate: p,
                },
                None => scan,
            }
        }
        _ => LogicalPlan::Filter { input, predicate },
    }
}
