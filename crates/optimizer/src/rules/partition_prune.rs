//! Static partition pruning (§3.1: "Hive will be able to skip scanning
//! full partitions easily for queries that filter on those values").
//!
//! For every scan of a partitioned table whose pushed filters constrain
//! the partition columns, evaluate those filter conjuncts against each
//! registered partition's values and record the surviving directory
//! list on the scan.

use crate::eval::eval_scalar;
use crate::expr::ScalarExpr;
use crate::plan::LogicalPlan;
use crate::rules::transform_up;
use hive_common::{Result, Value};
use hive_metastore::Metastore;

/// Apply static partition pruning using the catalog's partition lists.
pub fn prune_partitions(plan: &LogicalPlan, ms: &Metastore) -> Result<LogicalPlan> {
    let mut err: Option<hive_common::HiveError> = None;
    let out = transform_up(plan, &mut |node| match prune_scan(node, ms) {
        Ok(p) => p,
        Err(e) => {
            err = Some(e);
            LogicalPlan::Values {
                schema: hive_common::Schema::empty(),
                rows: vec![],
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

fn prune_scan(node: LogicalPlan, ms: &Metastore) -> Result<LogicalPlan> {
    let LogicalPlan::Scan {
        table,
        projection,
        filters,
        partitions,
        semijoin_filters,
    } = node
    else {
        return Ok(node);
    };
    if table.partition_cols.is_empty() || partitions.is_some() {
        return Ok(LogicalPlan::Scan {
            table,
            projection,
            filters,
            partitions,
            semijoin_filters,
        });
    }
    // Output-column index of each partition column, when projected.
    let part_out_cols: Vec<(usize, usize)> = table
        .partition_cols
        .iter()
        .enumerate()
        .filter_map(|(k, &schema_col)| {
            projection
                .iter()
                .position(|&p| p == schema_col)
                .map(|out| (out, k))
        })
        .collect();
    if part_out_cols.is_empty() {
        return Ok(LogicalPlan::Scan {
            table,
            projection,
            filters,
            partitions,
            semijoin_filters,
        });
    }
    // Filter conjuncts that reference only partition columns.
    let part_conjuncts: Vec<&ScalarExpr> = filters
        .iter()
        .flat_map(|f| f.split_conjunction())
        .filter(|c| {
            let cols = c.columns();
            !cols.is_empty()
                && cols
                    .iter()
                    .all(|col| part_out_cols.iter().any(|(out, _)| out == col))
        })
        .collect();
    if part_conjuncts.is_empty() {
        return Ok(LogicalPlan::Scan {
            table,
            projection,
            filters,
            partitions,
            semijoin_filters,
        });
    }
    // Evaluate each conjunct per partition: build a pseudo-row where the
    // partition columns carry the partition's values.
    let cat_table = ms.get_table(&table.db, &table.name)?;
    let row_width = projection.len();
    let mut selected: Vec<String> = Vec::new();
    for (dir, info) in &cat_table.partitions {
        let mut row = vec![Value::Null; row_width];
        for &(out, k) in &part_out_cols {
            row[out] = info.values.get(k).cloned().unwrap_or(Value::Null);
        }
        let keep = part_conjuncts
            .iter()
            .all(|c| matches!(eval_scalar(c, &row), Ok(Value::Boolean(true))));
        if keep {
            selected.push(dir.clone());
        }
    }
    Ok(LogicalPlan::Scan {
        table,
        projection,
        filters,
        partitions: Some(selected),
        semijoin_filters,
    })
}
