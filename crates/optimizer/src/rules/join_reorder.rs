//! Cost-based join reordering (§4.1).
//!
//! Flattens a tree of inner/cross joins into a join graph, then rebuilds
//! a left-deep order greedily: root the tree at the largest connected
//! relation (the fact table — the executor builds hash tables on the
//! *right* input, so small filtered dimensions should join in as build
//! sides) and at each step attach the connected relation that minimizes
//! the estimated intermediate cardinality (falling back to Cartesian
//! expansion only when no connected relation remains). A final
//! projection restores the original column order.

use crate::expr::ScalarExpr;
use crate::plan::{JoinType, LogicalPlan};
use crate::rules::transform_up;
use crate::stats::{estimate_rows, StatsSource};
use hive_common::Result;
use std::sync::Arc;

/// Reorder all maximal inner-join trees in the plan.
pub fn reorder_joins(plan: &LogicalPlan, stats: &dyn StatsSource) -> Result<LogicalPlan> {
    if stats.histograms_enabled() {
        return reorder_top_down(plan, stats);
    }
    let mut err = None;
    let out = transform_up(plan, &mut |node| {
        if is_reorderable_join(&node) {
            match reorder_one(&node, stats, false) {
                Ok(p) => p,
                Err(e) => {
                    err = Some(e);
                    node
                }
            }
        } else {
            node
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Histogram-path traversal: joins are visited top-down so `flatten`
/// sees the whole maximal inner-join tree at once. (The bottom-up pass
/// rewrites inner joins first and caps each at a column-restoring
/// Project, which the outer flatten then treats as one opaque relation
/// — reordering degenerates to pairwise build-side choice and a
/// histogram can never move a selective dimension ahead of a bulky
/// one.) Relations discovered by `flatten` are recursed into, so join
/// trees under aggregates, set ops, or non-inner joins still reorder.
fn reorder_top_down(plan: &LogicalPlan, stats: &dyn StatsSource) -> Result<LogicalPlan> {
    if is_reorderable_join(plan) {
        // Greedy left-deep rebuild versus the authored shape, costed
        // under the same estimator. Greedy's search space is left-deep
        // chains only; an authored bushy shape (e.g. cross-joining two
        // tiny dimensions before one multi-key probe of the fact) can
        // be strictly cheaper, and on a tie the authored tree wins —
        // it needs no column-restoring projection.
        let greedy = reorder_one(plan, stats, true)?;
        let authored = reorder_below_joins(plan, stats)?;
        return Ok(
            if join_tree_cost(&greedy, stats) < join_tree_cost(&authored, stats) {
                greedy
            } else {
                authored
            },
        );
    }
    let children = plan.children();
    if children.is_empty() {
        return Ok(plan.clone());
    }
    let mut new_children = Vec::with_capacity(children.len());
    for c in children {
        new_children.push(Arc::new(reorder_top_down(c, stats)?));
    }
    Ok(super::with_children(plan, new_children))
}

/// Keep this maximal inner-join tree's authored shape, recursing only
/// into the relations below it (which may themselves contain join trees
/// — subqueries, derived tables — that still get their own
/// authored-versus-greedy choice).
fn reorder_below_joins(plan: &LogicalPlan, stats: &dyn StatsSource) -> Result<LogicalPlan> {
    if is_reorderable_join(plan) {
        let children = plan.children();
        let mut new_children = Vec::with_capacity(children.len());
        for c in children {
            new_children.push(Arc::new(reorder_below_joins(c, stats)?));
        }
        Ok(super::with_children(plan, new_children))
    } else {
        reorder_top_down(plan, stats)
    }
}

/// Cost of a join tree as the sum of estimated output rows over every
/// inner/cross join node: every intermediate a plan materializes is
/// work its downstream operators pay for again.
fn join_tree_cost(plan: &LogicalPlan, stats: &dyn StatsSource) -> f64 {
    let mut cost = 0.0;
    plan.visit(&mut |p| {
        if is_reorderable_join(p) {
            cost += estimate_rows(p, stats);
        }
    });
    cost
}

fn is_reorderable_join(node: &LogicalPlan) -> bool {
    matches!(
        node,
        LogicalPlan::Join {
            join_type: JoinType::Inner | JoinType::Cross,
            ..
        }
    )
}

/// One relation in the flattened join graph.
struct Rel {
    plan: Arc<LogicalPlan>,
    /// Offset of this relation's columns in the original global order.
    offset: usize,
    width: usize,
    rows: f64,
}

/// An equi edge in global column coordinates.
struct Edge {
    left_rel: usize,
    right_rel: usize,
    /// Exprs in each relation's local coordinates.
    left_expr: ScalarExpr,
    right_expr: ScalarExpr,
    used: bool,
}

fn reorder_one(node: &LogicalPlan, stats: &dyn StatsSource, deep: bool) -> Result<LogicalPlan> {
    // Flatten.
    let mut rels: Vec<Rel> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    let mut residuals: Vec<ScalarExpr> = Vec::new(); // global coords
    flatten(node, &mut rels, &mut edges, &mut residuals, stats, deep)?;
    if rels.len() < 2 {
        return Ok(node.clone());
    }

    // Greedy construction.
    let n = rels.len();
    let mut joined = vec![false; n];
    // Current output layout: list of (rel index, local col) in order.
    let mut layout: Vec<(usize, usize)> = Vec::new();

    // Root the left-deep tree at the largest connected relation (the
    // fact table): the executor builds its hash table on the *right*
    // input, so smaller relations should join in as build sides.
    let start = (0..n)
        .max_by(|&a, &b| {
            let conn_a = edges.iter().any(|e| e.left_rel == a || e.right_rel == a);
            let conn_b = edges.iter().any(|e| e.left_rel == b || e.right_rel == b);
            conn_a
                .cmp(&conn_b)
                .then(rels[a].rows.partial_cmp(&rels[b].rows).unwrap())
        })
        .expect("nonempty");
    joined[start] = true;
    let mut current: Arc<LogicalPlan> = rels[start].plan.clone();
    let mut current_rows = rels[start].rows;
    layout.extend((0..rels[start].width).map(|c| (start, c)));

    // On the histogram path a candidate must beat the incumbent by a
    // real margin: reservoir sampling and bucket interpolation put
    // noise on estimates that are logically equal (e.g. two unfiltered
    // FK dimensions), and deviating from the authored order on noise
    // buys nothing while the column-restoring projection it forces
    // costs real rows. Genuine wins (a filtered dimension versus an
    // unfiltered one) differ by integer factors, far past 10%.
    let margin = if stats.histograms_enabled() { 0.9 } else { 1.0 };
    while joined.iter().any(|j| !j) {
        // Candidate = unjoined relation; prefer connected ones, pick the
        // one minimizing estimated output rows.
        let mut best: Option<(usize, f64, bool)> = None; // (rel, est, connected)
        for r in 0..n {
            if joined[r] {
                continue;
            }
            let connected = edges.iter().any(|e| {
                !e.used
                    && ((joined[e.left_rel] && e.right_rel == r)
                        || (joined[e.right_rel] && e.left_rel == r))
            });
            let est = if connected {
                if stats.histograms_enabled() {
                    // Cost the candidate through the full estimator
                    // (histogram overlap on the join keys, runtime
                    // feedback when present) by building the join it
                    // would produce.
                    candidate_join_estimate(
                        &current,
                        current_rows,
                        &rels[r],
                        r,
                        &edges,
                        &joined,
                        &layout,
                        stats,
                    )
                } else {
                    // Constant-selectivity oracle: size-containment on
                    // the raw row counts.
                    current_rows * rels[r].rows / current_rows.max(rels[r].rows).max(1.0)
                }
            } else {
                current_rows * rels[r].rows
            };
            let better = match &best {
                None => true,
                Some((_, b_est, b_conn)) => {
                    (connected && !b_conn) || (connected == *b_conn && est < *b_est * margin)
                }
            };
            if better {
                best = Some((r, est, connected));
            }
        }
        let (next, est, connected) = best.expect("some relation remains");
        // Gather join conditions between `current` and `next`.
        let mut equi: Vec<(ScalarExpr, ScalarExpr)> = Vec::new();
        for e in edges.iter_mut().filter(|e| !e.used) {
            let (cur_rel, cur_expr, next_expr) = if joined[e.left_rel] && e.right_rel == next {
                (e.left_rel, &e.left_expr, &e.right_expr)
            } else if joined[e.right_rel] && e.left_rel == next {
                (e.right_rel, &e.right_expr, &e.left_expr)
            } else {
                continue;
            };
            // Remap the current-side expr into the accumulated layout.
            let left = cur_expr
                .clone()
                .remap_columns(&|c| layout.iter().position(|&(r, lc)| r == cur_rel && lc == c))?;
            equi.push((left, next_expr.clone()));
            e.used = true;
        }
        let join_type = if connected && !equi.is_empty() {
            JoinType::Inner
        } else {
            JoinType::Cross
        };
        current = Arc::new(LogicalPlan::Join {
            left: current,
            right: rels[next].plan.clone(),
            join_type,
            equi,
            residual: None,
        });
        layout.extend((0..rels[next].width).map(|c| (next, c)));
        joined[next] = true;
        current_rows = est.max(1.0);
    }

    // Any unused edges (cycles) and residuals become a filter on top,
    // remapped from global coordinates to the final layout.
    let global_to_layout = |g: usize| -> Option<usize> {
        // Find which relation owns global column g.
        let rel = rels
            .iter()
            .position(|r| g >= r.offset && g < r.offset + r.width)?;
        let local = g - rels[rel].offset;
        layout.iter().position(|&(r, lc)| r == rel && lc == local)
    };
    let mut filters: Vec<ScalarExpr> = Vec::new();
    for e in edges.iter().filter(|e| !e.used) {
        let l = e.left_expr.clone().remap_columns(&|c| {
            layout
                .iter()
                .position(|&(r, lc)| r == e.left_rel && lc == c)
        })?;
        let r = e.right_expr.clone().remap_columns(&|c| {
            layout
                .iter()
                .position(|&(r2, lc)| r2 == e.right_rel && lc == c)
        })?;
        filters.push(ScalarExpr::eq(l, r));
    }
    for res in &residuals {
        filters.push(res.clone().remap_columns(&global_to_layout)?);
    }
    let mut out: Arc<LogicalPlan> = current;
    if let Some(pred) = ScalarExpr::conjunction(filters) {
        out = Arc::new(LogicalPlan::Filter {
            input: out,
            predicate: pred,
        });
    }

    // Restore the original global column order.
    let schema = out.schema();
    let total: usize = rels.iter().map(|r| r.width).sum();
    let mut exprs = Vec::with_capacity(total);
    let mut names = Vec::with_capacity(total);
    for g in 0..total {
        let pos = global_to_layout(g)
            .ok_or_else(|| hive_common::HiveError::Plan("lost column in reorder".into()))?;
        exprs.push(ScalarExpr::Column(pos));
        names.push(schema.field(pos).name.clone());
    }
    Ok(LogicalPlan::Project {
        input: out,
        exprs,
        names,
    })
}

/// Estimated output rows of joining `rel` onto the accumulated
/// `current` tree, costed through [`estimate_rows`] on the candidate
/// join node so histogram overlap and runtime feedback participate.
/// Falls back to size-containment when the candidate's join keys
/// cannot be expressed over the accumulated layout.
#[allow(clippy::too_many_arguments)]
fn candidate_join_estimate(
    current: &Arc<LogicalPlan>,
    current_rows: f64,
    rel: &Rel,
    r: usize,
    edges: &[Edge],
    joined: &[bool],
    layout: &[(usize, usize)],
    stats: &dyn StatsSource,
) -> f64 {
    let fallback = current_rows * rel.rows / current_rows.max(rel.rows).max(1.0);
    let mut equi: Vec<(ScalarExpr, ScalarExpr)> = Vec::new();
    for e in edges.iter().filter(|e| !e.used) {
        let (cur_rel, cur_expr, next_expr) = if joined[e.left_rel] && e.right_rel == r {
            (e.left_rel, &e.left_expr, &e.right_expr)
        } else if joined[e.right_rel] && e.left_rel == r {
            (e.right_rel, &e.right_expr, &e.left_expr)
        } else {
            continue;
        };
        let Ok(left) = cur_expr
            .clone()
            .remap_columns(&|c| layout.iter().position(|&(rr, lc)| rr == cur_rel && lc == c))
        else {
            return fallback;
        };
        equi.push((left, next_expr.clone()));
    }
    if equi.is_empty() {
        return fallback;
    }
    let candidate = LogicalPlan::Join {
        left: current.clone(),
        right: rel.plan.clone(),
        join_type: JoinType::Inner,
        equi,
        residual: None,
    };
    estimate_rows(&candidate, stats).max(1.0)
}

/// Flatten nested inner/cross joins into relations + edges.
fn flatten(
    node: &LogicalPlan,
    rels: &mut Vec<Rel>,
    edges: &mut Vec<Edge>,
    residuals: &mut Vec<ScalarExpr>,
    stats: &dyn StatsSource,
    deep: bool,
) -> Result<()> {
    match node {
        LogicalPlan::Join {
            left,
            right,
            join_type: JoinType::Inner | JoinType::Cross,
            equi,
            residual,
        } => {
            let left_start_rel = rels.len();
            flatten(left, rels, edges, residuals, stats, deep)?;
            let right_start_rel = rels.len();
            let left_width: usize = rels[left_start_rel..right_start_rel]
                .iter()
                .map(|r| r.width)
                .sum();
            let left_offset = rels.get(left_start_rel).map(|r| r.offset).unwrap_or(0);
            flatten(right, rels, edges, residuals, stats, deep)?;
            // Register equi edges: left expr over left subtree's local
            // coords, right over right subtree's.
            for (l, r) in equi {
                let (l_rel, l_local) = locate(rels, left_start_rel, right_start_rel, l, 0)?;
                let (r_rel, r_local) = locate(rels, right_start_rel, rels.len(), r, 0)?;
                edges.push(Edge {
                    left_rel: l_rel,
                    right_rel: r_rel,
                    left_expr: l_local,
                    right_expr: r_local,
                    used: false,
                });
            }
            if let Some(res) = residual {
                // Residual over (left ++ right) local coords → global.
                let shifted = res.clone().remap_columns(&|c| {
                    if c < left_width {
                        Some(left_offset + c)
                    } else {
                        let right_offset = rels.get(right_start_rel).map(|r| r.offset)?;
                        Some(right_offset + (c - left_width))
                    }
                })?;
                residuals.push(shifted);
            }
            Ok(())
        }
        other => {
            let plan = if deep {
                reorder_top_down(other, stats)?
            } else {
                other.clone()
            };
            let offset = rels.iter().map(|r| r.width).sum();
            let width = other.schema().len();
            rels.push(Rel {
                rows: estimate_rows(&plan, stats),
                plan: Arc::new(plan),
                offset,
                width,
            });
            Ok(())
        }
    }
}

/// Express a join-side expr in the local coordinates of the single
/// relation it references (errors when an expr spans relations — those
/// stay as residuals upstream of this rule).
fn locate(
    rels: &[Rel],
    rel_start: usize,
    rel_end: usize,
    expr: &ScalarExpr,
    _unused: usize,
) -> Result<(usize, ScalarExpr)> {
    // The expr is in the subtree's combined coordinates; relation widths
    // inside [rel_start, rel_end) partition that space in order.
    let cols = expr.columns();
    let mut acc = 0usize;
    for (idx, rel) in rels[rel_start..rel_end].iter().enumerate() {
        let lo = acc;
        let hi = acc + rel.width;
        if cols.iter().all(|&c| c >= lo && c < hi) {
            let local = expr.clone().remap_columns(&|c| Some(c - lo))?;
            return Ok((rel_start + idx, local));
        }
        acc = hi;
    }
    Err(hive_common::HiveError::Plan(
        "join key spans multiple relations".into(),
    ))
}
