//! Stable plan fingerprints.
//!
//! Used by the shared-work optimizer (§4.5) to detect identical
//! subplans within one query, by the results cache (§4.3) as part of its
//! key, and by re-optimization (§4.2) to index persisted runtime stats.

use crate::plan::LogicalPlan;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// A 64-bit structural fingerprint of a plan.
pub fn fingerprint(plan: &LogicalPlan) -> u64 {
    let mut h = DefaultHasher::new();
    hash_plan(plan, &mut h);
    h.finish()
}

/// Hex form used in diagnostics and as map keys.
pub fn fingerprint_hex(plan: &LogicalPlan) -> String {
    format!("{:016x}", fingerprint(plan))
}

fn hash_plan(plan: &LogicalPlan, h: &mut DefaultHasher) {
    // Debug rendering is stable for our fixed enum shapes and keeps this
    // honest as the plan grows; node-kind discriminants are mixed in to
    // cheaply disambiguate.
    std::mem::discriminant(plan).hash(h);
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            partitions,
            semijoin_filters,
        } => {
            table.qualified_name.hash(h);
            table.handler.hash(h);
            // Pushed external queries distinguish otherwise-identical
            // scans (the results cache and shared work key on this).
            table.external_query.hash(h);
            projection.hash(h);
            for f in filters {
                format!("{f}").hash(h);
            }
            partitions.hash(h);
            semijoin_filters.len().hash(h);
            for s in semijoin_filters {
                s.source_key.hash(h);
                s.target_col.hash(h);
                hash_plan(&s.source, h);
            }
        }
        LogicalPlan::Values { rows, .. } => {
            rows.len().hash(h);
            format!("{rows:?}").hash(h);
        }
        LogicalPlan::Filter { predicate, .. } => format!("{predicate}").hash(h),
        LogicalPlan::Project { exprs, names, .. } => {
            for e in exprs {
                format!("{e}").hash(h);
            }
            names.hash(h);
        }
        LogicalPlan::Join {
            join_type,
            equi,
            residual,
            ..
        } => {
            format!("{join_type:?}").hash(h);
            for (l, r) in equi {
                format!("{l}={r}").hash(h);
            }
            if let Some(r) = residual {
                format!("{r}").hash(h);
            }
        }
        LogicalPlan::Aggregate {
            group_exprs,
            grouping_sets,
            aggs,
            ..
        } => {
            for g in group_exprs {
                format!("{g}").hash(h);
            }
            grouping_sets.hash(h);
            for a in aggs {
                format!("{a}").hash(h);
            }
        }
        LogicalPlan::Window { windows, .. } => {
            format!("{windows:?}").hash(h);
        }
        LogicalPlan::Sort { keys, .. } => {
            for k in keys {
                format!("{} {} {}", k.expr, k.asc, k.nulls_first).hash(h);
            }
        }
        LogicalPlan::Limit { n, .. } => n.hash(h),
        LogicalPlan::Union { .. } => "union".hash(h),
        LogicalPlan::SetOp { op, all, .. } => {
            format!("{op:?}{all}").hash(h);
        }
    }
    for c in plan.children() {
        hash_plan(c, h);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use crate::plan::ScanTable;
    use hive_common::{DataType, Field, Schema, Value};
    use std::sync::Arc;

    fn scan(name: &str) -> LogicalPlan {
        LogicalPlan::Scan {
            table: ScanTable {
                qualified_name: format!("default.{name}"),
                db: "default".into(),
                name: name.into(),
                schema: Schema::new(vec![Field::new("a", DataType::Int)]),
                partition_cols: vec![],
                handler: None,
                acid: true,
                is_mv: false,
                external_query: None,
                external_source: None,
            },
            projection: vec![0],
            filters: vec![],
            partitions: None,
            semijoin_filters: vec![],
        }
    }

    #[test]
    fn identical_plans_share_fingerprints() {
        let a = LogicalPlan::Filter {
            input: Arc::new(scan("t")),
            predicate: ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Literal(Value::Int(1))),
        };
        let b = a.clone();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn different_plans_differ() {
        let a = scan("t");
        let b = scan("u");
        assert_ne!(fingerprint(&a), fingerprint(&b));
        let fa = LogicalPlan::Filter {
            input: Arc::new(a.clone()),
            predicate: ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Literal(Value::Int(1))),
        };
        let fb = LogicalPlan::Filter {
            input: Arc::new(a),
            predicate: ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Literal(Value::Int(2))),
        };
        assert_ne!(fingerprint(&fa), fingerprint(&fb));
    }

    #[test]
    fn hex_is_stable_within_process() {
        let p = scan("t");
        assert_eq!(fingerprint_hex(&p), fingerprint_hex(&p));
        assert_eq!(fingerprint_hex(&p).len(), 16);
    }
}
