//! The multi-stage optimization driver (§4.1): an exhaustive rewrite
//! stage run to fixpoint, followed by cost-based stages.

use crate::mv_rewrite;
use crate::plan::LogicalPlan;
use crate::rules::{folding, join_reorder, partition_prune, pruning, pushdown, semijoin};
use crate::stats::GatedStats;
use hive_common::{HiveConf, Result};
use hive_metastore::Metastore;
use std::collections::HashMap;

/// Everything the optimizer needs from its environment.
pub struct OptimizerContext<'a> {
    /// Metastore (statistics, partitions, MV registry).
    pub metastore: &'a Metastore,
    /// Engine configuration (feature switches).
    pub conf: &'a HiveConf,
    /// Materialized views eligible for rewriting *under the current
    /// snapshot* (fresh, or within their staleness window). The driver
    /// computes this (it owns snapshot state).
    pub usable_views: Vec<mv_rewrite::UsableView>,
    /// Observed join cardinalities keyed by
    /// [`crate::stats::join_feedback_key`] — runtime feedback from the
    /// persisted runtime-stats store or a mid-query misestimate trip
    /// (§4.2). Substituted for the estimate of any join over the same
    /// table set.
    pub feedback: HashMap<String, u64>,
}

/// The optimizer.
pub struct Optimizer;

impl Optimizer {
    /// Optimize an analyzed plan.
    pub fn optimize(plan: LogicalPlan, ctx: &OptimizerContext) -> Result<LogicalPlan> {
        let mut plan = plan;

        // Stage 1 — exhaustive rewriting to fixpoint.
        plan = Self::exhaustive(plan)?;

        // Stage 2 — materialized-view rewriting (cost-based: the
        // rewriter only substitutes when the estimate improves).
        if ctx.conf.mv_rewriting && !ctx.usable_views.is_empty() {
            if let Some(rewritten) =
                mv_rewrite::try_rewrite(&plan, &ctx.usable_views, ctx.metastore)?
            {
                plan = Self::exhaustive(rewritten)?;
            }
        }

        // Cost-based stages see the metastore through a gate: the gate
        // decides whether histogram/feedback-driven estimation is live,
        // so the rules themselves never read configuration.
        let gated = GatedStats {
            inner: ctx.metastore,
            use_histograms: ctx.conf.effective_histograms_enabled(),
            feedback: ctx.feedback.clone(),
        };

        // Stage 3 — cost-based join reordering.
        if ctx.conf.cbo_enabled {
            plan = join_reorder::reorder_joins(&plan, &gated)?;
            plan = Self::exhaustive(plan)?;
        }

        // Stage 4 — static partition pruning (after pushdown settled).
        plan = partition_prune::prune_partitions(&plan, ctx.metastore)?;

        // Stage 5 — projection pruning (drives columnar projection
        // pushdown).
        plan = pruning::prune_columns(&plan, ctx.metastore)?;
        plan = folding::remove_trivial_projects(&plan);

        // Stage 6 — dynamic semijoin reduction planning.
        if ctx.conf.semijoin_reduction {
            plan = semijoin::plan_semijoin_reduction(&plan, &gated);
        }

        debug_assert!(plan.check().is_ok(), "optimized plan fails type check");
        Ok(plan)
    }

    /// The exhaustive stage: folding, filter merging, pushdown, project
    /// merging, empty pruning — iterated until the plan stops changing.
    pub fn exhaustive(mut plan: LogicalPlan) -> Result<LogicalPlan> {
        for _ in 0..10 {
            let before = crate::fingerprint::fingerprint(&plan);
            plan = folding::fold_constants(&plan);
            plan = folding::merge_filters(&plan);
            plan = pushdown::push_down_predicates(&plan);
            plan = folding::merge_projects(&plan);
            plan = folding::remove_trivial_projects(&plan);
            plan = folding::prune_empty(&plan);
            if crate::fingerprint::fingerprint(&plan) == before {
                break;
            }
        }
        Ok(plan)
    }
}
