//! Cardinality estimation over logical plans, driven by the HMS
//! statistics (§4.1): row counts, min/max, HyperLogLog-backed NDV, and
//! seeded equi-depth histograms, plus observed-cardinality feedback
//! from the runtime-stats store (§4.2).

use crate::expr::ScalarExpr;
use crate::plan::{JoinType, LogicalPlan};
use hive_common::Value;
use hive_metastore::{ColumnHistogram, ColumnStatsMeta, TableStats};
use hive_sql::BinaryOp;

/// Source of table statistics.
pub trait StatsSource {
    /// Stats for a qualified table name (empty default when unknown).
    fn stats_for(&self, qualified_name: &str) -> TableStats;

    /// Whether histogram-driven estimation is active
    /// (`hive.optimizer.histograms.enabled`). When false the System-R
    /// constant-selectivity + max-NDV containment path runs — the
    /// differential oracle.
    fn histograms_enabled(&self) -> bool {
        false
    }

    /// Observed output cardinality for a join over this table set (the
    /// [`join_feedback_key`]), from runtime feedback. Takes precedence
    /// over any estimate.
    fn feedback_rows(&self, _tables: &str) -> Option<u64> {
        None
    }
}

impl StatsSource for hive_metastore::Metastore {
    fn stats_for(&self, qualified_name: &str) -> TableStats {
        self.table_stats(qualified_name)
    }
}

/// The [`StatsSource`] the optimizer stages drive: raw HMS statistics
/// plus the histogram gate and per-query runtime feedback. All gating
/// flows through this wrapper, so `estimate_rows` / `selectivity`
/// never consult configuration themselves.
pub struct GatedStats<'a> {
    /// Underlying statistics (normally the metastore).
    pub inner: &'a dyn StatsSource,
    /// Resolved `hive.optimizer.histograms.enabled`.
    pub use_histograms: bool,
    /// Observed join cardinalities keyed by [`join_feedback_key`].
    pub feedback: std::collections::HashMap<String, u64>,
}

impl StatsSource for GatedStats<'_> {
    fn stats_for(&self, qualified_name: &str) -> TableStats {
        self.inner.stats_for(qualified_name)
    }

    fn histograms_enabled(&self) -> bool {
        self.use_histograms
    }

    fn feedback_rows(&self, tables: &str) -> Option<u64> {
        if self.use_histograms {
            self.feedback.get(tables).copied()
        } else {
            None
        }
    }
}

/// Feedback key for a join node: the sorted, deduplicated set of base
/// tables feeding it. Stable across join reorderings of the same table
/// set, which is exactly what lets an observed cardinality recorded
/// under one plan correct the estimate for every candidate order.
pub fn join_feedback_key(plan: &LogicalPlan) -> String {
    let mut tables = plan.referenced_tables();
    tables.sort();
    tables.dedup();
    tables.join(",")
}

/// Fixed selectivity guesses (System R heritage) used when column stats
/// cannot answer precisely.
const SEL_EQ_DEFAULT: f64 = 0.05;
const SEL_RANGE_DEFAULT: f64 = 1.0 / 3.0;
const SEL_LIKE_DEFAULT: f64 = 0.25;

/// Estimate output rows for a plan.
pub fn estimate_rows(plan: &LogicalPlan, src: &dyn StatsSource) -> f64 {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            filters,
            partitions,
            ..
        } => {
            let stats = src.stats_for(&table.qualified_name);
            let mut rows = stats.row_count.max(1) as f64;
            if let Some(parts) = partitions {
                // Assume uniform partition sizes.
                let total = table_partition_count(src, &table.qualified_name).max(1);
                rows *= (parts.len() as f64 / total as f64).min(1.0);
            }
            let use_hist = src.histograms_enabled();
            for f in filters {
                rows *= selectivity_with(f, Some((&stats, projection)), use_hist);
            }
            rows.max(1.0)
        }
        LogicalPlan::Values { rows, .. } => rows.len() as f64,
        LogicalPlan::Filter { input, predicate } => {
            (estimate_rows(input, src) * selectivity(predicate, None)).max(1.0)
        }
        LogicalPlan::Project { input, .. } | LogicalPlan::Window { input, .. } => {
            estimate_rows(input, src)
        }
        LogicalPlan::Join {
            left,
            right,
            join_type,
            equi,
            residual,
        } => {
            // Runtime feedback wins over any estimate: an observed
            // cardinality for this table set (from a prior execution or
            // the current query's misestimate trip) IS the answer.
            if let Some(obs) = src.feedback_rows(&join_feedback_key(plan)) {
                return (obs as f64).max(1.0);
            }
            let l = estimate_rows(left, src);
            let r = estimate_rows(right, src);
            let mut rows = match join_type {
                JoinType::Cross => l * r,
                JoinType::Semi => l * 0.5,
                JoinType::Anti => l * 0.5,
                _ => {
                    if equi.is_empty() {
                        l * r
                    } else {
                        // Per key: histogram overlap when both sides
                        // trace to histogrammed scan columns (and the
                        // gate is on), otherwise |L|*|R| / max(key NDV)
                        // containment; otherwise the smaller relation's
                        // cardinality is the proxy (its key is the PK
                        // in the FK-PK pattern). Multiple keys AND
                        // together: keep the most selective.
                        let use_hist = src.histograms_enabled();
                        let mut sel: Option<f64> = None;
                        for (le, re) in equi {
                            let mut key_sel: Option<f64> = None;
                            if use_hist {
                                if let (Some(lh), Some(rh)) =
                                    (key_histogram(left, le, src), key_histogram(right, re, src))
                                {
                                    key_sel = hive_metastore::join_selectivity(&lh, &rh);
                                }
                            }
                            if key_sel.is_none() {
                                let mut denom: f64 = 0.0;
                                if let Some(n) = key_ndv(left, le, src) {
                                    denom = denom.max(n);
                                }
                                if let Some(n) = key_ndv(right, re, src) {
                                    denom = denom.max(n);
                                }
                                if denom >= 1.0 {
                                    key_sel = Some(1.0 / denom);
                                }
                            }
                            if let Some(s) = key_sel {
                                sel = Some(match sel {
                                    // Histogram path: AND-ed keys are
                                    // independent predicates — multiply.
                                    // (A multi-key probe of a cross
                                    // product of dimensions must not
                                    // estimate like its loosest key.)
                                    Some(cur) if src.histograms_enabled() => cur * s,
                                    Some(cur) => cur.min(s),
                                    None => s,
                                });
                            }
                        }
                        match sel {
                            Some(s) => l * r * s,
                            None => l * r / l.min(r).max(1.0),
                        }
                    }
                }
            };
            if residual.is_some() {
                rows *= SEL_RANGE_DEFAULT;
            }
            match join_type {
                JoinType::Left => rows.max(l),
                JoinType::Right => rows.max(r),
                JoinType::Full => rows.max(l + r),
                _ => rows.max(1.0),
            }
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            grouping_sets,
            ..
        } => {
            let in_rows = estimate_rows(input, src);
            if group_exprs.is_empty() {
                return 1.0;
            }
            // Heuristic: each key contributes sqrt reduction.
            let groups = in_rows
                .powf(0.5 + 0.1 * (group_exprs.len() as f64 - 1.0))
                .min(in_rows);
            match grouping_sets {
                Some(sets) => groups * sets.len() as f64,
                None => groups,
            }
        }
        LogicalPlan::Sort { input, .. } => estimate_rows(input, src),
        LogicalPlan::Limit { input, n } => estimate_rows(input, src).min(*n as f64),
        LogicalPlan::Union { inputs } => inputs.iter().map(|i| estimate_rows(i, src)).sum(),
        LogicalPlan::SetOp {
            op, left, right, ..
        } => {
            let l = estimate_rows(left, src);
            let r = estimate_rows(right, src);
            match op {
                hive_sql::SetOperator::Intersect => l.min(r) * 0.5,
                _ => l,
            }
        }
    }
}

/// Estimated distinct count of output column `col` of `plan` — the
/// executor's runtime-filter (Bloom) sizing hint. Traces the column to
/// a scanned base column and caps the sketch NDV by the plan's own
/// estimated output rows (a filtered build side can't produce more
/// distinct keys than rows). `None` when no statistics reach the
/// column.
pub fn estimate_key_ndv(plan: &LogicalPlan, col: usize, src: &dyn StatsSource) -> Option<u64> {
    let cs = key_column_stats_col(plan, col, src)?;
    let ndv = cs.ndv_estimate();
    if ndv == 0 {
        return None;
    }
    Some((ndv as f64).min(estimate_rows(plan, src)).max(1.0) as u64)
}

/// NDV of a join-key expression when it is a plain column tracing
/// through Filters/pass-through Projects/Joins down to a Scan with
/// stats.
fn key_ndv(plan: &LogicalPlan, key: &ScalarExpr, src: &dyn StatsSource) -> Option<f64> {
    let cs = key_column_stats(plan, key, src)?;
    let ndv = cs.ndv_estimate();
    (ndv > 0).then_some(ndv as f64)
}

/// Histogram of a join-key expression (same tracing as [`key_ndv`]),
/// when one was collected.
fn key_histogram(
    plan: &LogicalPlan,
    key: &ScalarExpr,
    src: &dyn StatsSource,
) -> Option<ColumnHistogram> {
    let cs = key_column_stats(plan, key, src)?;
    (!cs.histogram.is_empty()).then(|| cs.histogram.clone())
}

fn key_column_stats(
    plan: &LogicalPlan,
    key: &ScalarExpr,
    src: &dyn StatsSource,
) -> Option<ColumnStatsMeta> {
    let col = match key {
        ScalarExpr::Column(c) => *c,
        _ => return None,
    };
    key_column_stats_col(plan, col, src)
}

fn key_column_stats_col(
    plan: &LogicalPlan,
    col: usize,
    src: &dyn StatsSource,
) -> Option<ColumnStatsMeta> {
    match plan {
        LogicalPlan::Scan {
            table, projection, ..
        } => {
            let stats = src.stats_for(&table.qualified_name);
            let sc = *projection.get(col)?;
            stats.columns.get(sc).cloned()
        }
        LogicalPlan::Filter { input, .. } => key_column_stats_col(input, col, src),
        LogicalPlan::Project { input, exprs, .. } => match exprs.get(col)? {
            ScalarExpr::Column(c) => key_column_stats_col(input, *c, src),
            _ => None,
        },
        LogicalPlan::Join { left, right, .. } => {
            // Join output is left columns then right columns.
            let lw = left.schema().len();
            if col < lw {
                key_column_stats_col(left, col, src)
            } else {
                key_column_stats_col(right, col - lw, src)
            }
        }
        _ => None,
    }
}

fn table_partition_count(_src: &dyn StatsSource, _name: &str) -> usize {
    // Partition counts are resolved by the partition-pruning rule which
    // stores the concrete list; estimation just needs a denominator and
    // the rule records it through `partitions`. Fall back to 365 (a
    // year of daily partitions) as the typical shape.
    365
}

/// Estimate the selectivity of a predicate; when `scan` is provided the
/// per-column statistics refine the guess. Constant-selectivity path
/// (no histograms) — see [`selectivity_with`].
pub fn selectivity(pred: &ScalarExpr, scan: Option<(&TableStats, &[usize])>) -> f64 {
    selectivity_with(pred, scan, false)
}

/// Estimate the selectivity of a predicate. With `use_hist` set,
/// equality predicates answer from the column histogram's bucket-local
/// NDV (end-biased for sampled heavy hitters) and range predicates
/// from bucket interpolation; otherwise — and whenever no histogram
/// was collected — min/max interpolation and the System-R constants
/// apply.
pub fn selectivity_with(
    pred: &ScalarExpr,
    scan: Option<(&TableStats, &[usize])>,
    use_hist: bool,
) -> f64 {
    match pred {
        ScalarExpr::Literal(Value::Boolean(true)) => 1.0,
        ScalarExpr::Literal(Value::Boolean(false)) => 0.0,
        ScalarExpr::Binary { op, left, right } => match op {
            BinaryOp::And => {
                selectivity_with(left, scan, use_hist) * selectivity_with(right, scan, use_hist)
            }
            BinaryOp::Or => {
                let a = selectivity_with(left, scan, use_hist);
                let b = selectivity_with(right, scan, use_hist);
                (a + b - a * b).min(1.0)
            }
            BinaryOp::Eq => eq_selectivity(left, right, scan, use_hist),
            BinaryOp::NotEq => 1.0 - eq_selectivity(left, right, scan, use_hist),
            BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq => {
                range_selectivity(op, left, right, scan, use_hist)
            }
            _ => SEL_RANGE_DEFAULT,
        },
        ScalarExpr::Not(e) => (1.0 - selectivity_with(e, scan, use_hist)).max(0.0),
        ScalarExpr::IsNull { expr, negated } => {
            let frac = column_of(expr)
                .and_then(|c| column_stats(scan, c))
                .map(|(cs, rows)| {
                    if rows == 0 {
                        0.0
                    } else {
                        cs.null_count as f64 / rows as f64
                    }
                })
                .unwrap_or(0.05);
            if *negated {
                1.0 - frac
            } else {
                frac
            }
        }
        ScalarExpr::Like { negated, .. } => {
            if *negated {
                1.0 - SEL_LIKE_DEFAULT
            } else {
                SEL_LIKE_DEFAULT
            }
        }
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let cs = column_of(expr).and_then(|c| column_stats(scan, c));
            // Histogram path: sum the per-literal equality fractions
            // (end-biased, so a heavy hitter in the list dominates).
            let hist_sum = if use_hist {
                cs.as_ref().and_then(|(cs, rows)| {
                    if cs.histogram.is_empty() {
                        return None;
                    }
                    let mut sum = 0.0;
                    for lit in list {
                        let v = match lit {
                            ScalarExpr::Literal(v) if !v.is_null() => v,
                            _ => return None,
                        };
                        let x = v.as_f64().or_else(|| v.as_i64().map(|x| x as f64))?;
                        sum += cs.histogram.eq_fraction(x)?;
                    }
                    Some(sum * nonnull_fraction(cs, *rows))
                })
            } else {
                None
            };
            let s = match hist_sum {
                Some(s) => s.clamp(0.0, 1.0),
                None => {
                    let per = cs
                        .map(|(cs, _)| 1.0 / cs.ndv_estimate().max(1) as f64)
                        .unwrap_or(SEL_EQ_DEFAULT);
                    (per * list.len() as f64).min(1.0)
                }
            };
            if *negated {
                1.0 - s
            } else {
                s
            }
        }
        _ => SEL_RANGE_DEFAULT,
    }
}

fn column_of(e: &ScalarExpr) -> Option<usize> {
    match e {
        ScalarExpr::Column(c) => Some(*c),
        ScalarExpr::Cast { expr, .. } => column_of(expr),
        _ => None,
    }
}

fn column_stats<'a>(
    scan: Option<(&'a TableStats, &[usize])>,
    out_col: usize,
) -> Option<(&'a ColumnStatsMeta, u64)> {
    let (stats, projection) = scan?;
    let table_col = *projection.get(out_col)?;
    let cs = stats.columns.get(table_col)?;
    Some((cs, stats.row_count))
}

/// Fraction of a column's rows that are non-null (histogram fractions
/// are relative to the sampled non-null values, predicate selectivity
/// to all rows).
fn nonnull_fraction(cs: &ColumnStatsMeta, rows: u64) -> f64 {
    if rows == 0 {
        return 1.0;
    }
    (1.0 - cs.null_count as f64 / rows as f64).clamp(0.0, 1.0)
}

fn eq_selectivity(
    left: &ScalarExpr,
    right: &ScalarExpr,
    scan: Option<(&TableStats, &[usize])>,
    use_hist: bool,
) -> f64 {
    for (col_side, other) in [(left, right), (right, left)] {
        if let Some(c) = column_of(col_side) {
            if let ScalarExpr::Literal(v) = other {
                if let Some((cs, rows)) = column_stats(scan, c) {
                    // Histogram path: sample frequency for heavy
                    // hitters, bucket depth / bucket NDV otherwise.
                    if use_hist && !v.is_null() {
                        if let Some(x) = v.as_f64().or_else(|| v.as_i64().map(|x| x as f64)) {
                            if let Some(frac) = cs.histogram.eq_fraction(x) {
                                return (frac * nonnull_fraction(cs, rows)).clamp(0.0, 1.0);
                            }
                        }
                        // No histogram reaches the column (strings, or
                        // all-NULL): equality still only matches
                        // non-null rows.
                        return (nonnull_fraction(cs, rows) / cs.ndv_estimate().max(1) as f64)
                            .clamp(0.0, 1.0);
                    }
                    return 1.0 / cs.ndv_estimate().max(1) as f64;
                }
            }
        }
    }
    SEL_EQ_DEFAULT
}

fn range_selectivity(
    op: &BinaryOp,
    left: &ScalarExpr,
    right: &ScalarExpr,
    scan: Option<(&TableStats, &[usize])>,
    use_hist: bool,
) -> f64 {
    // col op literal with numeric min/max: interpolate.
    let (col, lit, op_dir) = match (column_of(left), right) {
        (Some(c), ScalarExpr::Literal(v)) if !v.is_null() => (c, v, *op),
        _ => match (column_of(right), left) {
            (Some(c), ScalarExpr::Literal(v)) if !v.is_null() => {
                let flipped = match op {
                    BinaryOp::Lt => BinaryOp::Gt,
                    BinaryOp::LtEq => BinaryOp::GtEq,
                    BinaryOp::Gt => BinaryOp::Lt,
                    BinaryOp::GtEq => BinaryOp::LtEq,
                    other => *other,
                };
                (c, v, flipped)
            }
            _ => return SEL_RANGE_DEFAULT,
        },
    };
    let Some((cs, rows)) = column_stats(scan, col) else {
        return SEL_RANGE_DEFAULT;
    };
    let lit_f64 = lit.as_f64().or_else(|| lit.as_i64().map(|v| v as f64));
    // Histogram path: bucket interpolation, with the equality share of
    // the bound value split out for strict comparisons.
    if use_hist && !cs.histogram.is_empty() {
        if let Some(x) = lit_f64 {
            let frac = match op_dir {
                BinaryOp::Lt => cs
                    .histogram
                    .range_fraction(None, Some(x))
                    .map(|f| (f - cs.histogram.eq_fraction(x).unwrap_or(0.0)).max(0.0)),
                BinaryOp::LtEq => cs.histogram.range_fraction(None, Some(x)),
                BinaryOp::Gt => cs
                    .histogram
                    .range_fraction(Some(x), None)
                    .map(|f| (f - cs.histogram.eq_fraction(x).unwrap_or(0.0)).max(0.0)),
                BinaryOp::GtEq => cs.histogram.range_fraction(Some(x), None),
                _ => None,
            };
            if let Some(f) = frac {
                return (f * nonnull_fraction(cs, rows)).clamp(0.0, 1.0);
            }
        }
    }
    let (Some(min), Some(max)) = (
        cs.min
            .as_ref()
            .and_then(|v| v.as_f64().or_else(|| v.as_i64().map(|x| x as f64))),
        cs.max
            .as_ref()
            .and_then(|v| v.as_f64().or_else(|| v.as_i64().map(|x| x as f64))),
    ) else {
        return SEL_RANGE_DEFAULT;
    };
    let Some(x) = lit_f64 else {
        return SEL_RANGE_DEFAULT;
    };
    if max <= min {
        return SEL_RANGE_DEFAULT;
    }
    // Discrete-domain correction: with NDV distinct values evenly spaced
    // over [min, max], a strict bound excludes whole value-steps that a
    // continuous interpolation would keep (e.g. `year > 2016` over
    // {2016, 2017, 2018} keeps 2/3, not 100%).
    let ndv = cs.ndv_estimate().max(2) as f64;
    let step = (max - min) / (ndv - 1.0);
    let frac = |span: f64| (span / (max - min + step)).clamp(0.001, 1.0);
    match op_dir {
        BinaryOp::Lt => frac(x - min),
        BinaryOp::LtEq => frac(x - min + step),
        BinaryOp::Gt => frac(max - x),
        BinaryOp::GtEq => frac(max - x + step),
        _ => SEL_RANGE_DEFAULT,
    }
}

/// A simple total-cost model: cumulative rows processed, weighting
/// joins by build-side size. Used by join reordering to compare orders.
pub fn estimate_cost(plan: &LogicalPlan, src: &dyn StatsSource) -> f64 {
    let mut cost = estimate_rows(plan, src);
    for c in plan.children() {
        cost += estimate_cost(c, src);
    }
    if let LogicalPlan::Join { right, .. } = plan {
        // Hash-build cost on the right side.
        cost += estimate_rows(right, src) * 2.0;
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use hive_common::{DataType, Field, Schema};
    use hive_metastore::TableStats;
    use std::collections::HashMap;
    use std::sync::Arc;

    struct FakeStats(HashMap<String, TableStats>);

    impl StatsSource for FakeStats {
        fn stats_for(&self, q: &str) -> TableStats {
            self.0.get(q).cloned().unwrap_or_default()
        }
    }

    fn scan(name: &str, rows: u64) -> (LogicalPlan, FakeStats) {
        let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
        let plan = LogicalPlan::Scan {
            table: crate::plan::ScanTable {
                qualified_name: format!("default.{name}"),
                db: "default".into(),
                name: name.into(),
                schema,
                partition_cols: vec![],
                handler: None,
                acid: true,
                is_mv: false,
                external_query: None,
                external_source: None,
            },
            projection: vec![0],
            filters: vec![],
            partitions: None,
            semijoin_filters: vec![],
        };
        let mut stats = TableStats::new(1);
        stats.row_count = rows;
        for i in 0..1000.min(rows) {
            stats.columns[0].update(&Value::Int(i as i32));
        }
        let mut m = HashMap::new();
        m.insert(format!("default.{name}"), stats);
        (plan, FakeStats(m))
    }

    #[test]
    fn scan_filter_reduces_estimate() {
        let (plan, src) = scan("t", 100_000);
        assert_eq!(estimate_rows(&plan, &src), 100_000.0);
        let filtered = LogicalPlan::Filter {
            input: Arc::new(plan),
            predicate: ScalarExpr::eq(ScalarExpr::Column(0), ScalarExpr::Literal(Value::Int(5))),
        };
        let est = estimate_rows(&filtered, &src);
        assert!(est < 100_000.0 * 0.2, "eq filter must be selective: {est}");
    }

    #[test]
    fn eq_filter_on_scan_uses_ndv() {
        let (plan, src) = scan("t", 100_000);
        if let LogicalPlan::Scan {
            table,
            projection,
            partitions,
            semijoin_filters,
            ..
        } = plan
        {
            let scan_with_filter = LogicalPlan::Scan {
                table,
                projection,
                filters: vec![ScalarExpr::eq(
                    ScalarExpr::Column(0),
                    ScalarExpr::Literal(Value::Int(5)),
                )],
                partitions,
                semijoin_filters,
            };
            let est = estimate_rows(&scan_with_filter, &src);
            // NDV ~1000 → ~100 rows.
            assert!((50.0..200.0).contains(&est), "got {est}");
        }
    }

    #[test]
    fn join_estimates_fk_pk() {
        let (fact, src_f) = scan("fact", 1_000_000);
        let (dim, _) = scan("dim", 1000);
        let mut merged = src_f.0;
        let mut dim_stats = TableStats::new(1);
        dim_stats.row_count = 1000;
        merged.insert("default.dim".into(), dim_stats);
        let src = FakeStats(merged);
        let join = LogicalPlan::Join {
            left: Arc::new(fact),
            right: Arc::new(dim),
            join_type: JoinType::Inner,
            equi: vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))],
            residual: None,
        };
        let est = estimate_rows(&join, &src);
        // FK-PK join keeps ~|fact| rows.
        assert!((500_000.0..2_000_000.0).contains(&est), "got {est}");
    }

    #[test]
    fn range_selectivity_interpolates() {
        let (plan, src) = scan("t", 100_000);
        if let LogicalPlan::Scan { table, .. } = &plan {
            let stats = src.stats_for(&table.qualified_name);
            // col a in [0, 999]; a > 900 should be ~10%.
            let s = selectivity(
                &ScalarExpr::Binary {
                    op: BinaryOp::Gt,
                    left: Box::new(ScalarExpr::Column(0)),
                    right: Box::new(ScalarExpr::Literal(Value::Int(900))),
                },
                Some((&stats, &[0])),
            );
            assert!((0.05..0.2).contains(&s), "got {s}");
        }
    }
}
