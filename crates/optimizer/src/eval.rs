//! Row-at-a-time evaluation of [`ScalarExpr`].
//!
//! This single implementation backs three consumers: constant folding in
//! the optimizer, the Hive-1.2-emulation row interpreter, and the
//! vectorized engine's fallback for expressions without a specialized
//! kernel.

use crate::expr::{BuiltinFunc, ScalarExpr};
use hive_common::dates;
use hive_common::{like, DataType, HiveError, Result, Value};
use hive_sql::BinaryOp;
use std::cmp::Ordering;

/// Evaluate an expression against one row of input values.
pub fn eval_scalar(expr: &ScalarExpr, row: &[Value]) -> Result<Value> {
    match expr {
        ScalarExpr::Column(i) => row
            .get(*i)
            .cloned()
            .ok_or_else(|| HiveError::Execution(format!("column {i} out of range"))),
        ScalarExpr::Literal(v) => Ok(v.clone()),
        ScalarExpr::Binary { op, left, right } => {
            // AND/OR need three-valued logic with short-circuit.
            match op {
                BinaryOp::And => {
                    let l = eval_scalar(left, row)?;
                    if l == Value::Boolean(false) {
                        return Ok(Value::Boolean(false));
                    }
                    let r = eval_scalar(right, row)?;
                    return Ok(match (l, r) {
                        (_, Value::Boolean(false)) => Value::Boolean(false),
                        (Value::Boolean(true), Value::Boolean(true)) => Value::Boolean(true),
                        _ => Value::Null,
                    });
                }
                BinaryOp::Or => {
                    let l = eval_scalar(left, row)?;
                    if l == Value::Boolean(true) {
                        return Ok(Value::Boolean(true));
                    }
                    let r = eval_scalar(right, row)?;
                    return Ok(match (l, r) {
                        (_, Value::Boolean(true)) => Value::Boolean(true),
                        (Value::Boolean(false), Value::Boolean(false)) => Value::Boolean(false),
                        _ => Value::Null,
                    });
                }
                _ => {}
            }
            let l = eval_scalar(left, row)?;
            let r = eval_scalar(right, row)?;
            eval_binary(*op, &l, &r)
        }
        ScalarExpr::Not(e) => match eval_scalar(e, row)? {
            Value::Null => Ok(Value::Null),
            Value::Boolean(b) => Ok(Value::Boolean(!b)),
            other => Err(HiveError::Execution(format!("NOT of non-boolean {other}"))),
        },
        ScalarExpr::Negate(e) => eval_scalar(e, row)?.neg(),
        ScalarExpr::IsNull { expr, negated } => {
            let v = eval_scalar(expr, row)?;
            Ok(Value::Boolean(v.is_null() != *negated))
        }
        ScalarExpr::Like {
            expr,
            pattern,
            negated,
        } => {
            let v = eval_scalar(expr, row)?;
            let p = eval_scalar(pattern, row)?;
            match (v, p) {
                (Value::Null, _) | (_, Value::Null) => Ok(Value::Null),
                (Value::String(s), Value::String(pat)) => {
                    Ok(Value::Boolean(like::like_match(&s, &pat) != *negated))
                }
                (a, b) => Err(HiveError::Execution(format!("LIKE on {a} / {b}"))),
            }
        }
        ScalarExpr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_scalar(expr, row)?;
            if v.is_null() {
                return Ok(Value::Null);
            }
            let mut saw_null = false;
            for item in list {
                let x = eval_scalar(item, row)?;
                if x.is_null() {
                    saw_null = true;
                } else if v.sql_cmp(&x) == Some(Ordering::Equal) {
                    return Ok(Value::Boolean(!*negated));
                }
            }
            if saw_null {
                Ok(Value::Null)
            } else {
                Ok(Value::Boolean(*negated))
            }
        }
        ScalarExpr::Case {
            operand,
            branches,
            else_expr,
        } => {
            let op_v = operand.as_ref().map(|o| eval_scalar(o, row)).transpose()?;
            for (cond, result) in branches {
                let hit = match &op_v {
                    Some(v) => {
                        let c = eval_scalar(cond, row)?;
                        !v.is_null() && v.sql_cmp(&c) == Some(Ordering::Equal)
                    }
                    None => eval_scalar(cond, row)? == Value::Boolean(true),
                };
                if hit {
                    return eval_scalar(result, row);
                }
            }
            match else_expr {
                Some(e) => eval_scalar(e, row),
                None => Ok(Value::Null),
            }
        }
        ScalarExpr::Cast { expr, to } => eval_scalar(expr, row)?.cast_to(to),
        ScalarExpr::Extract { field, expr } => {
            let v = eval_scalar(expr, row)?;
            Ok(match v {
                Value::Null => Value::Null,
                Value::Date(d) => Value::BigInt(dates::extract_from_days(*field, d)),
                Value::Timestamp(t) => Value::BigInt(dates::extract_from_micros(*field, t)),
                other => {
                    let casted = other.cast_to(&DataType::Date)?;
                    match casted {
                        Value::Date(d) => Value::BigInt(dates::extract_from_days(*field, d)),
                        _ => Value::Null,
                    }
                }
            })
        }
        ScalarExpr::Func { func, args } => eval_func(*func, args, row),
    }
}

/// Evaluate a comparison/arithmetic binary operator on two values.
pub fn eval_binary(op: BinaryOp, l: &Value, r: &Value) -> Result<Value> {
    match op {
        BinaryOp::Plus => {
            // DATE + integer days.
            if let (Value::Date(d), Some(n)) = (l, r.as_i64()) {
                if r.data_type().is_integer() {
                    return Ok(Value::Date(d + n as i32));
                }
            }
            l.add(r)
        }
        BinaryOp::Minus => {
            if let (Value::Date(d), Some(n)) = (l, r.as_i64()) {
                if r.data_type().is_integer() {
                    return Ok(Value::Date(d - n as i32));
                }
            }
            // DATE - DATE = day difference.
            if let (Value::Date(a), Value::Date(b)) = (l, r) {
                return Ok(Value::BigInt((*a as i64) - (*b as i64)));
            }
            l.sub(r)
        }
        BinaryOp::Multiply => l.mul(r),
        BinaryOp::Divide => l.div(r),
        BinaryOp::Modulo => l.rem(r),
        BinaryOp::Eq => Ok(bool3(l.sql_cmp(r).map(|o| o == Ordering::Equal))),
        BinaryOp::NotEq => Ok(bool3(l.sql_cmp(r).map(|o| o != Ordering::Equal))),
        BinaryOp::Lt => Ok(bool3(l.sql_cmp(r).map(|o| o == Ordering::Less))),
        BinaryOp::LtEq => Ok(bool3(l.sql_cmp(r).map(|o| o != Ordering::Greater))),
        BinaryOp::Gt => Ok(bool3(l.sql_cmp(r).map(|o| o == Ordering::Greater))),
        BinaryOp::GtEq => Ok(bool3(l.sql_cmp(r).map(|o| o != Ordering::Less))),
        BinaryOp::And | BinaryOp::Or => unreachable!("handled by eval_scalar"),
    }
}

fn bool3(v: Option<bool>) -> Value {
    match v {
        Some(b) => Value::Boolean(b),
        None => Value::Null,
    }
}

fn eval_func(func: BuiltinFunc, args: &[ScalarExpr], row: &[Value]) -> Result<Value> {
    let vals: Vec<Value> = args
        .iter()
        .map(|a| eval_scalar(a, row))
        .collect::<Result<Vec<_>>>()?;
    let arg = |i: usize| -> &Value { vals.get(i).unwrap_or(&Value::Null) };
    let null_in = vals.iter().any(|v| v.is_null());
    Ok(match func {
        BuiltinFunc::Coalesce => vals
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null),
        BuiltinFunc::Nvl => {
            if arg(0).is_null() {
                arg(1).clone()
            } else {
                arg(0).clone()
            }
        }
        BuiltinFunc::If => {
            if arg(0) == &Value::Boolean(true) {
                arg(1).clone()
            } else {
                arg(2).clone()
            }
        }
        _ if null_in => Value::Null,
        BuiltinFunc::Substr => {
            let s = arg(0).as_str().unwrap_or_default();
            let chars: Vec<char> = s.chars().collect();
            let start = arg(1).as_i64().unwrap_or(1);
            // SQL substr is 1-based; negative counts from the end.
            let begin = if start > 0 {
                (start - 1) as usize
            } else if start < 0 {
                chars.len().saturating_sub((-start) as usize)
            } else {
                0
            };
            let len = vals
                .get(2)
                .and_then(|v| v.as_i64())
                .map(|l| l.max(0) as usize)
                .unwrap_or(usize::MAX);
            Value::String(chars.iter().skip(begin).take(len).collect())
        }
        BuiltinFunc::Upper => Value::String(arg(0).as_str().unwrap_or_default().to_uppercase()),
        BuiltinFunc::Lower => Value::String(arg(0).as_str().unwrap_or_default().to_lowercase()),
        BuiltinFunc::Length => {
            Value::BigInt(arg(0).as_str().map(|s| s.chars().count()).unwrap_or(0) as i64)
        }
        BuiltinFunc::Trim => Value::String(arg(0).as_str().unwrap_or_default().trim().to_string()),
        BuiltinFunc::Concat => {
            let mut s = String::new();
            for v in &vals {
                s.push_str(&v.to_string());
            }
            Value::String(s)
        }
        BuiltinFunc::Abs => match arg(0) {
            Value::Int(v) => Value::Int(v.abs()),
            Value::BigInt(v) => Value::BigInt(v.abs()),
            Value::Double(v) => Value::Double(v.abs()),
            Value::Decimal(u, s) => Value::Decimal(u.abs(), *s),
            other => other.clone(),
        },
        BuiltinFunc::Round => match (arg(0), vals.get(1).and_then(|v| v.as_i64())) {
            (Value::Double(v), None) => Value::Double(v.round()),
            (Value::Double(v), Some(d)) => {
                let f = 10f64.powi(d as i32);
                Value::Double((v * f).round() / f)
            }
            (Value::Decimal(u, s), Some(d)) => {
                let target = (d.max(0) as u8).min(*s);
                Value::Decimal(hive_common::value::rescale(*u, *s, target), target)
            }
            (other, _) => other.clone(),
        },
        BuiltinFunc::Floor => Value::BigInt(arg(0).as_f64().map(|v| v.floor() as i64).unwrap_or(0)),
        BuiltinFunc::Ceil => Value::BigInt(arg(0).as_f64().map(|v| v.ceil() as i64).unwrap_or(0)),
        BuiltinFunc::Sqrt => Value::Double(arg(0).as_f64().map(|v| v.sqrt()).unwrap_or(f64::NAN)),
        BuiltinFunc::Power => Value::Double(
            arg(0)
                .as_f64()
                .zip(arg(1).as_f64())
                .map(|(a, b)| a.powf(b))
                .unwrap_or(f64::NAN),
        ),
        BuiltinFunc::DateAdd => {
            let d = date_of(arg(0))?;
            Value::Date(d + arg(1).as_i64().unwrap_or(0) as i32)
        }
        BuiltinFunc::DateSub => {
            let d = date_of(arg(0))?;
            Value::Date(d - arg(1).as_i64().unwrap_or(0) as i32)
        }
        BuiltinFunc::AddMonths => {
            let d = date_of(arg(0))?;
            Value::Date(dates::add_months(d, arg(1).as_i64().unwrap_or(0) as i32))
        }
        BuiltinFunc::Year => Value::BigInt(dates::extract_from_days(
            dates::DateField::Year,
            date_of(arg(0))?,
        )),
        BuiltinFunc::Month => Value::BigInt(dates::extract_from_days(
            dates::DateField::Month,
            date_of(arg(0))?,
        )),
        BuiltinFunc::Day => Value::BigInt(dates::extract_from_days(
            dates::DateField::Day,
            date_of(arg(0))?,
        )),
        BuiltinFunc::Quarter => Value::BigInt(dates::extract_from_days(
            dates::DateField::Quarter,
            date_of(arg(0))?,
        )),
        BuiltinFunc::DayOfWeek => Value::BigInt(dates::extract_from_days(
            dates::DateField::DayOfWeek,
            date_of(arg(0))?,
        )),
        BuiltinFunc::TruncMonth => Value::Date(dates::truncate_to_month(date_of(arg(0))?)),
        BuiltinFunc::TruncYear => Value::Date(dates::truncate_to_year(date_of(arg(0))?)),
        BuiltinFunc::Hash64 => {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            for v in &vals {
                v.hash(&mut h);
            }
            Value::BigInt(h.finish() as i64)
        }
        // Non-deterministic / runtime constants: fixed values keep the
        // engine deterministic for tests; the results cache refuses to
        // cache queries containing them regardless.
        BuiltinFunc::Rand => Value::Double(0.5),
        BuiltinFunc::CurrentDate => Value::Date(19_000),
        BuiltinFunc::CurrentTimestamp => Value::Timestamp(19_000 * dates::MICROS_PER_DAY),
        // Coalesce/Nvl/If handled before the null_in guard above.
    })
}

fn date_of(v: &Value) -> Result<i32> {
    match v.cast_to(&DataType::Date)? {
        Value::Date(d) => Ok(d),
        _ => Err(HiveError::Execution(format!("not a date: {v}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: Value) -> ScalarExpr {
        ScalarExpr::Literal(v)
    }

    fn eval(e: &ScalarExpr) -> Value {
        eval_scalar(e, &[]).unwrap()
    }

    #[test]
    fn three_valued_and_or() {
        let t = lit(Value::Boolean(true));
        let f = lit(Value::Boolean(false));
        let n = lit(Value::Null);
        let and = |a: &ScalarExpr, b: &ScalarExpr| ScalarExpr::Binary {
            op: BinaryOp::And,
            left: Box::new(a.clone()),
            right: Box::new(b.clone()),
        };
        let or = |a: &ScalarExpr, b: &ScalarExpr| ScalarExpr::Binary {
            op: BinaryOp::Or,
            left: Box::new(a.clone()),
            right: Box::new(b.clone()),
        };
        assert_eq!(eval(&and(&n, &f)), Value::Boolean(false));
        assert_eq!(eval(&and(&n, &t)), Value::Null);
        assert_eq!(eval(&or(&n, &t)), Value::Boolean(true));
        assert_eq!(eval(&or(&n, &f)), Value::Null);
    }

    #[test]
    fn in_list_null_semantics() {
        let e = ScalarExpr::InList {
            expr: Box::new(lit(Value::Int(5))),
            list: vec![lit(Value::Int(1)), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(eval(&e), Value::Null, "5 IN (1, NULL) is unknown");
        let e2 = ScalarExpr::InList {
            expr: Box::new(lit(Value::Int(1))),
            list: vec![lit(Value::Int(1)), lit(Value::Null)],
            negated: false,
        };
        assert_eq!(eval(&e2), Value::Boolean(true));
    }

    #[test]
    fn date_arithmetic() {
        let d = dates::parse_date("2018-01-31").unwrap();
        let plus = ScalarExpr::Binary {
            op: BinaryOp::Plus,
            left: Box::new(lit(Value::Date(d))),
            right: Box::new(lit(Value::Int(1))),
        };
        assert_eq!(eval(&plus), Value::Date(d + 1));
        let diff = ScalarExpr::Binary {
            op: BinaryOp::Minus,
            left: Box::new(lit(Value::Date(d))),
            right: Box::new(lit(Value::Date(d - 10))),
        };
        assert_eq!(eval(&diff), Value::BigInt(10));
    }

    #[test]
    fn functions() {
        let sub = ScalarExpr::Func {
            func: BuiltinFunc::Substr,
            args: vec![
                lit(Value::String("warehouse".into())),
                lit(Value::Int(1)),
                lit(Value::Int(4)),
            ],
        };
        assert_eq!(eval(&sub), Value::String("ware".into()));
        let coal = ScalarExpr::Func {
            func: BuiltinFunc::Coalesce,
            args: vec![lit(Value::Null), lit(Value::Int(3))],
        };
        assert_eq!(eval(&coal), Value::Int(3));
        let iff = ScalarExpr::Func {
            func: BuiltinFunc::If,
            args: vec![
                lit(Value::Boolean(false)),
                lit(Value::Int(1)),
                lit(Value::Int(2)),
            ],
        };
        assert_eq!(eval(&iff), Value::Int(2));
    }

    #[test]
    fn case_forms() {
        // Searched CASE.
        let c = ScalarExpr::Case {
            operand: None,
            branches: vec![(
                ScalarExpr::Binary {
                    op: BinaryOp::Gt,
                    left: Box::new(ScalarExpr::Column(0)),
                    right: Box::new(lit(Value::Int(0))),
                },
                lit(Value::String("pos".into())),
            )],
            else_expr: Some(Box::new(lit(Value::String("neg".into())))),
        };
        assert_eq!(
            eval_scalar(&c, &[Value::Int(5)]).unwrap(),
            Value::String("pos".into())
        );
        assert_eq!(
            eval_scalar(&c, &[Value::Int(-5)]).unwrap(),
            Value::String("neg".into())
        );
        // Simple CASE with operand.
        let c2 = ScalarExpr::Case {
            operand: Some(Box::new(ScalarExpr::Column(0))),
            branches: vec![(lit(Value::Int(1)), lit(Value::String("one".into())))],
            else_expr: None,
        };
        assert_eq!(eval_scalar(&c2, &[Value::Int(2)]).unwrap(), Value::Null);
    }
}
