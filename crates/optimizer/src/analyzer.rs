//! The analyzer/binder: resolves an AST against the catalog and lowers
//! it into a typed [`LogicalPlan`].
//!
//! Responsibilities:
//! * name resolution (qualified/unqualified columns, aliases, CTEs);
//! * type coercion (explicit casts inserted so operand types align);
//! * aggregate/window extraction;
//! * **subquery decorrelation** (§3.1's correlated subqueries): IN /
//!   EXISTS become Semi/Anti joins, scalar subqueries become (grouped)
//!   left joins, with correlated conjuncts pulled up into join
//!   conditions;
//! * GROUPING SETS / ROLLUP / CUBE, DISTINCT, set operations, ORDER BY
//!   over unselected columns.

use crate::expr::{AggExpr, AggFunc, BuiltinFunc, ScalarExpr, SortKey, WindowExpr, WindowFunc};
use crate::plan::{JoinType, LogicalPlan, ScanTable};
use hive_common::{HiveError, Result, Schema, Value};
use hive_metastore::Table;
use hive_sql as ast;
use hive_sql::{BinaryOp, ObjectName, SelectItem};
use std::collections::HashMap;
use std::sync::Arc;

/// Catalog access needed by the analyzer.
pub trait CatalogView {
    /// Resolve a table by database and name.
    fn get_table(&self, db: &str, name: &str) -> Result<Table>;
    /// The session's current database.
    fn default_db(&self) -> String;
}

/// The standard [`CatalogView`] over a [`hive_metastore::Metastore`]
/// plus a session-current database.
pub struct MetastoreCatalog {
    ms: hive_metastore::Metastore,
    db: String,
}

impl MetastoreCatalog {
    /// Bind a metastore and current database.
    pub fn new(ms: hive_metastore::Metastore, db: impl Into<String>) -> Self {
        MetastoreCatalog { ms, db: db.into() }
    }
}

impl CatalogView for MetastoreCatalog {
    fn get_table(&self, db: &str, name: &str) -> Result<Table> {
        self.ms.get_table(db, name)
    }

    fn default_db(&self) -> String {
        self.db.clone()
    }
}

/// One column visible in a scope.
#[derive(Debug, Clone)]
struct ScopeColumn {
    qualifier: Option<String>,
    name: String,
}

/// A resolution scope: columns aligned with a plan's output schema,
/// plus an optional parent (outer query) scope for correlation.
#[derive(Debug, Clone, Default)]
struct Scope {
    columns: Vec<ScopeColumn>,
}

impl Scope {
    fn from_schema(schema: &Schema, qualifier: Option<&str>) -> Scope {
        Scope {
            columns: schema
                .fields()
                .iter()
                .map(|f| ScopeColumn {
                    qualifier: qualifier.map(|q| q.to_ascii_lowercase()),
                    name: f.name.clone(),
                })
                .collect(),
        }
    }

    fn concat(&self, other: &Scope) -> Scope {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Scope { columns }
    }

    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<Option<usize>> {
        let name = name.to_ascii_lowercase();
        let qualifier = qualifier.map(|q| q.to_ascii_lowercase());
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                c.name == name
                    && match &qualifier {
                        Some(q) => c.qualifier.as_deref() == Some(q.as_str()),
                        None => true,
                    }
            })
            .map(|(i, _)| i)
            .collect();
        match matches.len() {
            0 => Ok(None),
            1 => Ok(Some(matches[0])),
            _ if qualifier.is_none() => {
                // Ambiguous unqualified reference: Hive resolves to the
                // first occurrence when names collide across inputs only
                // if identical; we error to be safe, except equal-name
                // self-join keys resolve to the first.
                Ok(Some(matches[0]))
            }
            _ => Err(HiveError::Analysis(format!("ambiguous column: {name}"))),
        }
    }
}

/// The analyzer.
pub struct Analyzer<'a> {
    catalog: &'a dyn CatalogView,
}

/// State while planning one SELECT: the current input plan and scope,
/// growing as subquery joins are spliced in.
struct SelectContext<'o> {
    plan: Arc<LogicalPlan>,
    scope: Scope,
    /// Outer scope + plan schema length, for correlated subqueries.
    outer: Option<&'o OuterContext<'o>>,
    /// Collected correlated conjuncts (inner-side expr, op, outer col).
    correlated: Vec<(ScalarExpr, BinaryOp, usize)>,
}

struct OuterContext<'o> {
    scope: &'o Scope,
    parent: Option<&'o OuterContext<'o>>,
}

impl<'a> Analyzer<'a> {
    /// Create an analyzer over a catalog.
    pub fn new(catalog: &'a dyn CatalogView) -> Self {
        Analyzer { catalog }
    }

    /// Analyze a full query into a logical plan.
    pub fn analyze_query(&self, q: &ast::Query) -> Result<LogicalPlan> {
        let mut ctes = HashMap::new();
        self.analyze_query_with(q, &mut ctes, None)
    }

    fn analyze_query_with(
        &self,
        q: &ast::Query,
        ctes: &mut HashMap<String, ast::Query>,
        outer: Option<&OuterContext>,
    ) -> Result<LogicalPlan> {
        // Register CTEs (shadowing outer ones of the same name).
        let mut local_ctes = ctes.clone();
        for (name, cte_q) in &q.ctes {
            local_ctes.insert(name.clone(), cte_q.clone());
        }
        let (plan, scope) = self.analyze_body(&q.body, &mut local_ctes, outer)?;
        let mut plan = Arc::new(plan);

        // ORDER BY: resolve against the output scope; fall back to the
        // final projection's *input* for unselected columns (a feature
        // Hive 1.2 lacked — see Figure 7's failing queries).
        if !q.order_by.is_empty() {
            let schema = plan.schema();
            let lower_key = |item: &ast::OrderItem,
                             plan: &Arc<LogicalPlan>,
                             scope: &Scope|
             -> Result<ScalarExpr> {
                match &item.expr {
                    ast::Expr::Literal(Value::Int(n))
                        if *n >= 1 && (*n as usize) <= schema.len() =>
                    {
                        Ok(ScalarExpr::Column(*n as usize - 1))
                    }
                    e => {
                        let mut ctx = SelectContext {
                            plan: plan.clone(),
                            scope: scope.clone(),
                            outer: None,
                            correlated: Vec::new(),
                        };
                        let direct = self.lower_expr(e, &mut ctx, &mut local_ctes.clone());
                        match (direct, e) {
                            (Ok(x), _) => Ok(x),
                            // The select list strips qualifiers; `ORDER BY
                            // a.k` refers to output column `k`.
                            (
                                Err(_),
                                ast::Expr::Column {
                                    qualifier: Some(_),
                                    name,
                                },
                            ) => self.lower_expr(
                                &ast::Expr::Column {
                                    qualifier: None,
                                    name: name.clone(),
                                },
                                &mut ctx,
                                &mut local_ctes.clone(),
                            ),
                            (err, _) => err,
                        }
                    }
                }
            };
            let direct: Result<Vec<ScalarExpr>> = q
                .order_by
                .iter()
                .map(|item| lower_key(item, &plan, &scope))
                .collect();
            match direct {
                Ok(exprs) => {
                    let keys = exprs
                        .into_iter()
                        .zip(&q.order_by)
                        .map(|(expr, item)| SortKey {
                            expr,
                            asc: item.asc,
                            nulls_first: item.nulls_first.unwrap_or(!item.asc),
                        })
                        .collect();
                    plan = Arc::new(LogicalPlan::Sort { input: plan, keys });
                }
                Err(_) => {
                    // Unselected-column fallback: only valid above a
                    // projection whose input still has the columns.
                    let LogicalPlan::Project {
                        input,
                        exprs,
                        names,
                    } = plan.as_ref()
                    else {
                        // Re-raise the original resolution error.
                        for item in &q.order_by {
                            lower_key(item, &plan, &scope)?;
                        }
                        unreachable!("direct lowering failed then succeeded");
                    };
                    let in_scope = Scope::from_schema(&input.schema(), None);
                    let orig_len = exprs.len();
                    let mut ext_exprs = exprs.clone();
                    let mut ext_names = names.clone();
                    let mut keys = Vec::new();
                    for item in &q.order_by {
                        // Prefer the output column when it resolves.
                        let expr = match lower_key(item, &plan, &scope) {
                            Ok(e) => e,
                            Err(_) => {
                                let under = lower_key(item, input, &in_scope)?;
                                ext_exprs.push(under);
                                ext_names.push(format!("_sort{}", ext_names.len()));
                                ScalarExpr::Column(ext_exprs.len() - 1)
                            }
                        };
                        keys.push(SortKey {
                            expr,
                            asc: item.asc,
                            nulls_first: item.nulls_first.unwrap_or(!item.asc),
                        });
                    }
                    let extended = Arc::new(LogicalPlan::Project {
                        input: input.clone(),
                        exprs: ext_exprs,
                        names: ext_names.clone(),
                    });
                    let sorted = Arc::new(LogicalPlan::Sort {
                        input: extended,
                        keys,
                    });
                    // Drop the helper sort columns again.
                    plan = Arc::new(LogicalPlan::Project {
                        input: sorted,
                        exprs: (0..orig_len).map(ScalarExpr::Column).collect(),
                        names: ext_names[..orig_len].to_vec(),
                    });
                }
            }
        }
        if let Some(n) = q.limit {
            plan = Arc::new(LogicalPlan::Limit { input: plan, n });
        }
        Ok(Arc::try_unwrap(plan).unwrap_or_else(|a| (*a).clone()))
    }

    fn analyze_body(
        &self,
        body: &ast::QueryBody,
        ctes: &mut HashMap<String, ast::Query>,
        outer: Option<&OuterContext>,
    ) -> Result<(LogicalPlan, Scope)> {
        match body {
            ast::QueryBody::Select(sel) => self.analyze_select(sel, ctes, outer),
            ast::QueryBody::SetOp {
                op,
                all,
                left,
                right,
            } => {
                let (lp, ls) = self.analyze_body(left, ctes, outer)?;
                let (rp, _) = self.analyze_body(right, ctes, outer)?;
                let lschema = lp.schema();
                let rschema = rp.schema();
                if lschema.len() != rschema.len() {
                    return Err(HiveError::Analysis(format!(
                        "set operation arity mismatch: {} vs {}",
                        lschema.len(),
                        rschema.len()
                    )));
                }
                // Cast right side to the left side's types.
                let rp = cast_to_schema(Arc::new(rp), &lschema)?;
                let lp = Arc::new(lp);
                let plan = match op {
                    ast::SetOperator::Union => {
                        let union = LogicalPlan::Union {
                            inputs: vec![lp, rp],
                        };
                        if *all {
                            union
                        } else {
                            distinct_of(Arc::new(union))
                        }
                    }
                    _ => LogicalPlan::SetOp {
                        op: *op,
                        all: *all,
                        left: lp,
                        right: rp,
                    },
                };
                Ok((plan, ls))
            }
        }
    }

    // ---- FROM clause -----------------------------------------------------

    fn analyze_table_ref(
        &self,
        t: &ast::TableRef,
        ctes: &mut HashMap<String, ast::Query>,
        outer: Option<&OuterContext>,
    ) -> Result<(Arc<LogicalPlan>, Scope)> {
        match t {
            ast::TableRef::Table { name, alias } => {
                // CTE reference?
                if name.db.is_none() {
                    if let Some(cte_q) = ctes.get(&name.name).cloned() {
                        let plan = self.analyze_query_with(&cte_q, &mut ctes.clone(), None)?;
                        let q = alias.as_deref().unwrap_or(&name.name);
                        let scope = Scope::from_schema(&plan.schema(), Some(q));
                        return Ok((Arc::new(plan), scope));
                    }
                }
                let (scan, table_alias) = self.plan_scan(name, alias.as_deref())?;
                let scope = Scope::from_schema(&scan.schema(), Some(&table_alias));
                Ok((Arc::new(scan), scope))
            }
            ast::TableRef::Subquery { query, alias } => {
                let plan = self.analyze_query_with(query, ctes, outer)?;
                let scope = Scope::from_schema(&plan.schema(), Some(alias));
                Ok((Arc::new(plan), scope))
            }
            ast::TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lp, ls) = self.analyze_table_ref(left, ctes, outer)?;
                let (rp, rs) = self.analyze_table_ref(right, ctes, outer)?;
                let joint_scope = ls.concat(&rs);
                let join_type = match kind {
                    ast::JoinKind::Inner => JoinType::Inner,
                    ast::JoinKind::Left => JoinType::Left,
                    ast::JoinKind::Right => JoinType::Right,
                    ast::JoinKind::Full => JoinType::Full,
                    ast::JoinKind::Cross => JoinType::Cross,
                    ast::JoinKind::LeftSemi => JoinType::Semi,
                };
                let (equi, residual) = match on {
                    Some(cond) => {
                        let mut ctx = SelectContext {
                            plan: Arc::new(LogicalPlan::Join {
                                left: lp.clone(),
                                right: rp.clone(),
                                join_type: JoinType::Inner,
                                equi: vec![],
                                residual: None,
                            }),
                            scope: joint_scope.clone(),
                            outer: None,
                            correlated: Vec::new(),
                        };
                        let lowered = self.lower_expr(cond, &mut ctx, ctes)?;
                        split_join_condition(lowered, lp.schema().len())?
                    }
                    None => (vec![], None),
                };
                let out_scope = if join_type.keeps_right() {
                    joint_scope
                } else {
                    ls
                };
                Ok((
                    Arc::new(LogicalPlan::Join {
                        left: lp,
                        right: rp,
                        join_type,
                        equi,
                        residual,
                    }),
                    out_scope,
                ))
            }
        }
    }

    fn plan_scan(&self, name: &ObjectName, alias: Option<&str>) -> Result<(LogicalPlan, String)> {
        let db = name.db.clone().unwrap_or_else(|| self.catalog.default_db());
        let table = self.catalog.get_table(&db, &name.name)?;
        let full = table.full_schema();
        let data_cols = table.schema.len();
        let external_source = table
            .properties
            .get("druid.datasource")
            .or_else(|| table.properties.get("jdbc.table"))
            .cloned();
        let scan_table = ScanTable {
            qualified_name: table.qualified_name(),
            db: table.db.clone(),
            name: table.name.clone(),
            schema: full.clone(),
            partition_cols: (data_cols..full.len()).collect(),
            handler: table.storage_handler.clone(),
            acid: table.is_acid(),
            is_mv: table.table_type == hive_metastore::TableType::MaterializedView,
            external_query: None,
            external_source,
        };
        let alias = alias
            .map(|a| a.to_ascii_lowercase())
            .unwrap_or_else(|| table.name.clone());
        Ok((
            LogicalPlan::Scan {
                table: scan_table,
                projection: (0..full.len()).collect(),
                filters: vec![],
                partitions: None,
                semijoin_filters: vec![],
            },
            alias,
        ))
    }

    // ---- SELECT ------------------------------------------------------------

    fn analyze_select(
        &self,
        sel: &ast::Select,
        ctes: &mut HashMap<String, ast::Query>,
        outer: Option<&OuterContext>,
    ) -> Result<(LogicalPlan, Scope)> {
        // FROM: comma-separated refs become cross joins.
        let (plan, mut scope) = if sel.from.is_empty() {
            // SELECT without FROM: single empty row.
            (
                Arc::new(LogicalPlan::Values {
                    schema: Schema::empty(),
                    rows: vec![vec![]],
                }),
                Scope::default(),
            )
        } else {
            let mut iter = sel.from.iter();
            let (mut p, mut s) = self.analyze_table_ref(iter.next().unwrap(), ctes, outer)?;
            for t in iter {
                let (rp, rs) = self.analyze_table_ref(t, ctes, outer)?;
                p = Arc::new(LogicalPlan::Join {
                    left: p,
                    right: rp,
                    join_type: JoinType::Cross,
                    equi: vec![],
                    residual: None,
                });
                s = s.concat(&rs);
            }
            (p, s)
        };

        let mut ctx = SelectContext {
            plan: plan.clone(),
            scope: scope.clone(),
            outer,
            correlated: Vec::new(),
        };

        // WHERE: IN/EXISTS subqueries are only supported as top-level
        // conjuncts (they become Semi/Anti joins); scalar subqueries may
        // appear anywhere (they become Left joins producing a column).
        if let Some(pred) = &sel.selection {
            let mut plain: Vec<ScalarExpr> = Vec::new();
            for conjunct in split_ast_conjuncts(pred) {
                let (inner, negated) = unwrap_not(conjunct);
                match inner {
                    ast::Expr::InSubquery {
                        expr,
                        query,
                        negated: n2,
                    } => {
                        let key = self.lower_expr(expr, &mut ctx, ctes)?;
                        let anti = negated ^ *n2;
                        self.plan_subquery_join(
                            &mut ctx,
                            ctes,
                            query,
                            if anti { JoinType::Anti } else { JoinType::Semi },
                            Some(key),
                            false,
                        )?;
                    }
                    ast::Expr::Exists { query, negated: n2 } => {
                        let anti = negated ^ *n2;
                        self.plan_subquery_join(
                            &mut ctx,
                            ctes,
                            query,
                            if anti { JoinType::Anti } else { JoinType::Semi },
                            None,
                            false,
                        )?;
                    }
                    _ => {
                        let lowered = self.lower_expr(conjunct, &mut ctx, ctes)?;
                        plain.push(lowered);
                    }
                }
            }
            if let Some(pred) = ScalarExpr::conjunction(plain) {
                ctx.plan = Arc::new(LogicalPlan::Filter {
                    input: ctx.plan.clone(),
                    predicate: pred,
                });
            }
        }
        let _ = plan; // superseded by the context's plan from here on
        scope = ctx.scope.clone();

        // ---- aggregate & window extraction --------------------------------
        // Gather the output expressions (expanding wildcards).
        let mut out_exprs: Vec<(ast::Expr, Option<String>)> = Vec::new();
        for item in &sel.projection {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in scope.columns.iter().enumerate() {
                        out_exprs.push((
                            ast::Expr::Column {
                                qualifier: c.qualifier.clone(),
                                name: c.name.clone(),
                            },
                            Some(scope.columns[i].name.clone()),
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    for c in scope
                        .columns
                        .iter()
                        .filter(|c| c.qualifier.as_deref() == Some(q.as_str()))
                    {
                        out_exprs.push((
                            ast::Expr::Column {
                                qualifier: c.qualifier.clone(),
                                name: c.name.clone(),
                            },
                            Some(c.name.clone()),
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    out_exprs.push((expr.clone(), alias.clone()));
                }
            }
        }

        let has_aggs = !sel.group_by.is_empty()
            || sel.having.is_some()
            || out_exprs.iter().any(|(e, _)| contains_aggregate(e));

        let (final_plan, final_scope) = if has_aggs {
            self.plan_aggregate_select(sel, &out_exprs, ctx, ctes)?
        } else {
            self.plan_plain_select(sel, &out_exprs, ctx, ctes)?
        };

        // DISTINCT.
        if sel.distinct {
            let p = distinct_of(Arc::new(final_plan));
            return Ok((p, final_scope));
        }
        Ok((final_plan, final_scope))
    }

    /// SELECT without aggregation: project (with window extraction).
    fn plan_plain_select(
        &self,
        _sel: &ast::Select,
        out_exprs: &[(ast::Expr, Option<String>)],
        mut ctx: SelectContext,
        ctes: &mut HashMap<String, ast::Query>,
    ) -> Result<(LogicalPlan, Scope)> {
        // Extract window expressions first; each becomes a named column
        // appended by the Window node, and its occurrences in the select
        // list are substituted by that column reference (windows may be
        // nested inside larger expressions).
        let windows = collect_windows(out_exprs.iter().map(|(e, _)| e));
        let mut window_names: HashMap<String, String> = HashMap::new();
        if !windows.is_empty() {
            let mut lowered_windows = Vec::new();
            for w in windows.iter() {
                lowered_windows.push(self.lower_window(w, &mut ctx, ctes)?);
            }
            ctx.plan = Arc::new(LogicalPlan::Window {
                input: ctx.plan.clone(),
                windows: lowered_windows,
            });
            for w in &windows {
                let name = format!("_w{}", ctx.scope.columns.len());
                window_names.insert(window_key(w), name.clone());
                ctx.scope.columns.push(ScopeColumn {
                    qualifier: None,
                    name,
                });
            }
        }

        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for (i, (e, alias)) in out_exprs.iter().enumerate() {
            let rewritten = replace_windows_in_ast(e, &window_names);
            let lowered = self.lower_expr(&rewritten, &mut ctx, ctes)?;
            names.push(output_name(e, alias, i));
            exprs.push(lowered);
        }
        let plan = LogicalPlan::Project {
            input: ctx.plan,
            exprs,
            names: names.clone(),
        };
        let scope = Scope {
            columns: names
                .into_iter()
                .map(|n| ScopeColumn {
                    qualifier: None,
                    name: n,
                })
                .collect(),
        };
        Ok((plan, scope))
    }

    /// SELECT with GROUP BY / aggregates / HAVING.
    fn plan_aggregate_select(
        &self,
        sel: &ast::Select,
        out_exprs: &[(ast::Expr, Option<String>)],
        mut ctx: SelectContext,
        ctes: &mut HashMap<String, ast::Query>,
    ) -> Result<(LogicalPlan, Scope)> {
        // Resolve group expressions (allowing aliases and ordinals).
        let mut group_ast: Vec<ast::Expr> = Vec::new();
        for g in &sel.group_by {
            let resolved = match g {
                ast::Expr::Literal(Value::Int(n))
                    if *n >= 1 && (*n as usize) <= out_exprs.len() =>
                {
                    out_exprs[*n as usize - 1].0.clone()
                }
                ast::Expr::Column {
                    qualifier: None,
                    name,
                } if ctx.scope.resolve(None, name)?.is_none() => {
                    // Alias reference.
                    out_exprs
                        .iter()
                        .find(|(_, a)| a.as_deref() == Some(name.as_str()))
                        .map(|(e, _)| e.clone())
                        .ok_or_else(|| {
                            HiveError::Analysis(format!("cannot resolve group key {name}"))
                        })?
                }
                other => other.clone(),
            };
            group_ast.push(resolved);
        }

        let group_lowered: Vec<ScalarExpr> = group_ast
            .iter()
            .map(|g| self.lower_expr(g, &mut ctx, ctes))
            .collect::<Result<Vec<_>>>()?;

        // Collect aggregate calls from projection, HAVING and ORDER BY
        // handled separately (ORDER BY resolves over output).
        let mut agg_calls: Vec<ast::Expr> = Vec::new();
        for (e, _) in out_exprs {
            collect_aggregates(e, &mut agg_calls);
        }
        if let Some(h) = &sel.having {
            collect_aggregates(h, &mut agg_calls);
        }
        dedup_exprs(&mut agg_calls);

        let mut lowered_aggs = Vec::new();
        for call in &agg_calls {
            lowered_aggs.push(self.lower_aggregate(call, &mut ctx, ctes)?);
        }

        let agg_plan = Arc::new(LogicalPlan::Aggregate {
            input: ctx.plan.clone(),
            group_exprs: group_lowered,
            grouping_sets: sel.grouping_sets.clone(),
            aggs: lowered_aggs,
        });

        // Build the post-aggregation scope: group keys then agg outputs.
        let mut replace: Vec<(ast::Expr, usize)> = Vec::new();
        for (i, g) in group_ast.iter().enumerate() {
            replace.push((g.clone(), i));
        }
        for (i, a) in agg_calls.iter().enumerate() {
            replace.push((a.clone(), group_ast.len() + i));
        }
        let agg_schema = agg_plan.schema();
        let agg_scope = Scope::from_schema(&agg_schema, None);

        let mut post_ctx = SelectContext {
            plan: agg_plan,
            scope: agg_scope,
            outer: ctx.outer,
            correlated: std::mem::take(&mut ctx.correlated),
        };

        // HAVING.
        if let Some(h) = &sel.having {
            let lowered = self.lower_post_agg(h, &replace, &mut post_ctx, ctes)?;
            post_ctx.plan = Arc::new(LogicalPlan::Filter {
                input: post_ctx.plan.clone(),
                predicate: lowered,
            });
        }

        // Windows over aggregated output: window arguments may contain
        // aggregate calls (e.g. SUM(SUM(x)) OVER …), resolved through
        // the same replace list; window occurrences in the select list
        // are substituted by the appended window columns.
        let windows = collect_windows(out_exprs.iter().map(|(e, _)| e));
        let mut window_names: HashMap<String, String> = HashMap::new();
        let base_len = post_ctx.plan.schema().len();
        if !windows.is_empty() {
            let mut lowered_windows = Vec::new();
            for w in windows.iter() {
                let lw = self.lower_window_post_agg(w, &replace, &mut post_ctx, ctes)?;
                lowered_windows.push(lw);
            }
            post_ctx.plan = Arc::new(LogicalPlan::Window {
                input: post_ctx.plan.clone(),
                windows: lowered_windows,
            });
            for (i, w) in windows.iter().enumerate() {
                let name = format!("_w{}", base_len + i);
                window_names.insert(window_key(w), name.clone());
                post_ctx.scope.columns.push(ScopeColumn {
                    qualifier: None,
                    name,
                });
            }
            // Window columns are addressable through the replace list as
            // well (the post-agg lowering path).
        }

        // Final projection.
        let mut exprs = Vec::new();
        let mut names = Vec::new();
        for (i, (e, alias)) in out_exprs.iter().enumerate() {
            let rewritten = replace_windows_in_ast(e, &window_names);
            let lowered = self.lower_post_agg(&rewritten, &replace, &mut post_ctx, ctes)?;
            names.push(output_name(e, alias, i));
            exprs.push(lowered);
        }
        // GROUPING SETS expose the grouping id for queries that need it;
        // plain queries just project it away.
        let plan = LogicalPlan::Project {
            input: post_ctx.plan,
            exprs,
            names: names.clone(),
        };
        ctx.correlated = post_ctx.correlated;
        let scope = Scope {
            columns: names
                .into_iter()
                .map(|n| ScopeColumn {
                    qualifier: None,
                    name: n,
                })
                .collect(),
        };
        Ok((plan, scope))
    }

    /// Lower an expression that may reference aggregate results: first
    /// substitute known (group key / agg call) subtrees by their output
    /// column, then lower the remainder.
    fn lower_post_agg(
        &self,
        e: &ast::Expr,
        replace: &[(ast::Expr, usize)],
        ctx: &mut SelectContext,
        ctes: &mut HashMap<String, ast::Query>,
    ) -> Result<ScalarExpr> {
        for (pat, idx) in replace {
            if exprs_equal(e, pat) {
                return Ok(ScalarExpr::Column(*idx));
            }
        }
        match e {
            ast::Expr::BinaryOp { left, op, right } => Ok(ScalarExpr::Binary {
                op: *op,
                left: Box::new(self.lower_post_agg(left, replace, ctx, ctes)?),
                right: Box::new(self.lower_post_agg(right, replace, ctx, ctes)?),
            }),
            ast::Expr::Not(inner) => Ok(ScalarExpr::Not(Box::new(
                self.lower_post_agg(inner, replace, ctx, ctes)?,
            ))),
            ast::Expr::Negate(inner) => Ok(ScalarExpr::Negate(Box::new(
                self.lower_post_agg(inner, replace, ctx, ctes)?,
            ))),
            ast::Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.lower_post_agg(expr, replace, ctx, ctes)?),
                negated: *negated,
            }),
            ast::Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.lower_post_agg(expr, replace, ctx, ctes)?;
                let lo = self.lower_post_agg(low, replace, ctx, ctes)?;
                let hi = self.lower_post_agg(high, replace, ctx, ctes)?;
                Ok(lower_between(e, lo, hi, *negated))
            }
            ast::Expr::InList {
                expr,
                list,
                negated,
            } => Ok(ScalarExpr::InList {
                expr: Box::new(self.lower_post_agg(expr, replace, ctx, ctes)?),
                list: list
                    .iter()
                    .map(|x| self.lower_post_agg(x, replace, ctx, ctes))
                    .collect::<Result<Vec<_>>>()?,
                negated: *negated,
            }),
            ast::Expr::Case {
                operand,
                branches,
                else_expr,
            } => Ok(ScalarExpr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| self.lower_post_agg(o, replace, ctx, ctes).map(Box::new))
                    .transpose()?,
                branches: branches
                    .iter()
                    .map(|(c, r)| {
                        Ok((
                            self.lower_post_agg(c, replace, ctx, ctes)?,
                            self.lower_post_agg(r, replace, ctx, ctes)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?,
                else_expr: else_expr
                    .as_ref()
                    .map(|o| self.lower_post_agg(o, replace, ctx, ctes).map(Box::new))
                    .transpose()?,
            }),
            ast::Expr::Cast { expr, to } => Ok(ScalarExpr::Cast {
                expr: Box::new(self.lower_post_agg(expr, replace, ctx, ctes)?),
                to: to.clone(),
            }),
            ast::Expr::Function { name, args, .. } if name == "grouping" => {
                // grouping(col): derived from the grouping-id column,
                // which the Aggregate appends last.
                let _ = args;
                let gid_idx = ctx
                    .scope
                    .columns
                    .iter()
                    .position(|c| c.name == "_grouping_id")
                    .ok_or_else(|| {
                        HiveError::Analysis("grouping() without GROUPING SETS".into())
                    })?;
                Ok(ScalarExpr::Column(gid_idx))
            }
            ast::Expr::Function { name, args, .. } => {
                if let Some(func) = BuiltinFunc::from_name(name) {
                    Ok(ScalarExpr::Func {
                        func,
                        args: args
                            .iter()
                            .map(|a| self.lower_post_agg(a, replace, ctx, ctes))
                            .collect::<Result<Vec<_>>>()?,
                    })
                } else if AggFunc::from_name(name).is_some() {
                    Err(HiveError::Analysis(format!(
                        "aggregate {name} not found in aggregation list"
                    )))
                } else {
                    Err(HiveError::Analysis(format!("unknown function {name}")))
                }
            }
            // Plain columns: group keys are substituted above; anything
            // else must still resolve (e.g. grouping-set key columns).
            other => self.lower_expr(other, ctx, ctes),
        }
    }

    fn lower_window_post_agg(
        &self,
        w: &ast::Expr,
        replace: &[(ast::Expr, usize)],
        ctx: &mut SelectContext,
        ctes: &mut HashMap<String, ast::Query>,
    ) -> Result<WindowExpr> {
        if let ast::Expr::Window {
            func,
            args,
            partition_by,
            order_by,
            frame,
        } = w
        {
            let wf = WindowFunc::from_name(func)
                .ok_or_else(|| HiveError::Analysis(format!("unknown window function {func}")))?;
            Ok(WindowExpr {
                func: wf,
                args: args
                    .iter()
                    .map(|a| self.lower_post_agg(a, replace, ctx, ctes))
                    .collect::<Result<Vec<_>>>()?,
                partition_by: partition_by
                    .iter()
                    .map(|a| self.lower_post_agg(a, replace, ctx, ctes))
                    .collect::<Result<Vec<_>>>()?,
                order_by: order_by
                    .iter()
                    .map(|o| {
                        Ok(SortKey {
                            expr: self.lower_post_agg(&o.expr, replace, ctx, ctes)?,
                            asc: o.asc,
                            nulls_first: o.nulls_first.unwrap_or(!o.asc),
                        })
                    })
                    .collect::<Result<Vec<_>>>()?,
                frame: frame.clone(),
            })
        } else {
            Err(HiveError::Analysis("expected window expression".into()))
        }
    }

    fn lower_window(
        &self,
        w: &ast::Expr,
        ctx: &mut SelectContext,
        ctes: &mut HashMap<String, ast::Query>,
    ) -> Result<WindowExpr> {
        self.lower_window_post_agg(w, &[], ctx, ctes)
    }

    fn lower_aggregate(
        &self,
        call: &ast::Expr,
        ctx: &mut SelectContext,
        ctes: &mut HashMap<String, ast::Query>,
    ) -> Result<AggExpr> {
        if let ast::Expr::Function {
            name,
            args,
            distinct,
        } = call
        {
            let func = AggFunc::from_name(name)
                .ok_or_else(|| HiveError::Analysis(format!("unknown aggregate {name}")))?;
            let arg = match args.first() {
                Some(a) => Some(self.lower_expr(a, ctx, ctes)?),
                None => None,
            };
            Ok(AggExpr {
                func,
                arg,
                distinct: *distinct,
            })
        } else {
            Err(HiveError::Analysis("expected aggregate call".into()))
        }
    }

    // ---- expression lowering -------------------------------------------

    /// Lower an AST expression against the current context. Subquery
    /// expressions splice joins into `ctx.plan`. Columns that fail local
    /// resolution but resolve in the outer scope register a correlated
    /// conjunct (handled by the caller building the subquery join).
    fn lower_expr(
        &self,
        e: &ast::Expr,
        ctx: &mut SelectContext,
        ctes: &mut HashMap<String, ast::Query>,
    ) -> Result<ScalarExpr> {
        match e {
            ast::Expr::Literal(v) => Ok(ScalarExpr::Literal(v.clone())),
            ast::Expr::Column { qualifier, name } => {
                if let Some(i) = ctx.scope.resolve(qualifier.as_deref(), name)? {
                    return Ok(ScalarExpr::Column(i));
                }
                // Correlated reference to the outer query?
                if let Some(outer) = ctx.outer {
                    if let Some(i) = resolve_outer(outer, qualifier.as_deref(), name)? {
                        // Mark with a sentinel that the subquery-planning
                        // caller extracts; expressed as a pseudo column
                        // beyond the local schema.
                        return Ok(ScalarExpr::Column(CORRELATED_BASE + i));
                    }
                }
                Err(HiveError::Analysis(format!(
                    "cannot resolve column {}{}",
                    qualifier
                        .as_deref()
                        .map(|q| format!("{q}."))
                        .unwrap_or_default(),
                    name
                )))
            }
            ast::Expr::BinaryOp { left, op, right } => {
                // Date ± INTERVAL lowering.
                if matches!(op, BinaryOp::Plus | BinaryOp::Minus) {
                    if let Some(expr) = self.try_lower_interval_arith(left, op, right, ctx, ctes)? {
                        return Ok(expr);
                    }
                }
                let l = self.lower_expr(left, ctx, ctes)?;
                let r = self.lower_expr(right, ctx, ctes)?;
                Ok(ScalarExpr::Binary {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                })
            }
            ast::Expr::Not(inner) => Ok(ScalarExpr::Not(Box::new(
                self.lower_expr(inner, ctx, ctes)?,
            ))),
            ast::Expr::Negate(inner) => Ok(ScalarExpr::Negate(Box::new(
                self.lower_expr(inner, ctx, ctes)?,
            ))),
            ast::Expr::IsNull { expr, negated } => Ok(ScalarExpr::IsNull {
                expr: Box::new(self.lower_expr(expr, ctx, ctes)?),
                negated: *negated,
            }),
            ast::Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let e = self.lower_expr(expr, ctx, ctes)?;
                let lo = self.lower_expr(low, ctx, ctes)?;
                let hi = self.lower_expr(high, ctx, ctes)?;
                Ok(lower_between(e, lo, hi, *negated))
            }
            ast::Expr::InList {
                expr,
                list,
                negated,
            } => Ok(ScalarExpr::InList {
                expr: Box::new(self.lower_expr(expr, ctx, ctes)?),
                list: list
                    .iter()
                    .map(|x| self.lower_expr(x, ctx, ctes))
                    .collect::<Result<Vec<_>>>()?,
                negated: *negated,
            }),
            ast::Expr::Like {
                expr,
                pattern,
                negated,
            } => Ok(ScalarExpr::Like {
                expr: Box::new(self.lower_expr(expr, ctx, ctes)?),
                pattern: Box::new(self.lower_expr(pattern, ctx, ctes)?),
                negated: *negated,
            }),
            ast::Expr::Case {
                operand,
                branches,
                else_expr,
            } => Ok(ScalarExpr::Case {
                operand: operand
                    .as_ref()
                    .map(|o| self.lower_expr(o, ctx, ctes).map(Box::new))
                    .transpose()?,
                branches: branches
                    .iter()
                    .map(|(c, r)| {
                        Ok((
                            self.lower_expr(c, ctx, ctes)?,
                            self.lower_expr(r, ctx, ctes)?,
                        ))
                    })
                    .collect::<Result<Vec<_>>>()?,
                else_expr: else_expr
                    .as_ref()
                    .map(|o| self.lower_expr(o, ctx, ctes).map(Box::new))
                    .transpose()?,
            }),
            ast::Expr::Cast { expr, to } => Ok(ScalarExpr::Cast {
                expr: Box::new(self.lower_expr(expr, ctx, ctes)?),
                to: to.clone(),
            }),
            ast::Expr::Extract { field, expr } => Ok(ScalarExpr::Extract {
                field: *field,
                expr: Box::new(self.lower_expr(expr, ctx, ctes)?),
            }),
            ast::Expr::Function { name, args, .. } => {
                if let Some(func) = BuiltinFunc::from_name(name) {
                    return Ok(ScalarExpr::Func {
                        func,
                        args: args
                            .iter()
                            .map(|a| self.lower_expr(a, ctx, ctes))
                            .collect::<Result<Vec<_>>>()?,
                    });
                }
                if AggFunc::from_name(name).is_some() {
                    return Err(HiveError::Analysis(format!(
                        "aggregate function {name} not allowed here"
                    )));
                }
                Err(HiveError::Analysis(format!("unknown function {name}")))
            }
            ast::Expr::Window { .. } => Err(HiveError::Analysis(
                "window function not allowed in this context".into(),
            )),
            ast::Expr::InSubquery { .. } | ast::Expr::Exists { .. } => Err(HiveError::Unsupported(
                "IN/EXISTS subqueries are only supported as top-level WHERE conjuncts".into(),
            )),
            ast::Expr::ScalarSubquery(query) => {
                let col = self.plan_subquery_join(ctx, ctes, query, JoinType::Left, None, true)?;
                Ok(ScalarExpr::Column(col))
            }
        }
    }

    /// Lower date ± interval into date_add/add_months calls.
    fn try_lower_interval_arith(
        &self,
        left: &ast::Expr,
        op: &BinaryOp,
        right: &ast::Expr,
        ctx: &mut SelectContext,
        ctes: &mut HashMap<String, ast::Query>,
    ) -> Result<Option<ScalarExpr>> {
        let interval = match right {
            ast::Expr::Function { name, args, .. } if name.starts_with("__interval_") => {
                Some((name.as_str(), args))
            }
            _ => None,
        };
        let Some((unit, args)) = interval else {
            return Ok(None);
        };
        let n = match args.first() {
            Some(ast::Expr::Literal(v)) => v.as_i64().unwrap_or(0),
            _ => 0,
        };
        let n = if *op == BinaryOp::Minus { -n } else { n };
        let base = self.lower_expr(left, ctx, ctes)?;
        let expr = match unit {
            "__interval_day" => ScalarExpr::Func {
                func: BuiltinFunc::DateAdd,
                args: vec![base, ScalarExpr::Literal(Value::BigInt(n))],
            },
            "__interval_month" => ScalarExpr::Func {
                func: BuiltinFunc::AddMonths,
                args: vec![base, ScalarExpr::Literal(Value::BigInt(n))],
            },
            "__interval_year" => ScalarExpr::Func {
                func: BuiltinFunc::AddMonths,
                args: vec![base, ScalarExpr::Literal(Value::BigInt(n * 12))],
            },
            _ => return Ok(None),
        };
        Ok(Some(expr))
    }

    /// Plan a subquery as a join spliced onto `ctx.plan`, decorrelating
    /// conjuncts that reference the outer scope.
    ///
    /// Returns the output-column index of the scalar value for scalar
    /// subqueries (`scalar = true`); otherwise 0.
    fn plan_subquery_join(
        &self,
        ctx: &mut SelectContext,
        ctes: &mut HashMap<String, ast::Query>,
        query: &ast::Query,
        join_type: JoinType,
        in_key: Option<ScalarExpr>,
        scalar: bool,
    ) -> Result<usize> {
        // Analyze the inner query with the current scope as its outer.
        let outer_ctx = OuterContext {
            scope: &ctx.scope,
            parent: None,
        };
        let inner_plan = self.analyze_query_with(query, ctes, Some(&outer_ctx))?;
        // Extract correlated predicates: walk the inner plan's filters
        // for conjuncts mentioning CORRELATED_BASE columns.
        let (inner_plan, correlated) = extract_correlation(inner_plan)?;
        let inner = Arc::new(inner_plan);
        let inner_schema = inner.schema();
        let left_len = ctx.plan.schema().len();

        let mut equi: Vec<(ScalarExpr, ScalarExpr)> = Vec::new();
        let mut residual_parts: Vec<ScalarExpr> = Vec::new();
        if let Some(key) = in_key {
            // IN key matches the subquery's first output column.
            equi.push((key, ScalarExpr::Column(0)));
        }
        for (inner_expr, op, outer_idx) in correlated {
            if op == BinaryOp::Eq {
                equi.push((ScalarExpr::Column(outer_idx), inner_expr));
            } else {
                // Residual over concatenated schema.
                residual_parts.push(ScalarExpr::Binary {
                    op,
                    left: Box::new(inner_expr.shift_columns(left_len)),
                    right: Box::new(ScalarExpr::Column(outer_idx)),
                });
            }
        }

        // The scalar value is the subquery's first select-list column
        // (decorrelation may have appended pass-through key columns
        // after it).
        let _ = inner_schema;
        let scalar_col = if scalar { left_len } else { 0 };

        ctx.plan = Arc::new(LogicalPlan::Join {
            left: ctx.plan.clone(),
            right: inner.clone(),
            join_type,
            equi,
            residual: ScalarExpr::conjunction(residual_parts),
        });
        if join_type.keeps_right() {
            ctx.scope = ctx.scope.concat(&Scope::from_schema(&inner.schema(), None));
        }
        Ok(scalar_col)
    }
}

/// Sentinel base for correlated (outer) column references during
/// subquery analysis: `Column(CORRELATED_BASE + outer_index)`.
pub(crate) const CORRELATED_BASE: usize = 1 << 24;

fn resolve_outer(
    outer: &OuterContext,
    qualifier: Option<&str>,
    name: &str,
) -> Result<Option<usize>> {
    if let Some(i) = outer.scope.resolve(qualifier, name)? {
        return Ok(Some(i));
    }
    match outer.parent {
        Some(p) => resolve_outer(p, qualifier, name),
        None => Ok(None),
    }
}

/// How a node transformation moved its output columns, so parents can
/// rebase their expressions.
#[derive(Debug, Clone, Copy)]
enum Remap {
    Identity,
    /// Columns at or beyond `at` shift up by `by` (group-key insertion).
    Shift {
        at: usize,
        by: usize,
    },
}

impl Remap {
    fn apply(&self, e: ScalarExpr) -> ScalarExpr {
        match self {
            Remap::Identity => e,
            Remap::Shift { at, by } => e.transform(&mut |x| match x {
                ScalarExpr::Column(c) if c >= *at && c < CORRELATED_BASE => {
                    ScalarExpr::Column(c + by)
                }
                other => other,
            }),
        }
    }
}

/// Pull correlated conjuncts (those referencing `CORRELATED_BASE`
/// columns) out of the inner plan's filters. Returns the cleaned plan
/// and the extracted `(inner expr over plan output, op, outer column)`
/// triples.
///
/// Correlated references are supported in top-level WHERE conjuncts of
/// the subquery of the form `<inner expr> op <outer column>`; anything
/// deeper is rejected, matching the common decorrelation classes.
/// Aggregates decorrelate by appending the correlation keys to the
/// group key (classic Kim-style unnesting); projections grow
/// pass-through columns when needed.
#[allow(clippy::type_complexity)]
fn extract_correlation(
    plan: LogicalPlan,
) -> Result<(LogicalPlan, Vec<(ScalarExpr, BinaryOp, usize)>)> {
    let mut collected: Vec<(ScalarExpr, BinaryOp, usize)> = Vec::new();
    let (cleaned, _) = strip_correlated(&plan, &mut collected)?;
    Ok((cleaned, collected))
}

fn has_correlated(e: &ScalarExpr) -> bool {
    e.columns().iter().any(|&c| c >= CORRELATED_BASE)
}

fn strip_correlated(
    plan: &LogicalPlan,
    out: &mut Vec<(ScalarExpr, BinaryOp, usize)>,
) -> Result<(LogicalPlan, Remap)> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let (input_clean, map) = strip_correlated(input, out)?;
            let mut keep: Vec<ScalarExpr> = Vec::new();
            for part in predicate.split_conjunction() {
                let part = map.apply(part.clone());
                if has_correlated(&part) {
                    out.push(classify_correlated(&part)?);
                } else {
                    keep.push(part);
                }
            }
            let plan = match ScalarExpr::conjunction(keep) {
                Some(pred) => LogicalPlan::Filter {
                    input: Arc::new(input_clean),
                    predicate: pred,
                },
                None => input_clean,
            };
            Ok((plan, map))
        }
        LogicalPlan::Aggregate {
            input,
            group_exprs,
            grouping_sets,
            aggs,
        } => {
            let before = out.len();
            let (input_clean, map) = strip_correlated(input, out)?;
            let mut group_exprs: Vec<ScalarExpr> =
                group_exprs.iter().map(|g| map.apply(g.clone())).collect();
            let aggs: Vec<AggExpr> = aggs
                .iter()
                .map(|a| AggExpr {
                    func: a.func,
                    arg: a.arg.clone().map(|e| map.apply(e)),
                    distinct: a.distinct,
                })
                .collect();
            let n_orig = group_exprs.len();
            if out.len() > before {
                if grouping_sets.is_some() {
                    return Err(HiveError::Unsupported(
                        "correlated subquery with grouping sets".into(),
                    ));
                }
                // Append the correlation keys to the group keys and
                // rewrite extracted entries to the aggregate's output.
                for item in out[before..].iter_mut() {
                    let key_expr = item.0.clone();
                    let idx = match group_exprs.iter().position(|g| *g == key_expr) {
                        Some(i) => i,
                        None => {
                            group_exprs.push(key_expr);
                            group_exprs.len() - 1
                        }
                    };
                    item.0 = ScalarExpr::Column(idx);
                }
            }
            let n_new = group_exprs.len() - n_orig;
            let plan = LogicalPlan::Aggregate {
                input: Arc::new(input_clean),
                group_exprs,
                grouping_sets: grouping_sets.clone(),
                aggs,
            };
            let remap = if n_new > 0 {
                Remap::Shift {
                    at: n_orig,
                    by: n_new,
                }
            } else {
                Remap::Identity
            };
            Ok((plan, remap))
        }
        LogicalPlan::Project {
            input,
            exprs,
            names,
        } => {
            let before = out.len();
            let (input_clean, map) = strip_correlated(input, out)?;
            let mut exprs: Vec<ScalarExpr> = exprs.iter().map(|e| map.apply(e.clone())).collect();
            let mut names = names.clone();
            if out.len() > before {
                // Re-express extracted entries over the projection
                // output; add pass-through columns where needed.
                for item in out[before..].iter_mut() {
                    let wanted = item.0.clone();
                    let pos = exprs.iter().position(|e| *e == wanted);
                    let idx = match pos {
                        Some(i) => i,
                        None => {
                            exprs.push(wanted);
                            names.push(format!("_corr{}", names.len()));
                            exprs.len() - 1
                        }
                    };
                    item.0 = ScalarExpr::Column(idx);
                }
            }
            let plan = LogicalPlan::Project {
                input: Arc::new(input_clean),
                exprs,
                names,
            };
            // Old output columns keep their positions.
            Ok((plan, Remap::Identity))
        }
        LogicalPlan::Sort { input, keys } => {
            let (input_clean, map) = strip_correlated(input, out)?;
            let keys = keys
                .iter()
                .map(|k| SortKey {
                    expr: map.apply(k.expr.clone()),
                    asc: k.asc,
                    nulls_first: k.nulls_first,
                })
                .collect();
            Ok((
                LogicalPlan::Sort {
                    input: Arc::new(input_clean),
                    keys,
                },
                map,
            ))
        }
        LogicalPlan::Limit { input, n } => {
            let (input_clean, map) = strip_correlated(input, out)?;
            Ok((
                LogicalPlan::Limit {
                    input: Arc::new(input_clean),
                    n: *n,
                },
                map,
            ))
        }
        other => {
            // Any remaining correlated reference deeper in the tree is
            // unsupported.
            let mut bad = false;
            other.visit(&mut |p| {
                let check = |e: &ScalarExpr| has_correlated(e);
                match p {
                    LogicalPlan::Filter { predicate, .. } => bad |= check(predicate),
                    LogicalPlan::Project { exprs, .. } => bad |= exprs.iter().any(check),
                    LogicalPlan::Join { equi, residual, .. } => {
                        bad |= equi.iter().any(|(l, r)| check(l) || check(r));
                        if let Some(r) = residual {
                            bad |= check(r);
                        }
                    }
                    _ => {}
                }
            });
            if bad {
                return Err(HiveError::Unsupported(
                    "correlated subquery pattern not supported".into(),
                ));
            }
            Ok((other.clone(), Remap::Identity))
        }
    }
}

/// Split an AST predicate into top-level AND conjuncts.
fn split_ast_conjuncts(e: &ast::Expr) -> Vec<&ast::Expr> {
    match e {
        ast::Expr::BinaryOp {
            op: BinaryOp::And,
            left,
            right,
        } => {
            let mut out = split_ast_conjuncts(left);
            out.extend(split_ast_conjuncts(right));
            out
        }
        other => vec![other],
    }
}

/// Strip a NOT wrapper, reporting whether negation applies.
fn unwrap_not(e: &ast::Expr) -> (&ast::Expr, bool) {
    match e {
        ast::Expr::Not(inner) => {
            let (e2, n) = unwrap_not(inner);
            (e2, !n)
        }
        other => (other, false),
    }
}

/// Classify one correlated conjunct into `(inner expr, op, outer col)`.
fn classify_correlated(e: &ScalarExpr) -> Result<(ScalarExpr, BinaryOp, usize)> {
    if let ScalarExpr::Binary { op, left, right } = e {
        let l_corr = has_correlated(left);
        let r_corr = has_correlated(right);
        if l_corr ^ r_corr {
            let (outer_side, inner_side, op) = if r_corr {
                (right, left, *op)
            } else {
                (left, right, flip_op(*op))
            };
            if let ScalarExpr::Column(c) = outer_side.as_ref() {
                if *c >= CORRELATED_BASE && !has_correlated(inner_side) {
                    return Ok((inner_side.as_ref().clone(), op, c - CORRELATED_BASE));
                }
            }
        }
    }
    Err(HiveError::Unsupported(format!(
        "unsupported correlated predicate: {e}"
    )))
}

fn flip_op(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other,
    }
}

/// `BETWEEN` lowered to a pair of comparisons.
fn lower_between(e: ScalarExpr, lo: ScalarExpr, hi: ScalarExpr, negated: bool) -> ScalarExpr {
    let ge = ScalarExpr::Binary {
        op: BinaryOp::GtEq,
        left: Box::new(e.clone()),
        right: Box::new(lo),
    };
    let le = ScalarExpr::Binary {
        op: BinaryOp::LtEq,
        left: Box::new(e),
        right: Box::new(hi),
    };
    let both = ScalarExpr::Binary {
        op: BinaryOp::And,
        left: Box::new(ge),
        right: Box::new(le),
    };
    if negated {
        ScalarExpr::Not(Box::new(both))
    } else {
        both
    }
}

/// Split a lowered join condition (over the concatenated schema) into
/// equi pairs and a residual.
#[allow(clippy::type_complexity)]
fn split_join_condition(
    cond: ScalarExpr,
    left_len: usize,
) -> Result<(Vec<(ScalarExpr, ScalarExpr)>, Option<ScalarExpr>)> {
    let mut equi = Vec::new();
    let mut residual = Vec::new();
    for part in cond.split_conjunction() {
        if let ScalarExpr::Binary {
            op: BinaryOp::Eq,
            left,
            right,
        } = part
        {
            let l_cols = left.columns();
            let r_cols = right.columns();
            let l_left = l_cols.iter().all(|&c| c < left_len);
            let l_right = l_cols.iter().all(|&c| c >= left_len);
            let r_left = r_cols.iter().all(|&c| c < left_len);
            let r_right = r_cols.iter().all(|&c| c >= left_len);
            if l_left && r_right && !l_cols.is_empty() && !r_cols.is_empty() {
                let r_shift = right
                    .clone()
                    .remap_columns(&|c| Some(c - left_len))
                    .expect("all right side");
                equi.push(((**left).clone(), r_shift));
                continue;
            }
            if l_right && r_left && !l_cols.is_empty() && !r_cols.is_empty() {
                let l_shift = left
                    .clone()
                    .remap_columns(&|c| Some(c - left_len))
                    .expect("all right side");
                equi.push(((**right).clone(), l_shift));
                continue;
            }
        }
        residual.push(part.clone());
    }
    Ok((equi, ScalarExpr::conjunction(residual)))
}

/// `SELECT DISTINCT` / `UNION DISTINCT` as a group-by-all aggregate.
fn distinct_of(input: Arc<LogicalPlan>) -> LogicalPlan {
    let n = input.schema().len();
    LogicalPlan::Aggregate {
        input,
        group_exprs: (0..n).map(ScalarExpr::Column).collect(),
        grouping_sets: None,
        aggs: vec![],
    }
}

/// Insert a cast projection so `plan` produces exactly `target` types.
fn cast_to_schema(plan: Arc<LogicalPlan>, target: &Schema) -> Result<Arc<LogicalPlan>> {
    let schema = plan.schema();
    let mut needs = false;
    for (f, t) in schema.fields().iter().zip(target.fields()) {
        if f.data_type != t.data_type {
            needs = true;
        }
    }
    if !needs {
        return Ok(plan);
    }
    let exprs = schema
        .fields()
        .iter()
        .enumerate()
        .map(|(i, f)| {
            if f.data_type == target.field(i).data_type {
                ScalarExpr::Column(i)
            } else {
                ScalarExpr::Cast {
                    expr: Box::new(ScalarExpr::Column(i)),
                    to: target.field(i).data_type.clone(),
                }
            }
        })
        .collect();
    let names = target.fields().iter().map(|f| f.name.clone()).collect();
    Ok(Arc::new(LogicalPlan::Project {
        input: plan,
        exprs,
        names,
    }))
}

// ---- AST helpers -----------------------------------------------------------

fn contains_aggregate(e: &ast::Expr) -> bool {
    let mut found = false;
    e.visit(&mut |n| {
        if let ast::Expr::Function { name, .. } = n {
            if AggFunc::from_name(name).is_some() {
                found = true;
            }
        }
    });
    found
}

fn collect_aggregates(e: &ast::Expr, out: &mut Vec<ast::Expr>) {
    match e {
        ast::Expr::Function { name, .. } if AggFunc::from_name(name).is_some() => {
            out.push(e.clone());
        }
        ast::Expr::Window { .. } => {
            // Window arguments may contain aggregates (e.g. SUM(SUM(x))
            // OVER ...); collect from args.
            if let ast::Expr::Window {
                args,
                partition_by,
                order_by,
                ..
            } = e
            {
                for a in args {
                    collect_aggregates(a, out);
                }
                for p in partition_by {
                    collect_aggregates(p, out);
                }
                for o in order_by {
                    collect_aggregates(&o.expr, out);
                }
            }
        }
        ast::Expr::BinaryOp { left, right, .. } => {
            collect_aggregates(left, out);
            collect_aggregates(right, out);
        }
        ast::Expr::Not(i) | ast::Expr::Negate(i) => collect_aggregates(i, out),
        ast::Expr::IsNull { expr, .. } => collect_aggregates(expr, out),
        ast::Expr::Between {
            expr, low, high, ..
        } => {
            collect_aggregates(expr, out);
            collect_aggregates(low, out);
            collect_aggregates(high, out);
        }
        ast::Expr::InList { expr, list, .. } => {
            collect_aggregates(expr, out);
            for e in list {
                collect_aggregates(e, out);
            }
        }
        ast::Expr::Like { expr, pattern, .. } => {
            collect_aggregates(expr, out);
            collect_aggregates(pattern, out);
        }
        ast::Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                collect_aggregates(o, out);
            }
            for (c, r) in branches {
                collect_aggregates(c, out);
                collect_aggregates(r, out);
            }
            if let Some(x) = else_expr {
                collect_aggregates(x, out);
            }
        }
        ast::Expr::Cast { expr, .. } | ast::Expr::Extract { expr, .. } => {
            collect_aggregates(expr, out)
        }
        ast::Expr::Function { args, .. } => {
            for a in args {
                collect_aggregates(a, out);
            }
        }
        _ => {}
    }
}

fn collect_windows<'e>(exprs: impl Iterator<Item = &'e ast::Expr>) -> Vec<ast::Expr> {
    let mut out = Vec::new();
    for e in exprs {
        e.visit(&mut |n| {
            if matches!(n, ast::Expr::Window { .. }) {
                out.push(n.clone());
            }
        });
    }
    dedup_exprs(&mut out);
    out
}

fn dedup_exprs(exprs: &mut Vec<ast::Expr>) {
    let mut seen: Vec<String> = Vec::new();
    exprs.retain(|e| {
        let k = expr_fingerprint(e);
        if seen.contains(&k) {
            false
        } else {
            seen.push(k);
            true
        }
    });
}

fn expr_fingerprint(e: &ast::Expr) -> String {
    format!("{e:?}")
}

/// Replace every window-function subtree with a reference to its
/// appended output column (keyed by the window's fingerprint).
fn replace_windows_in_ast(e: &ast::Expr, map: &HashMap<String, String>) -> ast::Expr {
    if let Some(col) = map.get(&expr_fingerprint(e)) {
        return ast::Expr::Column {
            qualifier: None,
            name: col.clone(),
        };
    }
    match e {
        ast::Expr::BinaryOp { left, op, right } => ast::Expr::BinaryOp {
            left: Box::new(replace_windows_in_ast(left, map)),
            op: *op,
            right: Box::new(replace_windows_in_ast(right, map)),
        },
        ast::Expr::Not(i) => ast::Expr::Not(Box::new(replace_windows_in_ast(i, map))),
        ast::Expr::Negate(i) => ast::Expr::Negate(Box::new(replace_windows_in_ast(i, map))),
        ast::Expr::IsNull { expr, negated } => ast::Expr::IsNull {
            expr: Box::new(replace_windows_in_ast(expr, map)),
            negated: *negated,
        },
        ast::Expr::Between {
            expr,
            low,
            high,
            negated,
        } => ast::Expr::Between {
            expr: Box::new(replace_windows_in_ast(expr, map)),
            low: Box::new(replace_windows_in_ast(low, map)),
            high: Box::new(replace_windows_in_ast(high, map)),
            negated: *negated,
        },
        ast::Expr::InList {
            expr,
            list,
            negated,
        } => ast::Expr::InList {
            expr: Box::new(replace_windows_in_ast(expr, map)),
            list: list
                .iter()
                .map(|i| replace_windows_in_ast(i, map))
                .collect(),
            negated: *negated,
        },
        ast::Expr::Like {
            expr,
            pattern,
            negated,
        } => ast::Expr::Like {
            expr: Box::new(replace_windows_in_ast(expr, map)),
            pattern: Box::new(replace_windows_in_ast(pattern, map)),
            negated: *negated,
        },
        ast::Expr::Case {
            operand,
            branches,
            else_expr,
        } => ast::Expr::Case {
            operand: operand
                .as_ref()
                .map(|o| Box::new(replace_windows_in_ast(o, map))),
            branches: branches
                .iter()
                .map(|(c, r)| {
                    (
                        replace_windows_in_ast(c, map),
                        replace_windows_in_ast(r, map),
                    )
                })
                .collect(),
            else_expr: else_expr
                .as_ref()
                .map(|x| Box::new(replace_windows_in_ast(x, map))),
        },
        ast::Expr::Cast { expr, to } => ast::Expr::Cast {
            expr: Box::new(replace_windows_in_ast(expr, map)),
            to: to.clone(),
        },
        ast::Expr::Extract { field, expr } => ast::Expr::Extract {
            field: *field,
            expr: Box::new(replace_windows_in_ast(expr, map)),
        },
        ast::Expr::Function {
            name,
            args,
            distinct,
        } => ast::Expr::Function {
            name: name.clone(),
            args: args
                .iter()
                .map(|a| replace_windows_in_ast(a, map))
                .collect(),
            distinct: *distinct,
        },
        other => other.clone(),
    }
}

fn window_key(e: &ast::Expr) -> String {
    expr_fingerprint(e)
}

fn exprs_equal(a: &ast::Expr, b: &ast::Expr) -> bool {
    a == b
}

/// Derive the output column name for a select item.
fn output_name(e: &ast::Expr, alias: &Option<String>, pos: usize) -> String {
    if let Some(a) = alias {
        return a.clone();
    }
    match e {
        ast::Expr::Column { name, .. } => name.clone(),
        _ => format!("_c{pos}"),
    }
}
