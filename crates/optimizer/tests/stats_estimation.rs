//! Estimation battery over known data distributions: `estimate_rows`
//! with histogram-driven selectivity must land within bounded error of
//! the true cardinalities for uniform, zipf-skewed, all-NULL and
//! single-valued columns — and merged per-partition histograms must
//! agree with a whole-table histogram.

use hive_common::{DataType, Field, Schema, Value};
use hive_metastore::{ColumnHistogram, TableStats};
use hive_optimizer::plan::{LogicalPlan, ScanTable};
use hive_optimizer::stats::{estimate_rows, GatedStats, StatsSource};
use hive_optimizer::ScalarExpr;
use hive_sql::BinaryOp;
use proptest::prelude::*;
use std::collections::HashMap;

struct FakeStats(HashMap<String, TableStats>);

impl StatsSource for FakeStats {
    fn stats_for(&self, q: &str) -> TableStats {
        self.0.get(q).cloned().unwrap_or_default()
    }
}

/// A one-column scan of `name` whose column stats were folded from
/// `values` (row count = values.len()).
fn scan_of(name: &str, values: &[Value]) -> (LogicalPlan, FakeStats) {
    let schema = Schema::new(vec![Field::new("a", DataType::Int)]);
    let plan = LogicalPlan::Scan {
        table: ScanTable {
            qualified_name: format!("default.{name}"),
            db: "default".into(),
            name: name.into(),
            schema,
            partition_cols: vec![],
            handler: None,
            acid: true,
            is_mv: false,
            external_query: None,
            external_source: None,
        },
        projection: vec![0],
        filters: vec![],
        partitions: None,
        semijoin_filters: vec![],
    };
    let mut stats = TableStats::new(1);
    stats.row_count = values.len() as u64;
    for v in values {
        stats.columns[0].update(v);
    }
    let mut m = HashMap::new();
    m.insert(format!("default.{name}"), stats);
    (plan, FakeStats(m))
}

fn with_filter(plan: LogicalPlan, pred: ScalarExpr) -> LogicalPlan {
    match plan {
        LogicalPlan::Scan {
            table,
            projection,
            mut filters,
            partitions,
            semijoin_filters,
        } => {
            filters.push(pred);
            LogicalPlan::Scan {
                table,
                projection,
                filters,
                partitions,
                semijoin_filters,
            }
        }
        other => other,
    }
}

fn gated(src: &FakeStats) -> GatedStats<'_> {
    GatedStats {
        inner: src,
        use_histograms: true,
        feedback: Default::default(),
    }
}

fn eq(col: usize, v: i32) -> ScalarExpr {
    ScalarExpr::eq(ScalarExpr::Column(col), ScalarExpr::Literal(Value::Int(v)))
}

fn cmp(op: BinaryOp, col: usize, v: i32) -> ScalarExpr {
    ScalarExpr::Binary {
        op,
        left: Box::new(ScalarExpr::Column(col)),
        right: Box::new(ScalarExpr::Literal(Value::Int(v))),
    }
}

fn true_count(values: &[Value], f: impl Fn(i32) -> bool) -> f64 {
    values
        .iter()
        .filter(|v| matches!(v, Value::Int(x) if f(*x)))
        .count() as f64
}

#[test]
fn uniform_distribution_bounded_error() {
    // 0..1000, each value exactly 100 times.
    let values: Vec<Value> = (0..100_000).map(|i| Value::Int(i % 1000)).collect();
    let (plan, src) = scan_of("uni", &values);
    let src = gated(&src);

    // Range: a <= 249 keeps exactly 25% of rows.
    let truth = true_count(&values, |x| x <= 249);
    let est = estimate_rows(
        &with_filter(plan.clone(), cmp(BinaryOp::LtEq, 0, 249)),
        &src,
    );
    assert!(
        (est - truth).abs() / truth < 0.5,
        "uniform range: est {est} vs truth {truth}"
    );

    // Equality: each value holds 0.1% of rows.
    let truth = true_count(&values, |x| x == 500);
    let est = estimate_rows(&with_filter(plan, eq(0, 500)), &src);
    assert!(
        est >= truth / 10.0 && est <= truth * 10.0,
        "uniform eq: est {est} vs truth {truth}"
    );
}

#[test]
fn zipf_distribution_heavy_hitter_dominates() {
    // Rank k (1..=50) appears 10_000/k times: rank 1 holds ~22% of all
    // rows, rank 50 only ~0.4%.
    let mut values = Vec::new();
    for k in 1..=50i32 {
        for _ in 0..(10_000 / k) {
            values.push(Value::Int(k));
        }
    }
    let n = values.len() as f64;
    let (plan, src) = scan_of("zipf", &values);
    let src = gated(&src);

    let truth_heavy = true_count(&values, |x| x == 1);
    let est_heavy = estimate_rows(&with_filter(plan.clone(), eq(0, 1)), &src);
    assert!(
        est_heavy >= truth_heavy / 2.0 && est_heavy <= truth_heavy * 2.0,
        "zipf heavy hitter: est {est_heavy} vs truth {truth_heavy}"
    );

    // The tail value must NOT be estimated anywhere near the heavy
    // hitter — this asymmetry is what a constant 1/NDV can't express.
    let est_tail = estimate_rows(&with_filter(plan, eq(0, 50)), &src);
    assert!(
        est_tail < n * 0.05,
        "zipf tail: est {est_tail} must stay small (n={n})"
    );
    assert!(
        est_heavy > est_tail * 5.0,
        "skew must separate head ({est_heavy}) from tail ({est_tail})"
    );
}

#[test]
fn all_null_column_matches_nothing() {
    let values = vec![Value::Null; 10_000];
    let (plan, src) = scan_of("nulls", &values);
    let src = gated(&src);
    // Equality never matches NULL: the estimate collapses to the floor.
    let est = estimate_rows(&with_filter(plan, eq(0, 5)), &src);
    assert!(est <= 1.0 + f64::EPSILON, "all-null eq: est {est}");
}

#[test]
fn single_value_column_is_all_or_nothing() {
    let values = vec![Value::Int(7); 50_000];
    let (plan, src) = scan_of("single", &values);
    let src = gated(&src);
    let est_hit = estimate_rows(&with_filter(plan.clone(), eq(0, 7)), &src);
    assert!(
        est_hit > 45_000.0,
        "single-value eq on the value: est {est_hit}"
    );
    let est_miss = estimate_rows(&with_filter(plan, eq(0, 8)), &src);
    assert!(
        est_miss <= 1.0 + f64::EPSILON,
        "single-value eq off the value: est {est_miss}"
    );
}

#[test]
fn histograms_off_falls_back_to_constants() {
    // Same skewed data, gate off: head and tail estimate identically
    // (1/NDV) — the differential oracle the toggle preserves.
    let mut values = Vec::new();
    for k in 1..=50i32 {
        for _ in 0..(10_000 / k) {
            values.push(Value::Int(k));
        }
    }
    let (plan, src) = scan_of("zipf_off", &values);
    let off = GatedStats {
        inner: &src,
        use_histograms: false,
        feedback: Default::default(),
    };
    let est_head = estimate_rows(&with_filter(plan.clone(), eq(0, 1)), &off);
    let est_tail = estimate_rows(&with_filter(plan, eq(0, 50)), &off);
    assert!(
        (est_head - est_tail).abs() < 1e-9,
        "constant path cannot separate head ({est_head}) from tail ({est_tail})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Folding a table's values partition-by-partition and merging the
    /// per-partition histograms must answer range queries like one
    /// histogram built over the whole table. Under the sample cap the
    /// merge is lossless, so the agreement is exact.
    #[test]
    fn merged_partition_histograms_match_whole_table(
        part_a in proptest::collection::vec(-500i32..500, 1..600),
        part_b in proptest::collection::vec(-500i32..500, 1..600),
        bound in -500i32..500,
    ) {
        let mut whole = ColumnHistogram::default();
        let mut ha = ColumnHistogram::default();
        let mut hb = ColumnHistogram::default();
        for &x in &part_a {
            whole.update(&Value::Int(x));
            ha.update(&Value::Int(x));
        }
        for &x in &part_b {
            whole.update(&Value::Int(x));
            hb.update(&Value::Int(x));
        }
        let mut merged = ha.clone();
        merged.merge(&hb);
        prop_assert_eq!(merged.total_rows(), whole.total_rows());
        let w = whole.range_fraction(None, Some(bound as f64)).unwrap();
        let m = merged.range_fraction(None, Some(bound as f64)).unwrap();
        prop_assert!((w - m).abs() < 1e-9, "whole {} vs merged {}", w, m);
        let we = whole.eq_fraction(bound as f64).unwrap();
        let me = merged.eq_fraction(bound as f64).unwrap();
        prop_assert!((we - me).abs() < 1e-9, "eq whole {} vs merged {}", we, me);
    }
}
