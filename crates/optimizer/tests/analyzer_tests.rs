//! End-to-end analyzer + optimizer tests: SQL text in, optimized
//! logical plan out, against a real Metastore catalog.

use hive_common::{DataType, Field, HiveConf, Schema, Value};
use hive_metastore::{Metastore, TableBuilder, TableStats};
use hive_optimizer::{
    Analyzer, JoinType, LogicalPlan, MetastoreCatalog, Optimizer, OptimizerContext,
};
use hive_sql::parse_sql;

fn setup() -> Metastore {
    let ms = Metastore::new();
    ms.create_table(
        TableBuilder::new(
            "default",
            "store_sales",
            Schema::new(vec![
                Field::new("ss_item_sk", DataType::Int),
                Field::new("ss_customer_sk", DataType::Int),
                Field::new("ss_ticket_number", DataType::Int),
                Field::new("ss_sales_price", DataType::Decimal(7, 2)),
                Field::new("ss_quantity", DataType::Int),
            ]),
        )
        .partitioned_by(vec![Field::new("ss_sold_date_sk", DataType::Int)])
        .build(),
    )
    .unwrap();
    ms.create_table(
        TableBuilder::new(
            "default",
            "item",
            Schema::new(vec![
                Field::new("i_item_sk", DataType::Int),
                Field::new("i_category", DataType::String),
                Field::new("i_brand", DataType::String),
            ]),
        )
        .build(),
    )
    .unwrap();
    ms.create_table(
        TableBuilder::new(
            "default",
            "date_dim",
            Schema::new(vec![
                Field::new("d_date_sk", DataType::Int),
                Field::new("d_year", DataType::Int),
                Field::new("d_moy", DataType::Int),
            ]),
        )
        .build(),
    )
    .unwrap();
    // Stats: store_sales is large, dims are small.
    let mut ss = TableStats::new(6);
    ss.row_count = 1_000_000;
    ms.set_table_stats("default.store_sales", ss);
    let mut it = TableStats::new(3);
    it.row_count = 1000;
    for i in 0..1000 {
        it.columns[0].update(&Value::Int(i));
        it.columns[1].update(&Value::String(format!("cat{}", i % 10)));
    }
    ms.set_table_stats("default.item", it);
    let mut dd = TableStats::new(3);
    dd.row_count = 3650;
    ms.set_table_stats("default.date_dim", dd);
    ms
}

fn analyze(ms: &Metastore, sql: &str) -> LogicalPlan {
    let cat = MetastoreCatalog::new(ms.clone(), "default");
    let analyzer = Analyzer::new(&cat);
    match parse_sql(sql).unwrap() {
        hive_sql::Statement::Query(q) => analyzer.analyze_query(&q).unwrap(),
        other => panic!("expected query, got {other:?}"),
    }
}

fn optimize(ms: &Metastore, sql: &str) -> LogicalPlan {
    let plan = analyze(ms, sql);
    plan.check().unwrap();
    let conf = HiveConf::v3_1();
    let ctx = OptimizerContext {
        metastore: ms,
        conf: &conf,
        usable_views: vec![],
        feedback: Default::default(),
    };
    let out = Optimizer::optimize(plan, &ctx).unwrap();
    out.check().unwrap();
    out
}

#[test]
fn simple_select_analyzes() {
    let ms = setup();
    let plan = analyze(
        &ms,
        "SELECT i_category, i_brand FROM item WHERE i_item_sk = 5",
    );
    assert_eq!(plan.schema().names(), vec!["i_category", "i_brand"]);
    plan.check().unwrap();
}

#[test]
fn comma_join_becomes_inner_join_after_pushdown() {
    let ms = setup();
    let plan = optimize(
        &ms,
        "SELECT ss_sales_price FROM store_sales, item
         WHERE ss_item_sk = i_item_sk AND i_category = 'cat3'",
    );
    let mut saw_inner = false;
    let mut saw_scan_filter = false;
    plan.visit(&mut |p| match p {
        LogicalPlan::Join {
            join_type: JoinType::Inner,
            equi,
            ..
        } if !equi.is_empty() => saw_inner = true,
        LogicalPlan::Scan { table, filters, .. } if table.name == "item" && !filters.is_empty() => {
            saw_scan_filter = true
        }
        _ => {}
    });
    assert!(
        saw_inner,
        "cross join should become equi inner join:\n{plan}"
    );
    assert!(
        saw_scan_filter,
        "category filter should be pushed into the item scan:\n{plan}"
    );
}

#[test]
fn aggregation_with_having_and_order() {
    let ms = setup();
    let plan = optimize(
        &ms,
        "SELECT i_category, SUM(ss_sales_price) AS s, COUNT(*)
         FROM store_sales, item WHERE ss_item_sk = i_item_sk
         GROUP BY i_category HAVING SUM(ss_sales_price) > 100
         ORDER BY s DESC LIMIT 10",
    );
    let schema = plan.schema();
    assert_eq!(schema.len(), 3);
    let mut saw_agg = false;
    let mut saw_limit = false;
    plan.visit(&mut |p| match p {
        LogicalPlan::Aggregate { aggs, .. } if aggs.len() == 2 => saw_agg = true,
        LogicalPlan::Limit { n: 10, .. } => saw_limit = true,
        _ => {}
    });
    assert!(saw_agg && saw_limit, "{plan}");
}

#[test]
fn order_by_unselected_column() {
    let ms = setup();
    let plan = optimize(&ms, "SELECT i_brand FROM item ORDER BY i_category");
    assert_eq!(plan.schema().names(), vec!["i_brand"]);
    let mut saw_sort = false;
    plan.visit(&mut |p| {
        if matches!(p, LogicalPlan::Sort { .. }) {
            saw_sort = true;
        }
    });
    assert!(saw_sort);
}

#[test]
fn in_subquery_becomes_semi_join() {
    let ms = setup();
    let plan = analyze(
        &ms,
        "SELECT ss_sales_price FROM store_sales
         WHERE ss_item_sk IN (SELECT i_item_sk FROM item WHERE i_category = 'cat1')",
    );
    let mut saw_semi = false;
    plan.visit(&mut |p| {
        if matches!(
            p,
            LogicalPlan::Join {
                join_type: JoinType::Semi,
                ..
            }
        ) {
            saw_semi = true;
        }
    });
    assert!(saw_semi, "{plan}");
    plan.check().unwrap();
}

#[test]
fn not_exists_becomes_anti_join_with_correlation() {
    let ms = setup();
    let plan = analyze(
        &ms,
        "SELECT i_brand FROM item
         WHERE NOT EXISTS (SELECT 1 FROM store_sales WHERE ss_item_sk = i_item_sk)",
    );
    let mut saw_anti_with_key = false;
    plan.visit(&mut |p| {
        if let LogicalPlan::Join {
            join_type: JoinType::Anti,
            equi,
            ..
        } = p
        {
            if !equi.is_empty() {
                saw_anti_with_key = true;
            }
        }
    });
    assert!(saw_anti_with_key, "{plan}");
    plan.check().unwrap();
}

#[test]
fn correlated_scalar_subquery_decorrelates() {
    let ms = setup();
    let plan = analyze(
        &ms,
        "SELECT i_brand FROM item
         WHERE i_item_sk > (SELECT AVG(ss_quantity) FROM store_sales
                            WHERE ss_item_sk = i_item_sk)",
    );
    plan.check().unwrap();
    // The scalar subquery becomes a left join against a grouped
    // aggregate keyed by the correlation column.
    let mut saw_left_join = false;
    let mut saw_grouped_agg = false;
    plan.visit(&mut |p| match p {
        LogicalPlan::Join {
            join_type: JoinType::Left,
            equi,
            ..
        } if !equi.is_empty() => saw_left_join = true,
        LogicalPlan::Aggregate { group_exprs, .. } if !group_exprs.is_empty() => {
            saw_grouped_agg = true
        }
        _ => {}
    });
    assert!(saw_left_join && saw_grouped_agg, "{plan}");
}

#[test]
fn projection_pruning_shrinks_scans() {
    let ms = setup();
    let plan = optimize(&ms, "SELECT i_brand FROM item WHERE i_category = 'cat2'");
    let mut scan_cols = None;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan { projection, .. } = p {
            scan_cols = Some(projection.len());
        }
    });
    assert_eq!(
        scan_cols,
        Some(2),
        "only i_brand + i_category needed:\n{plan}"
    );
}

#[test]
fn partition_pruning_selects_directories() {
    let ms = setup();
    for d in [2450815, 2450816, 2450817] {
        ms.add_partition("default", "store_sales", vec![Value::Int(d)])
            .unwrap();
    }
    let plan = optimize(
        &ms,
        "SELECT ss_sales_price FROM store_sales WHERE ss_sold_date_sk = 2450816",
    );
    let mut parts = None;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan {
            partitions, table, ..
        } = p
        {
            if table.name == "store_sales" {
                parts = partitions.clone();
            }
        }
    });
    assert_eq!(
        parts,
        Some(vec!["ss_sold_date_sk=2450816".to_string()]),
        "{plan}"
    );
}

#[test]
fn join_reordering_puts_small_filtered_side_as_build() {
    let ms = setup();
    // Three-way join: the optimizer should not leave the order as
    // written but start from the filtered dimension.
    let plan = optimize(
        &ms,
        "SELECT ss_sales_price, d_year FROM store_sales, date_dim, item
         WHERE ss_sold_date_sk = d_date_sk AND ss_item_sk = i_item_sk
           AND i_category = 'cat1'",
    );
    plan.check().unwrap();
    // All three tables survive and the plan has two equi joins.
    let mut joins = 0;
    plan.visit(&mut |p| {
        if let LogicalPlan::Join { equi, .. } = p {
            if !equi.is_empty() {
                joins += 1;
            }
        }
    });
    assert_eq!(joins, 2, "{plan}");
    assert_eq!(plan.referenced_tables().len(), 3);
}

#[test]
fn semijoin_reduction_planned_for_star_join() {
    let ms = setup();
    let plan = optimize(
        &ms,
        "SELECT ss_sales_price FROM store_sales, item
         WHERE ss_item_sk = i_item_sk AND i_category = 'cat7'",
    );
    let mut reducers = 0;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan {
            table,
            semijoin_filters,
            ..
        } = p
        {
            if table.name == "store_sales" {
                reducers = semijoin_filters.len();
            }
        }
    });
    assert!(
        reducers >= 1,
        "fact scan should carry a semijoin reducer:\n{plan}"
    );
}

#[test]
fn union_and_set_operations() {
    let ms = setup();
    let plan = analyze(
        &ms,
        "SELECT i_item_sk FROM item UNION ALL SELECT ss_item_sk FROM store_sales",
    );
    assert!(matches!(plan, LogicalPlan::Union { .. }));
    let plan = analyze(
        &ms,
        "SELECT i_item_sk FROM item INTERSECT SELECT ss_item_sk FROM store_sales",
    );
    assert!(matches!(plan, LogicalPlan::SetOp { .. }));
    // UNION DISTINCT adds a dedup aggregate.
    let plan = analyze(
        &ms,
        "SELECT i_item_sk FROM item UNION SELECT ss_item_sk FROM store_sales",
    );
    assert!(matches!(plan, LogicalPlan::Aggregate { .. }));
}

#[test]
fn window_functions_analyze() {
    let ms = setup();
    let plan = analyze(
        &ms,
        "SELECT i_category, RANK() OVER (PARTITION BY i_category ORDER BY i_brand) FROM item",
    );
    plan.check().unwrap();
    let mut saw_window = false;
    plan.visit(&mut |p| {
        if matches!(p, LogicalPlan::Window { .. }) {
            saw_window = true;
        }
    });
    assert!(saw_window);
}

#[test]
fn grouping_sets_analyze() {
    let ms = setup();
    let plan = analyze(
        &ms,
        "SELECT d_year, d_moy, COUNT(*) FROM date_dim GROUP BY ROLLUP(d_year, d_moy)",
    );
    plan.check().unwrap();
    let mut sets = None;
    plan.visit(&mut |p| {
        if let LogicalPlan::Aggregate { grouping_sets, .. } = p {
            sets = grouping_sets.clone();
        }
    });
    assert_eq!(sets.unwrap().len(), 3);
}

#[test]
fn ctes_inline() {
    let ms = setup();
    let plan = analyze(
        &ms,
        "WITH cheap AS (SELECT i_item_sk FROM item WHERE i_category = 'cat0')
         SELECT COUNT(*) FROM cheap",
    );
    plan.check().unwrap();
    assert_eq!(plan.referenced_tables(), vec!["default.item".to_string()]);
}

#[test]
fn constant_folding_removes_tautologies() {
    let ms = setup();
    let plan = optimize(&ms, "SELECT i_brand FROM item WHERE 1 = 1 AND 2 > 1");
    let mut saw_filter = false;
    plan.visit(&mut |p| {
        if matches!(p, LogicalPlan::Filter { .. }) {
            saw_filter = true;
        }
        if let LogicalPlan::Scan { filters, .. } = p {
            assert!(filters.is_empty(), "tautologies must fold away");
        }
    });
    assert!(!saw_filter);
    // Contradictions become empty relations.
    let plan = optimize(&ms, "SELECT i_brand FROM item WHERE 1 = 2");
    assert!(
        matches!(plan, LogicalPlan::Values { ref rows, .. } if rows.is_empty()),
        "{plan}"
    );
}

#[test]
fn ambiguous_and_unknown_columns_error() {
    let ms = setup();
    let cat = MetastoreCatalog::new(ms.clone(), "default");
    let analyzer = Analyzer::new(&cat);
    let q = match parse_sql("SELECT nonexistent FROM item").unwrap() {
        hive_sql::Statement::Query(q) => q,
        _ => unreachable!(),
    };
    assert!(analyzer.analyze_query(&q).is_err());
}

#[test]
fn having_on_group_key_pushes_below_aggregate() {
    let ms = setup();
    let plan = optimize(
        &ms,
        "SELECT i_category, COUNT(*) FROM item
         GROUP BY i_category HAVING i_category = 'cat3'",
    );
    // The key-only HAVING conjunct migrates all the way into the scan.
    let mut scan_filters = 0;
    let mut filter_above_agg = false;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan { filters, .. } = p {
            scan_filters = filters.len();
        }
        if let LogicalPlan::Filter { input, .. } = p {
            if matches!(input.as_ref(), LogicalPlan::Aggregate { .. }) {
                filter_above_agg = true;
            }
        }
    });
    assert!(
        scan_filters >= 1,
        "HAVING on key must reach the scan:\n{plan}"
    );
    assert!(
        !filter_above_agg,
        "no residual filter above aggregate:\n{plan}"
    );
}

#[test]
fn having_on_aggregate_output_stays_above() {
    let ms = setup();
    let plan = optimize(
        &ms,
        "SELECT i_category, COUNT(*) AS c FROM item
         GROUP BY i_category HAVING COUNT(*) > 5",
    );
    let mut filter_above_agg = false;
    plan.visit(&mut |p| {
        if let LogicalPlan::Filter { input, .. } = p {
            if matches!(input.as_ref(), LogicalPlan::Aggregate { .. }) {
                filter_above_agg = true;
            }
        }
        if let LogicalPlan::Scan { filters, .. } = p {
            assert!(
                filters.is_empty(),
                "COUNT(*) predicate must not reach the scan:\n{p}"
            );
        }
    });
    assert!(filter_above_agg, "{plan}");
}

#[test]
fn grouping_sets_block_filter_pushdown() {
    let ms = setup();
    // Under ROLLUP the d_year column of the output can be NULL for the
    // super-aggregate rows, so a key filter is NOT equivalent below the
    // aggregate and must stay put.
    let plan = optimize(
        &ms,
        "SELECT d_year, d_moy, COUNT(*) FROM date_dim
         GROUP BY ROLLUP(d_year, d_moy) HAVING d_year = 2000",
    );
    plan.check().unwrap();
    let mut scan_filters = 0;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan { filters, .. } = p {
            scan_filters = filters.len();
        }
    });
    assert_eq!(scan_filters, 0, "rollup blocks pushdown:\n{plan}");
}

#[test]
fn filter_pushes_into_both_union_branches() {
    let ms = setup();
    let plan = optimize(
        &ms,
        "SELECT k FROM (SELECT i_item_sk AS k FROM item
                        UNION ALL
                        SELECT ss_item_sk FROM store_sales) u
         WHERE k < 10",
    );
    let mut filtered_scans = 0;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan { filters, .. } = p {
            if !filters.is_empty() {
                filtered_scans += 1;
            }
        }
    });
    assert_eq!(filtered_scans, 2, "both union branches filtered:\n{plan}");
}

#[test]
fn left_join_pushdown_respects_null_side() {
    let ms = setup();
    // Filter on the preserved (left) side pushes below a LEFT join;
    // a same-shaped filter on the null-producing side must not.
    let plan = optimize(
        &ms,
        "SELECT ss_sales_price, i_brand
         FROM store_sales LEFT JOIN item ON ss_item_sk = i_item_sk
         WHERE ss_quantity > 3",
    );
    let mut fact_filtered = false;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan { table, filters, .. } = p {
            if table.name == "store_sales" && !filters.is_empty() {
                fact_filtered = true;
            }
        }
    });
    assert!(fact_filtered, "preserved-side filter pushes:\n{plan}");

    let plan = optimize(
        &ms,
        "SELECT ss_sales_price, i_brand
         FROM store_sales LEFT JOIN item ON ss_item_sk = i_item_sk
         WHERE i_brand IS NULL",
    );
    plan.check().unwrap();
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan { table, filters, .. } = p {
            if table.name == "item" {
                assert!(
                    filters.is_empty(),
                    "IS NULL probe on the null side must stay above the join:\n{p}"
                );
            }
        }
    });
}

#[test]
fn nondeterministic_filter_not_pushed_through_project() {
    let ms = setup();
    // RAND() in the derived column: the outer predicate must evaluate
    // each row's materialized value once, so it cannot be inlined below.
    let plan = optimize(
        &ms,
        "SELECT r FROM (SELECT RAND() AS r FROM item) t WHERE r < 0.5",
    );
    plan.check().unwrap();
    let mut saw_filter_above_project = false;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan { filters, .. } = p {
            assert!(
                filters.is_empty(),
                "RAND() predicate must not reach the scan:\n{p}"
            );
        }
        if let LogicalPlan::Filter { input, .. } = p {
            if matches!(input.as_ref(), LogicalPlan::Project { .. }) {
                saw_filter_above_project = true;
            }
        }
    });
    assert!(saw_filter_above_project, "{plan}");
}

#[test]
fn cast_and_arithmetic_fold_to_literals() {
    let ms = setup();
    let plan = optimize(
        &ms,
        "SELECT i_brand FROM item WHERE i_item_sk < CAST('4' AS INT) + 6",
    );
    let mut scan_filter = None;
    plan.visit(&mut |p| {
        if let LogicalPlan::Scan { filters, .. } = p {
            scan_filter = filters.first().map(|f| f.to_string());
        }
    });
    let f = scan_filter.expect("filter reaches scan");
    assert!(f.contains("10"), "CAST('4') + 6 folds to 10, got {f}");
}

fn setup_with_constraints() -> Metastore {
    use hive_metastore::Constraint;
    let ms = setup();
    ms.create_table(
        TableBuilder::new(
            "default",
            "orders",
            Schema::new(vec![
                hive_common::Field::new("o_id", DataType::Int),
                hive_common::Field::not_null("o_cust", DataType::Int),
                hive_common::Field::new("o_amount", DataType::Double),
            ]),
        )
        .constraint(Constraint::PrimaryKey(vec!["o_id".into()]))
        .constraint(Constraint::ForeignKey {
            columns: vec!["o_cust".into()],
            ref_table: "default.customer".into(),
            ref_columns: vec!["c_id".into()],
        })
        .build(),
    )
    .unwrap();
    ms.create_table(
        TableBuilder::new(
            "default",
            "customer",
            Schema::new(vec![
                hive_common::Field::not_null("c_id", DataType::Int),
                hive_common::Field::new("c_name", DataType::String),
            ]),
        )
        .constraint(Constraint::PrimaryKey(vec!["c_id".into()]))
        .build(),
    )
    .unwrap();
    ms
}

#[test]
fn pk_fk_inner_join_eliminated_when_dim_unused() {
    let ms = setup_with_constraints();
    // No customer column is projected: the NOT NULL FK guarantees every
    // order matches exactly one customer, so the join folds away.
    let plan = optimize(
        &ms,
        "SELECT o_amount FROM orders JOIN customer ON o_cust = c_id",
    );
    assert_eq!(
        plan.referenced_tables(),
        vec!["default.orders".to_string()],
        "customer join eliminated:\n{plan}"
    );
}

#[test]
fn left_join_on_pk_eliminated_without_fk() {
    let ms = setup_with_constraints();
    // LEFT join needs only PK uniqueness on the dropped side — even a
    // key column with no FK declaration qualifies (o_id is orders' PK
    // here, joined from date_dim-free SQL below via customer.c_id).
    let plan = optimize(
        &ms,
        "SELECT o_amount FROM orders LEFT JOIN customer ON o_id = c_id",
    );
    assert_eq!(
        plan.referenced_tables(),
        vec!["default.orders".to_string()],
        "left join against PK side eliminated:\n{plan}"
    );
}

#[test]
fn join_elimination_blocked_when_dim_is_used_or_filtered() {
    let ms = setup_with_constraints();
    // Dim column used above: join must stay.
    let plan = optimize(
        &ms,
        "SELECT o_amount, c_name FROM orders JOIN customer ON o_cust = c_id",
    );
    assert_eq!(plan.referenced_tables().len(), 2, "{plan}");
    // Filter on the dim side: join is a row filter, must stay.
    let plan = optimize(
        &ms,
        "SELECT o_amount FROM orders JOIN customer ON o_cust = c_id
         WHERE c_name = 'alice'",
    );
    assert_eq!(plan.referenced_tables().len(), 2, "{plan}");
}

#[test]
fn join_elimination_blocked_without_constraints() {
    let ms = setup();
    // item has no declared PK in the plain catalog: an unused inner
    // join could still duplicate or drop rows, so it must stay.
    let plan = optimize(
        &ms,
        "SELECT ss_sales_price FROM store_sales JOIN item ON ss_item_sk = i_item_sk",
    );
    assert_eq!(plan.referenced_tables().len(), 2, "{plan}");
}

#[test]
fn join_elimination_blocked_for_nullable_fk() {
    let ms = setup_with_constraints();
    use hive_metastore::Constraint;
    // A second fact table whose FK column is nullable: inner join drops
    // the NULL rows, so elimination would change results.
    ms.create_table(
        TableBuilder::new(
            "default",
            "orders_nullable",
            Schema::new(vec![
                hive_common::Field::new("o_cust", DataType::Int),
                hive_common::Field::new("o_amount", DataType::Double),
            ]),
        )
        .constraint(Constraint::ForeignKey {
            columns: vec!["o_cust".into()],
            ref_table: "default.customer".into(),
            ref_columns: vec!["c_id".into()],
        })
        .build(),
    )
    .unwrap();
    let plan = optimize(
        &ms,
        "SELECT o_amount FROM orders_nullable JOIN customer ON o_cust = c_id",
    );
    assert_eq!(plan.referenced_tables().len(), 2, "{plan}");
}
