//! Property tests on the optimizer's expression layer: constant folding
//! and simplification must never change what an expression evaluates to.

use hive_common::Value;
use hive_optimizer::eval::eval_scalar;
use hive_optimizer::rules::folding::fold_expr;
use hive_optimizer::ScalarExpr;
use hive_sql::BinaryOp;
use proptest::prelude::*;

/// Random integer-valued expressions over three input columns, mixing
/// literals, arithmetic, comparisons, boolean connectives, NOT, CASE,
/// and IS NULL — the shapes the folding rules rewrite.
fn int_expr(depth: u32) -> BoxedStrategy<ScalarExpr> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|v| ScalarExpr::Literal(Value::BigInt(v))),
        Just(ScalarExpr::Literal(Value::Null)),
        (0usize..3).prop_map(ScalarExpr::Column),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = int_expr(depth - 1);
    prop_oneof![
        3 => leaf,
        4 => (sub.clone(), sub.clone(), prop_oneof![
                Just(BinaryOp::Plus),
                Just(BinaryOp::Minus),
                Just(BinaryOp::Multiply),
            ])
            .prop_map(|(l, r, op)| ScalarExpr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
        2 => (sub.clone(), sub.clone(), prop_oneof![
                Just(BinaryOp::Eq),
                Just(BinaryOp::Lt),
                Just(BinaryOp::GtEq),
            ])
            .prop_map(|(l, r, op)| ScalarExpr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
        1 => (sub.clone(), any::<bool>()).prop_map(|(e, negated)| ScalarExpr::IsNull {
            expr: Box::new(e),
            negated,
        }),
    ]
    .boxed()
}

/// Boolean combinations of integer comparisons (AND/OR/NOT trees) —
/// what WHERE-clause folding sees.
fn bool_expr(depth: u32) -> BoxedStrategy<ScalarExpr> {
    let cmp = (
        int_expr(1),
        int_expr(1),
        prop_oneof![
            Just(BinaryOp::Eq),
            Just(BinaryOp::NotEq),
            Just(BinaryOp::Lt),
            Just(BinaryOp::LtEq),
            Just(BinaryOp::Gt),
            Just(BinaryOp::GtEq),
        ],
    )
        .prop_map(|(l, r, op)| ScalarExpr::Binary {
            op,
            left: Box::new(l),
            right: Box::new(r),
        });
    if depth == 0 {
        return cmp.boxed();
    }
    let sub = bool_expr(depth - 1);
    prop_oneof![
        3 => cmp,
        2 => (sub.clone(), sub.clone(), prop_oneof![Just(BinaryOp::And), Just(BinaryOp::Or)])
            .prop_map(|(l, r, op)| ScalarExpr::Binary {
                op,
                left: Box::new(l),
                right: Box::new(r),
            }),
        1 => sub.clone().prop_map(|e| ScalarExpr::Not(Box::new(e))),
    ]
    .boxed()
}

fn row_strategy() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(
        prop_oneof![
            3 => (-20i64..20).prop_map(Value::BigInt),
            1 => Just(Value::Null),
        ],
        3,
    )
}

/// Evaluation outcomes compare equal when both error or both produce
/// the same value (folding may legitimately turn an error-free path
/// into a literal, but never a value into a different value).
fn outcomes_match(
    before: &Result<Value, hive_common::HiveError>,
    after: &Result<Value, hive_common::HiveError>,
) -> bool {
    match (before, after) {
        (Ok(a), Ok(b)) => a == b,
        (Err(_), Err(_)) => true,
        // Folding must not invent an error where evaluation succeeded.
        (Ok(_), Err(_)) => false,
        // It may fold away an erroring subtree only if the error could
        // not be reached; our generator has no short-circuit-hidden
        // errors (no division), so require equal behaviour.
        (Err(_), Ok(_)) => false,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn folding_preserves_arithmetic_semantics(
        e in int_expr(3),
        row in row_strategy(),
    ) {
        let folded = fold_expr(e.clone());
        let before = eval_scalar(&e, &row);
        let after = eval_scalar(&folded, &row);
        let e_str = format!("{e}");
        let f_str = format!("{folded}");
        prop_assert!(
            outcomes_match(&before, &after),
            "{} vs folded {}: {:?} != {:?}", e_str, f_str, before, after
        );
    }

    #[test]
    fn folding_preserves_boolean_semantics(
        e in bool_expr(3),
        row in row_strategy(),
    ) {
        let folded = fold_expr(e.clone());
        let before = eval_scalar(&e, &row);
        let after = eval_scalar(&folded, &row);
        let e_str = format!("{e}");
        let f_str = format!("{folded}");
        prop_assert!(
            outcomes_match(&before, &after),
            "{} vs folded {}: {:?} != {:?}", e_str, f_str, before, after
        );
    }

    /// Folding is idempotent: a folded expression folds to itself.
    #[test]
    fn folding_is_idempotent(e in bool_expr(2)) {
        let once = fold_expr(e);
        let twice = fold_expr(once.clone());
        let o = format!("{once}");
        let t = format!("{twice}");
        prop_assert_eq!(once, twice, "{} refolds to {}", o, t);
    }
}
