//! **§7.1 inline claim** — "q88 is 2.7x faster when [the shared work
//! optimizer] is enabled": the multi-channel q88 pattern computes the
//! same store_sales ⋈ household_demographics subexpression repeatedly;
//! with shared work (§4.5) it is computed once and reused.

use hive_bench::{avg_sim_ms, banner, ms};
use hive_benchdata::tpcds;
use hive_common::HiveConf;
use hive_core::HiveServer;

fn main() {
    banner("Ablation: shared work optimizer on q88 (paper: 2.7x)");
    let server = HiveServer::new(HiveConf::v3_1());
    tpcds::load(&server, tpcds::TpcdsScale::bench(), 2019).expect("load");
    let session = server.session();
    let q88 = tpcds::queries()
        .into_iter()
        .find(|q| q.id == "q88")
        .expect("q88 present")
        .sql;

    let mut results = Vec::new();
    for (label, enabled) in [("shared work OFF", false), ("shared work ON", true)] {
        server.set_conf(|c| {
            *c = HiveConf::v3_1().with(|c| {
                c.results_cache = false;
                c.shared_work = enabled;
            })
        });
        let t = avg_sim_ms(&session, &q88, 1, 3);
        results.push((label, t));
    }
    println!("\n{:<18} {:>12}", "configuration", "q88 time");
    for (label, t) in &results {
        println!("{label:<18} {:>12}", ms(*t));
    }
    println!(
        "\nshared-work speedup on q88: {:.1}x (paper: 2.7x)",
        results[0].1 / results[1].1
    );
}
