//! Morsel-driven parallelism benchmark: wall-clock time for the three
//! parallel operators (table scan, hash aggregate, hash join) across a
//! sweep of thread counts, asserting byte-identical results at every
//! count and writing the baseline to `BENCH_parallel.json` at the repo
//! root. Unlike the figure harnesses (simulated cluster time), these
//! are real host-thread timings.
//!
//! Run: `cargo bench --bench parallel` (or via scripts/verify.sh
//! `HIVE_PAR_SWEEP=1`).

use hive_common::{DataType, Field, HiveConf, Row, Schema, Value, VectorBatch};
use hive_core::HiveServer;
use hive_exec::aggregate::execute_aggregate_par;
use hive_exec::join::execute_join_par;
use hive_optimizer::plan::{JoinType, LogicalPlan};
use hive_optimizer::{AggExpr, AggFunc, ScalarExpr};
use std::time::Instant;

const THREADS: [usize; 4] = [1, 2, 4, 8];
const ITERS: usize = 5;

/// Best-of-N wall-clock milliseconds (min is the stable statistic for
/// speedup comparisons on a shared host).
fn time_ms(mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut best = f64::INFINITY;
    for _ in 0..ITERS {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn rows_of(b: &VectorBatch) -> Vec<String> {
    b.to_rows().iter().map(|r| r.to_string()).collect()
}

/// Table scan through the full engine (planner + lease-gated morsel
/// fan-out over corc row groups), LLAP cache off so every iteration
/// decodes from DFS bytes.
fn bench_scan(results: &mut Vec<(&'static str, usize, f64)>) {
    use hive_benchdata::tpcds::{self, TpcdsScale};
    let scale = TpcdsScale {
        days: 96,
        items: 500,
        customers: 500,
        stores: 8,
        sales_per_day: 2500,
        return_rate: 0.1,
    };
    let sql = "SELECT COUNT(*), SUM(ss_ext_sales_price), SUM(ss_net_profit), MAX(ss_list_price) \
               FROM store_sales WHERE ss_quantity > 0";
    let mut baseline: Option<Vec<String>> = None;
    for &t in &THREADS {
        let mut conf = HiveConf::v3_1();
        conf.parallel_threads = t;
        conf.llap_enabled = false;
        conf.results_cache = false;
        let server = HiveServer::new(conf);
        tpcds::load(&server, scale, 0xBE5C).unwrap();
        let session = server.session();
        let rows = session.execute(sql).unwrap().display_rows();
        match &baseline {
            None => baseline = Some(rows),
            Some(b) => assert_eq!(&rows, b, "scan diverged at {t} threads"),
        }
        let ms = time_ms(|| {
            session.execute(sql).unwrap();
        });
        eprintln!("scan       threads={t:<2} {ms:8.2} ms");
        results.push(("scan", t, ms));
    }
}

fn bench_aggregate(results: &mut Vec<(&'static str, usize, f64)>) {
    let schema = Schema::new(vec![
        Field::new("k", DataType::Int),
        Field::new("v", DataType::Double),
    ]);
    let rows: Vec<Row> = (0..600_000)
        .map(|i| {
            Row::new(vec![
                Value::Int(i * 31 % 4_001),
                Value::Double(i as f64 * 0.5 - 1000.0),
            ])
        })
        .collect();
    let batch = VectorBatch::from_rows(&schema, &rows).unwrap();
    let groups = vec![ScalarExpr::Column(0)];
    let aggs = vec![
        AggExpr {
            func: AggFunc::Count,
            arg: None,
            distinct: false,
        },
        AggExpr {
            func: AggFunc::Sum,
            arg: Some(ScalarExpr::Column(1)),
            distinct: false,
        },
        AggExpr {
            func: AggFunc::Avg,
            arg: Some(ScalarExpr::Column(1)),
            distinct: false,
        },
    ];
    let out_schema = LogicalPlan::Aggregate {
        input: std::sync::Arc::new(LogicalPlan::Values {
            schema: batch.schema().clone(),
            rows: vec![],
        }),
        group_exprs: groups.clone(),
        grouping_sets: None,
        aggs: aggs.clone(),
    }
    .schema();
    let input = hive_common::SelBatch::from_batch(batch);
    let mut baseline: Option<Vec<String>> = None;
    for &t in &THREADS {
        let out = execute_aggregate_par(
            &input,
            &groups,
            &None,
            &aggs,
            &out_schema,
            t,
            true,
            None,
            None,
        )
        .unwrap();
        let got = rows_of(&out);
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(&got, b, "aggregate diverged at {t} threads"),
        }
        let ms = time_ms(|| {
            execute_aggregate_par(
                &input,
                &groups,
                &None,
                &aggs,
                &out_schema,
                t,
                true,
                None,
                None,
            )
            .unwrap();
        });
        eprintln!("aggregate  threads={t:<2} {ms:8.2} ms");
        results.push(("aggregate", t, ms));
    }
}

fn bench_join(results: &mut Vec<(&'static str, usize, f64)>) {
    let lschema = Schema::new(vec![
        Field::new("l_k", DataType::Int),
        Field::new("l_v", DataType::BigInt),
    ]);
    let lrows: Vec<Row> = (0..400_000)
        .map(|i| Row::new(vec![Value::Int(i * 13 % 200_003), Value::BigInt(i as i64)]))
        .collect();
    let left = VectorBatch::from_rows(&lschema, &lrows).unwrap();
    let rschema = Schema::new(vec![
        Field::new("r_k", DataType::Int),
        Field::new("r_v", DataType::BigInt),
    ]);
    let rrows: Vec<Row> = (0..40_000)
        .map(|i| Row::new(vec![Value::Int(i * 7 % 200_003), Value::BigInt(i as i64)]))
        .collect();
    let right = VectorBatch::from_rows(&rschema, &rrows).unwrap();
    let equi = vec![(ScalarExpr::Column(0), ScalarExpr::Column(0))];
    let out_schema = left.schema().join(right.schema());
    let left = hive_common::SelBatch::from_batch(left);
    let right = hive_common::SelBatch::from_batch(right);
    let mut baseline: Option<Vec<String>> = None;
    for &t in &THREADS {
        let out = execute_join_par(
            &left,
            &right,
            JoinType::Inner,
            &equi,
            &None,
            &out_schema,
            usize::MAX,
            t,
            true,
            None,
            None,
        )
        .unwrap();
        let got = rows_of(&out);
        match &baseline {
            None => baseline = Some(got),
            Some(b) => assert_eq!(&got, b, "join diverged at {t} threads"),
        }
        let ms = time_ms(|| {
            execute_join_par(
                &left,
                &right,
                JoinType::Inner,
                &equi,
                &None,
                &out_schema,
                usize::MAX,
                t,
                true,
                None,
                None,
            )
            .unwrap();
        });
        eprintln!("join       threads={t:<2} {ms:8.2} ms");
        results.push(("join", t, ms));
    }
}

fn main() {
    // This harness manages thread counts itself; the env knob (set by
    // HIVE_PAR_SWEEP test runs) must not override the sweep.
    std::env::remove_var("HIVE_PARALLEL_THREADS");

    let mut results: Vec<(&'static str, usize, f64)> = Vec::new();
    bench_scan(&mut results);
    bench_aggregate(&mut results);
    bench_join(&mut results);

    let ms_of = |op: &str, t: usize| {
        results
            .iter()
            .find(|(o, tt, _)| *o == op && *tt == t)
            .map(|(_, _, ms)| *ms)
            .unwrap_or(f64::NAN)
    };
    let mut entries = String::new();
    for (op, t, ms) in &results {
        if !entries.is_empty() {
            entries.push_str(",\n");
        }
        entries.push_str(&format!(
            "    {{\"op\": \"{op}\", \"threads\": {t}, \"ms\": {ms:.3}}}"
        ));
    }
    let mut speedups = String::new();
    for op in ["scan", "aggregate", "join"] {
        if !speedups.is_empty() {
            speedups.push_str(", ");
        }
        speedups.push_str(&format!("\"{op}\": {:.2}", ms_of(op, 1) / ms_of(op, 4)));
    }
    // Speedup is bounded by physical cores: on a single-core host the
    // sweep measures pure parallelization overhead (the auto setting,
    // parallel_threads=0, resolves to the core count and stays serial
    // there), so record the host size alongside the timings.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let json = format!(
        "{{\n  \"bench\": \"parallel\",\n  \"unit\": \"ms\",\n  \"iters\": {ITERS},\n  \
         \"host_cores\": {cores},\n  \
         \"thread_counts\": [1, 2, 4, 8],\n  \"results\": [\n{entries}\n  ],\n  \
         \"speedup_at_4_threads\": {{{speedups}}}\n}}\n"
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).unwrap();
    eprintln!("wrote {path}");
    for op in ["scan", "aggregate", "join"] {
        eprintln!(
            "{op}: {:.2}x speedup at 4 threads",
            ms_of(op, 1) / ms_of(op, 4)
        );
    }
}
